"""Batched scan service: fit once, serve many scans.

The seed facade (`PhishingHook.classify_address`) retrained a model from
scratch on every call — fine for a demo, fatal for a service. ``ScanService``
holds one fitted model and answers ``scan_bytecodes`` / ``scan_many``
against it, with three layers of work-sharing:

1. **in-batch dedup** — each distinct bytecode in a request is classified
   once (the §III dedup step applied at serve time),
2. **prediction cache** — per-model probability rows are content-addressed
   in the :class:`~repro.serve.cache.FeatureCache`, so a bytecode seen in
   any earlier request costs one SHA-256 and a dict hit,
3. **feature cache** — on a prediction miss, the model's extractors decode
   through the same cache, so even novel bytecodes reuse decoded
   mnemonic-ID / token-code arrays across models sharing the cache.

Below all three sits the flat inference engine (:mod:`repro.ml.flat`):
ensemble models are compiled to stacked node arrays at fit/attach time
(``stats()["flat_compiled"]``), so the cold path — a genuinely novel
batch missing every cache — is vectorized level-synchronous descent, not
a per-row Python traversal.

Since the artifact layer (:mod:`repro.artifacts`) landed, in-process
training is the *fallback*, not the norm: :meth:`ScanService.from_artifact`
cold-starts a service from persisted bytes in milliseconds, and
:meth:`ScanService.swap_model` hot-swaps a new version under live
traffic. The service keeps its entire serving identity in one
``(model, namespace)`` tuple read atomically per batch, so an in-flight
batch always scores and caches under a *consistent* pair — a swap never
drops or mis-scores it — and the swap invalidates only the outgoing
model's prediction namespace in the shared :class:`FeatureCache`,
leaving decoded-feature namespaces warm for the incoming version.

Thread-safety: ``scan_bytecodes`` may run concurrently with
``swap_model`` / ``swap_from_artifact`` (the single-tuple snapshot is
the synchronization point, and the shared :class:`FeatureCache` locks
internally); per-service counters (``scanned``, ``swaps``) are
best-effort under concurrency — use :meth:`sharded` views for per-worker
accounting. The shadow-rollout subsystem (:mod:`repro.rollout`) builds
directly on these semantics: candidate services share the cache, and a
promotion is one more atomic swap per shard.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

import numpy as np

from repro.evm.disassembler import normalize_bytecode
from repro.ml.flat import precompile
from repro.serve.cache import FeatureCache, bytecode_digest

__all__ = ["ScanResult", "ScanService"]

_PREFIT_TOKENS = itertools.count()


def _artifact_namespace(manifest: dict) -> str:
    """Prediction namespace derived from an artifact's content digest.

    Stable across processes and machines: every service serving the same
    artifact version shares prediction-cache hits, and two versions never
    collide.
    """
    return f"pred:artifact:{manifest['digest']}"


def _load_artifact_source(
    source, store=None, expected_fingerprint=None, mmap_mode=None
):
    """Resolve (model, manifest) from a path or a store tag/version."""
    if store is not None:
        return store.load(
            source,
            expected_fingerprint=expected_fingerprint,
            mmap_mode=mmap_mode,
        )
    from repro.artifacts import load_artifact

    return load_artifact(
        source,
        expected_fingerprint=expected_fingerprint,
        mmap_mode=mmap_mode,
    )


@dataclass(frozen=True)
class ScanResult:
    """Verdict for one scanned contract."""

    address: str
    is_phishing: bool
    probability: float
    from_cache: bool = False


class ScanService:
    """One fitted model serving batched phishing scans.

    Args:
        model_name: Registry name used when ``model`` is not given.
        model: A pre-fitted detector; skips training entirely.
        train_dataset: Training data for the lazily-fitted model
            (required unless ``model`` is given).
        rpc: ``eth_getCode``-capable client; required for
            :meth:`scan_many` over addresses.
        cache: Shared :class:`FeatureCache`; a private one is created when
            omitted.
        seed: Seed for the lazily-created model.
        threshold: Probability cut-off for the phishing verdict.
        namespace: Prediction-cache namespace for a pre-fitted ``model``.
            Services sharing a cache reuse each other's predictions iff
            they share a namespace, so pass a stable one (see
            :meth:`prediction_namespace`) when the same fitted model is
            wrapped repeatedly; omitted, each pre-fitted service gets a
            private namespace. Ignored when the model is fitted lazily
            (the namespace then derives from the training data).
        attach_cache: Point a pre-fitted ``model``'s feature extractors
            at this service's cache (the default). Pass ``False`` when
            wrapping a *borrowed* model whose existing cache wiring must
            not be silently re-pointed; the prediction cache still works
            either way. Lazily-fitted models (owned by the service) are
            always attached.
    """

    def __init__(
        self,
        model_name: str = "Random Forest",
        *,
        model=None,
        train_dataset=None,
        rpc=None,
        cache: FeatureCache | None = None,
        seed: int = 0,
        threshold: float = 0.5,
        namespace: str | None = None,
        attach_cache: bool = True,
    ):
        if model is None and train_dataset is None:
            raise ValueError("need either a pre-fitted model or train_dataset")
        self.model_name = model_name
        self.train_dataset = train_dataset
        self.rpc = rpc
        self.cache = cache if cache is not None else FeatureCache()
        self.seed = seed
        self.threshold = threshold
        self.scanned = 0
        # The serving identity is ONE tuple: (model, prediction namespace).
        # Batches snapshot it in a single attribute read, so a concurrent
        # swap_model() can never pair an old model with a new namespace
        # (or vice versa) inside a batch.
        self._serving: tuple[object, str] | None = None
        self._attach_cache = attach_cache
        self.flat_compiled = 0
        self.swaps = 0
        self.artifact_digest: str | None = None
        if model is not None:
            resolved = namespace or (
                f"pred:{model_name}:prefit{next(_PREFIT_TOKENS)}"
            )
            if attach_cache:
                self.cache.attach(model)
            # Pay the (cheap) flat-array compilation now, not inside the
            # first scanned batch — cold-path scans hit the vectorized
            # inference engine immediately.
            self.flat_compiled = precompile(model)
            self._serving = (model, resolved)
        self.fit_seconds = 0.0

    @staticmethod
    def prediction_namespace(
        model_name: str, seed: int, fingerprint: str
    ) -> str:
        """The stable prediction-cache namespace for one trained model."""
        return f"pred:{model_name}:s{seed}:{fingerprint}"

    @classmethod
    def from_artifact(
        cls,
        source,
        *,
        store=None,
        rpc=None,
        cache: FeatureCache | None = None,
        threshold: float = 0.5,
        attach_cache: bool = True,
        expected_fingerprint: str | None = None,
        mmap_mode: str | None = None,
    ) -> "ScanService":
        """Cold-start a service from a persisted model artifact.

        Args:
            source: Artifact file path — or, with ``store``, a tag /
                version / version prefix resolved against it.
            store: Optional :class:`~repro.artifacts.ModelStore`.
            expected_fingerprint: Refuse artifacts trained on a different
                dataset (raises
                :class:`~repro.artifacts.FingerprintMismatchError`).
            mmap_mode: ``"r"`` serves the model's node arrays as
                read-only memory maps of the artifact (or of the
                store's stored-layout spool) instead of heap copies —
                the zero-copy cold start. Every worker process mapping
                the same version shares one set of physical pages.

        The prediction namespace derives from the artifact's content
        digest, so every process serving this version — across restarts
        and machines — shares prediction-cache semantics, and loading is
        the whole cost: no training, no flat recompilation (ensembles
        persist pre-compiled).
        """
        model, manifest = _load_artifact_source(
            source,
            store=store,
            expected_fingerprint=expected_fingerprint,
            mmap_mode=mmap_mode,
        )
        service = cls(
            manifest.get("model_name") or "artifact",
            model=model,
            rpc=rpc,
            cache=cache,
            threshold=threshold,
            namespace=_artifact_namespace(manifest),
            attach_cache=attach_cache,
        )
        service.artifact_digest = manifest["digest"]
        return service

    # ------------------------------------------------------------------ #

    @property
    def model(self):
        """The fitted detector (training it on first use)."""
        self.ensure_fitted()
        return self._serving[0]

    @property
    def _model(self):
        """The currently served model or ``None`` (no side effects) —
        also the hook :func:`repro.ml.flat.precompile` walks."""
        return self._serving[0] if self._serving is not None else None

    def ensure_fitted(self) -> "ScanService":
        """Train the model once; every scan after this reuses it."""
        if self._serving is not None:
            return self
        from repro.core.registry import create_model

        model = create_model(self.model_name, seed=self.seed)
        self.cache.attach(model)
        started = time.perf_counter()
        model.fit(self.train_dataset.bytecodes, self.train_dataset.labels)
        # Flat compilation is part of making the model servable: compile
        # inside the fit accounting so scans never pay it.
        self.flat_compiled = precompile(model)
        self.fit_seconds = time.perf_counter() - started
        self._serving = (
            model,
            self.prediction_namespace(
                self.model_name, self.seed, self.train_dataset.fingerprint()
            ),
        )
        return self

    # ------------------------------------------------------------------ #
    # Hot swap
    # ------------------------------------------------------------------ #

    def swap_model(
        self,
        model,
        *,
        namespace: str | None = None,
        model_name: str | None = None,
        artifact_digest: str | None = None,
        invalidate: bool = True,
    ) -> "ScanService":
        """Atomically replace the served model under live traffic.

        The new ``(model, namespace)`` pair becomes visible in one
        assignment; batches already in flight finish on the snapshot they
        took — scored by the old model, cached under the old namespace —
        so nothing is dropped or mis-scored. Afterwards the *old* model's
        prediction namespace is invalidated in the shared cache
        (``invalidate=False`` for callers coordinating several shard
        views that share one namespace, who invalidate once themselves).
        Feature namespaces (decoded IDs, token codes) survive: the new
        version reuses them immediately.
        """
        if model is None:
            raise ValueError("swap_model needs a fitted model")
        resolved = namespace or (
            f"pred:{model_name or self.model_name}:"
            f"prefit{next(_PREFIT_TOKENS)}"
        )
        if self._attach_cache:
            self.cache.attach(model)
        self.flat_compiled = precompile(model)
        previous = self._serving
        self._serving = (model, resolved)  # the atomic handover
        # The digest describes the *served* version: set for artifact
        # swaps, cleared for direct-model swaps (stats must never report
        # an artifact that is no longer live).
        self.artifact_digest = artifact_digest
        if model_name is not None:
            self.model_name = model_name
        self.swaps += 1
        if (
            invalidate
            and previous is not None
            and previous[1] != resolved
        ):
            self.cache.invalidate_namespace(previous[1])
        return self

    def swap_from_artifact(
        self,
        source,
        *,
        store=None,
        expected_fingerprint: str | None = None,
        invalidate: bool = True,
    ) -> "ScanService":
        """Hot-swap to a persisted version (path or store tag/version)."""
        model, manifest = _load_artifact_source(
            source, store=store, expected_fingerprint=expected_fingerprint
        )
        return self.swap_model(
            model,
            namespace=_artifact_namespace(manifest),
            model_name=manifest.get("model_name"),
            artifact_digest=manifest["digest"],
            invalidate=invalidate,
        )

    def sharded(self, n: int) -> list["ScanService"]:
        """``n`` shard views of this service for partitioned workers.

        Each view wraps the *same* fitted model, feature cache and
        prediction-cache namespace — predictions stay bit-identical and
        any shard's cache fill serves every other shard — but keeps its
        own ``scanned`` counter, so per-worker load is observable. Fitting
        happens here (once) if it hasn't already.

        ``sharded(1)`` still returns a fresh view, so a caller embedding
        the shards (e.g. ``repro.stream.StreamScanner``) gets counters
        isolated from direct use of the parent service.
        """
        if n < 1:
            raise ValueError("shard count must be positive")
        self.ensure_fitted()
        model, namespace = self._serving
        return [
            ScanService(
                self.model_name,
                model=model,
                rpc=self.rpc,
                cache=self.cache,
                seed=self.seed,
                threshold=self.threshold,
                namespace=namespace,
                attach_cache=self._attach_cache,
            )
            for _ in range(n)
        ]

    # ------------------------------------------------------------------ #

    def scan_bytecodes(
        self, bytecodes: list[bytes], addresses: list[str] | None = None
    ) -> list[ScanResult]:
        """Classify a batch of bytecodes, deduped and served via the cache.

        Distinct bytecodes not in the prediction cache are classified in a
        single ``predict_proba`` call; everything else is a cache hit.
        """
        self.ensure_fitted()
        # One snapshot for the whole batch: a concurrent swap_model()
        # cannot split this batch across versions or cache namespaces.
        model, namespace = self._serving
        if addresses is None:
            addresses = [""] * len(bytecodes)
        if len(addresses) != len(bytecodes):
            raise ValueError("addresses/bytecodes length mismatch")
        bytecodes = [normalize_bytecode(code) for code in bytecodes]
        digests = [bytecode_digest(code) for code in bytecodes]

        probability: dict[bytes, float] = {}
        miss_codes: list[bytes] = []
        miss_digests: list[bytes] = []
        for digest, code in zip(digests, bytecodes):
            if digest in probability:
                continue
            hit, value = self.cache.lookup(namespace, digest)
            if hit:
                probability[digest] = value
            else:
                probability[digest] = np.nan  # placeholder until predicted
                miss_codes.append(code)
                miss_digests.append(digest)
        if miss_codes:
            fresh = model.predict_proba(miss_codes)[:, 1]
            for digest, p in zip(miss_digests, fresh):
                probability[digest] = float(p)
                self.cache.put(namespace, digest, float(p))

        self.scanned += len(bytecodes)
        # Only the first occurrence of a predicted-this-call bytecode is
        # "fresh"; repeats in the same batch were served by dedup.
        fresh = set(miss_digests)
        results = []
        for address, digest in zip(addresses, digests):
            first_fresh = digest in fresh
            fresh.discard(digest)
            results.append(
                ScanResult(
                    address=address,
                    is_phishing=probability[digest] >= self.threshold,
                    probability=probability[digest],
                    from_cache=not first_fresh,
                )
            )
        return results

    def scan_many(self, addresses: list[str]) -> list[ScanResult]:
        """Resolve each address over RPC and classify the batch.

        Raises:
            RuntimeError: If the service has no RPC client.
            ValueError: If an address has no deployed code.
        """
        if self.rpc is None:
            raise RuntimeError("ScanService was built without an rpc client")
        bytecodes = []
        for address in addresses:
            code = self.rpc.get_code(address)
            if not code:
                raise ValueError(f"no deployed code at {address}")
            bytecodes.append(code)
        return self.scan_bytecodes(bytecodes, addresses=addresses)

    def scan(self, address: str) -> ScanResult:
        """Single-address convenience wrapper over :meth:`scan_many`."""
        return self.scan_many([address])[0]

    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """Service + cache counters, JSON-ready."""
        return {
            "model": self.model_name,
            "fitted": self._serving is not None,
            "fit_seconds": self.fit_seconds,
            "flat_compiled": self.flat_compiled,
            "scanned": self.scanned,
            "swaps": self.swaps,
            "artifact_digest": self.artifact_digest,
            "cache_entries": len(self.cache),
            **self.cache.stats.as_dict(),
        }
