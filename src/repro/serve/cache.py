"""Content-addressed feature cache for the scan/serve hot path.

Every feature pipeline in the framework starts from the same expensive
step: disassembling deployed bytecode. A scan service sees the same
bytecodes over and over (§III measures ~57% duplicate deployments), and an
evaluation campaign re-reads every training bytecode once per model × fold
× run. :class:`FeatureCache` amortizes that shared work the way incremental
QBF solvers amortize solver state across closely-related queries: the key
is the *content* (SHA-256 of the normalized bytecode), so hits are
independent of address, batch, model or fold.

Cached values per bytecode:

* ``"ids"`` — the compact ``uint8`` mnemonic-ID array from the
  disassembler's single-pass decode (:meth:`FeatureCache.mnemonic_ids`),
* arbitrary per-extractor rows under a caller-chosen namespace
  (:meth:`FeatureCache.get`), e.g. hex-ngram token codes or per-model
  probability rows.

The store is a bounded LRU (``max_entries`` across all namespaces) with
hit/miss/eviction accounting. Cached numpy arrays are marked read-only so
a hit can be returned without a defensive copy.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.evm.disassembler import decode_mnemonic_ids, normalize_bytecode

__all__ = ["CacheStats", "FeatureCache", "bytecode_digest"]

#: Namespace under which decoded mnemonic-ID arrays are stored.
IDS_NAMESPACE = "ids"


def bytecode_digest(bytecode: bytes | bytearray | str) -> bytes:
    """SHA-256 digest of the normalized bytecode — the cache address."""
    return hashlib.sha256(normalize_bytecode(bytecode)).digest()


def _value_bytes(value) -> int:
    """Estimated payload size of one cached value.

    ``nbytes`` for arrays, ``len`` for byte strings, and a small flat
    charge for anything opaque — an *estimate* for capacity planning
    (fleet status, eviction tuning), not an allocator audit.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    return 64


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting plus resident-size estimates.

    ``by_namespace`` keeps its historical ``(hits, misses)`` tuple
    shape; residency (entry counts and estimated bytes, maintained by
    :class:`FeatureCache` on insert/evict) lives in ``resident_bytes``
    and ``resident_by_namespace`` as ``(entries, bytes)``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    by_namespace: dict[str, tuple[int, int]] = field(default_factory=dict)
    resident_bytes: int = 0
    resident_by_namespace: dict[str, tuple[int, int]] = field(
        default_factory=dict
    )

    def record(self, namespace: str, hit: bool) -> None:
        h, m = self.by_namespace.get(namespace, (0, 0))
        if hit:
            self.hits += 1
            self.by_namespace[namespace] = (h + 1, m)
        else:
            self.misses += 1
            self.by_namespace[namespace] = (h, m + 1)

    def account(self, namespace: str, nbytes: int, sign: int) -> None:
        """Adjust residency by one entry (``sign`` +1 insert / -1 drop)."""
        entries, total = self.resident_by_namespace.get(namespace, (0, 0))
        entries += sign
        total += sign * nbytes
        if entries <= 0:
            self.resident_by_namespace.pop(namespace, None)
        else:
            self.resident_by_namespace[namespace] = (entries, total)
        self.resident_bytes = max(0, self.resident_bytes + sign * nbytes)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
            "resident_bytes": self.resident_bytes,
            "by_namespace": {
                ns: {
                    "hits": h,
                    "misses": m,
                    "entries": self.resident_by_namespace.get(ns, (0, 0))[0],
                    "resident_bytes": self.resident_by_namespace.get(
                        ns, (0, 0)
                    )[1],
                }
                for ns, (h, m) in sorted(self.by_namespace.items())
            },
        }


class FeatureCache:
    """Bounded content-addressed LRU over per-bytecode computed values.

    Args:
        max_entries: LRU bound across all namespaces (each cached value —
            an ID array, a feature row, a probability row — is one entry).
    """

    def __init__(self, max_entries: int = 8192):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._store: "OrderedDict[tuple[str, bytes], object]" = OrderedDict()
        # Serving is concurrent (sharded scan workers, hot swaps); every
        # store mutation and probe holds this lock. Feature computation
        # itself stays outside the lock.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def clear(self) -> None:
        """Drop every entry (statistics are kept, residency zeroed)."""
        with self._lock:
            self._store.clear()
            self.stats.resident_bytes = 0
            self.stats.resident_by_namespace.clear()

    def resize(self, max_entries: int) -> int:
        """Change the LRU bound at runtime; evicts down to it immediately.

        Returns the number of entries evicted. Lowering the bound on a
        live service (hot-swap reconfiguration) takes effect here and is
        *maintained* by :meth:`put`, whose eviction loop re-establishes
        the bound even when it shrank between inserts.
        """
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        with self._lock:
            self.max_entries = max_entries
            return self._evict_over_bound()

    def invalidate_namespace(self, namespace: str) -> int:
        """Drop every entry of one namespace; returns how many.

        Hot-swapping a model must invalidate *its* prediction rows while
        leaving shared feature namespaces (decoded mnemonic IDs, token
        codes) untouched — this is the surgical tool
        :meth:`ScanService.swap_model` uses.
        """
        with self._lock:
            doomed = [key for key in self._store if key[0] == namespace]
            for key in doomed:
                self.stats.account(namespace, _value_bytes(self._store[key]), -1)
                del self._store[key]
            # Counted separately from capacity evictions: an invalidation
            # is a correctness event (stale rows dropped on promotion),
            # not an LRU pressure signal.
            self.stats.invalidations += len(doomed)
            return len(doomed)

    # ------------------------------------------------------------------ #

    def get(
        self,
        namespace: str,
        bytecode: bytes | bytearray | str,
        compute: Callable[[bytes], object],
        digest: bytes | None = None,
    ):
        """Return the cached value for (namespace, bytecode), computing on miss.

        ``compute`` receives the normalized bytecode. Numpy results are
        stored read-only; callers must not mutate returned arrays. Pass a
        precomputed ``digest`` (from :func:`bytecode_digest`) to skip
        re-hashing when scanning a batch.
        """
        if digest is None:
            digest = bytecode_digest(bytecode)
        hit, value = self.lookup(namespace, digest)
        if hit:
            return value
        value = compute(normalize_bytecode(bytecode))
        self.put(namespace, digest, value)
        return value

    def lookup(self, namespace: str, digest: bytes) -> tuple[bool, object]:
        """Stats-recording probe by precomputed digest: ``(hit, value)``.

        The building block for batch flows that want to compute all misses
        in one call (see :meth:`ScanService.scan_bytecodes`) instead of the
        one-at-a-time :meth:`get` protocol.
        """
        key = (namespace, digest)
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.stats.record(namespace, hit=True)
                return True, self._store[key]
            self.stats.record(namespace, hit=False)
            return False, None

    def put(self, namespace: str, digest: bytes, value) -> None:
        """Insert a computed value at (namespace, digest), evicting LRU.

        Eviction loops until the bound holds: ``max_entries`` may have
        been *lowered* since the last insert (live reconfiguration via
        :meth:`resize` or direct assignment), so a single pop is not
        enough to re-establish the invariant.
        """
        if isinstance(value, np.ndarray):
            value.setflags(write=False)
        key = (namespace, digest)
        with self._lock:
            previous = self._store.get(key)
            if previous is not None:
                self.stats.account(namespace, _value_bytes(previous), -1)
            self._store[key] = value
            self._store.move_to_end(key)
            self.stats.account(namespace, _value_bytes(value), +1)
            self._evict_over_bound()

    def _evict_over_bound(self) -> int:
        """Pop LRU entries until ``len <= max_entries`` (lock held)."""
        evicted = 0
        while len(self._store) > self.max_entries:
            (namespace, _digest), value = self._store.popitem(last=False)
            self.stats.account(namespace, _value_bytes(value), -1)
            evicted += 1
        self.stats.evictions += evicted
        return evicted

    def mnemonic_ids(self, bytecode: bytes | bytearray | str) -> np.ndarray:
        """Cached single-pass decode to the ``uint8`` mnemonic-ID array.

        Drop-in ``decoder`` for
        :meth:`~repro.features.histogram.OpcodeHistogramExtractor.set_decoder`.
        """
        return self.get(IDS_NAMESPACE, bytecode, decode_mnemonic_ids)

    def warm(self, bytecodes) -> int:
        """Decode every bytecode once up front; returns unique-entry count."""
        before = self.stats.misses
        for bytecode in bytecodes:
            self.mnemonic_ids(bytecode)
        return self.stats.misses - before

    # ------------------------------------------------------------------ #

    def attach(self, model) -> bool:
        """Point a model's feature extractors at this cache, if supported.

        Any model exposing ``use_feature_cache`` (the HSC and SCSGuard
        detectors do) gets cached decoding; returns whether it attached.
        """
        hook = getattr(model, "use_feature_cache", None)
        if hook is None:
            return False
        hook(self)
        return True
