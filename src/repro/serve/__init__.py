"""Serve layer: batched scanning over a content-addressed feature cache.

The paper's pipeline is campaign-shaped — crawl, train, evaluate, discard.
This subpackage is the complementary *service* shape the ROADMAP's north
star asks for: fit once, then answer a stream of "is this contract
phishing?" queries as fast as the hardware allows.

Components
----------

* :class:`~repro.serve.cache.FeatureCache` — bounded LRU keyed by SHA-256
  of the normalized bytecode. Stores the disassembler's single-pass
  ``uint8`` mnemonic-ID arrays, per-extractor rows (hex-ngram token
  codes), and per-model probability rows. Exposes
  hit/miss/eviction counters (``cache.stats``).
* :class:`~repro.serve.service.ScanService` — one fitted model +
  ``scan_bytecodes`` / ``scan_many`` batch entry points with in-batch
  dedup and cache-served repeat queries.

Design notes
------------

Deployed bytecode is heavily duplicated (§III: the study corpus shrinks
~57% under dedup), so keying work by *content* rather than by address or
request makes the steady-state cost of a scan one hash plus one dict
probe. The same cache slots under the evaluation campaign:
``ModelEvaluationModule(cache=...)`` decodes each unique bytecode once
per campaign instead of once per model × fold × run, because every
HSC model's extractor pulls ID arrays through the shared cache.

Cache knobs
-----------

* ``FeatureCache(max_entries=...)`` — LRU bound across all namespaces
  (default 8192 entries; one entry ≈ one decoded array or one float).
* ``ScanService(cache=...)`` — pass a shared cache to pool work across
  services/models; omit for a private one.
* ``ScanService(threshold=...)`` — phishing verdict cut-off (default 0.5).
* CLI: ``phishinghook scan --batch addr1 addr2 ...`` routes through a
  ScanService and prints the cache statistics after the batch.

Artifacts and hot swap
----------------------

With the artifact layer (:mod:`repro.artifacts`) the normal production
entry point is a persisted model, not an in-process fit:

* ``ScanService.from_artifact(path_or_ref, store=...)`` — millisecond
  cold start; the prediction-cache namespace derives from the artifact's
  content digest, so every process serving one version shares semantics.
* ``service.swap_model(model)`` / ``swap_from_artifact(ref)`` — replace
  the served version under live traffic. The serving identity is one
  ``(model, namespace)`` tuple read atomically per batch, so in-flight
  batches finish consistently; only the outgoing prediction namespace is
  invalidated (``FeatureCache.invalidate_namespace``).
* ``FeatureCache.resize(n)`` — live LRU-bound reconfiguration; ``put``
  re-establishes the bound even when it shrank between inserts.

Entry points
------------

>>> from repro.serve import FeatureCache, ScanService   # doctest: +SKIP
>>> service = ScanService.from_artifact("production", store=store)
>>> results = service.scan_many(addresses)              # doctest: +SKIP

or, from a built pipeline facade: ``PhishingHook.scan_service()``.
"""

from repro.serve.cache import CacheStats, FeatureCache, bytecode_digest
from repro.serve.service import ScanResult, ScanService

__all__ = [
    "CacheStats",
    "FeatureCache",
    "bytecode_digest",
    "ScanResult",
    "ScanService",
]
