"""Serve layer: batched scanning over a content-addressed feature cache.

The paper's pipeline is campaign-shaped — crawl, train, evaluate, discard.
This subpackage is the complementary *service* shape the ROADMAP's north
star asks for: fit once, then answer a stream of "is this contract
phishing?" queries as fast as the hardware allows.

Components
----------

* :class:`~repro.serve.cache.FeatureCache` — bounded LRU keyed by SHA-256
  of the normalized bytecode. Stores the disassembler's single-pass
  ``uint8`` mnemonic-ID arrays, per-extractor rows (hex-ngram token
  codes), and per-model probability rows. Exposes
  hit/miss/eviction counters (``cache.stats``).
* :class:`~repro.serve.service.ScanService` — one fitted model +
  ``scan_bytecodes`` / ``scan_many`` batch entry points with in-batch
  dedup and cache-served repeat queries.

Design notes
------------

Deployed bytecode is heavily duplicated (§III: the study corpus shrinks
~57% under dedup), so keying work by *content* rather than by address or
request makes the steady-state cost of a scan one hash plus one dict
probe. The same cache slots under the evaluation campaign:
``ModelEvaluationModule(cache=...)`` decodes each unique bytecode once
per campaign instead of once per model × fold × run, because every
HSC model's extractor pulls ID arrays through the shared cache.

Cache knobs
-----------

* ``FeatureCache(max_entries=...)`` — LRU bound across all namespaces
  (default 8192 entries; one entry ≈ one decoded array or one float).
* ``ScanService(cache=...)`` — pass a shared cache to pool work across
  services/models; omit for a private one.
* ``ScanService(threshold=...)`` — phishing verdict cut-off (default 0.5).
* CLI: ``phishinghook scan --batch addr1 addr2 ...`` routes through a
  ScanService and prints the cache statistics after the batch.

Entry points
------------

>>> from repro.serve import FeatureCache, ScanService   # doctest: +SKIP
>>> service = ScanService("Random Forest", train_dataset=ds, rpc=rpc)
>>> results = service.scan_many(addresses)              # doctest: +SKIP

or, from a built pipeline facade: ``PhishingHook.scan_service()``.
"""

from repro.serve.cache import CacheStats, FeatureCache, bytecode_digest
from repro.serve.service import ScanResult, ScanService

__all__ = [
    "CacheStats",
    "FeatureCache",
    "bytecode_digest",
    "ScanResult",
    "ScanService",
]
