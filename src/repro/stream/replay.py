"""Timeline replay: drive historical campaigns through the stream.

Before trusting the pipeline at the chain head, replay a recorded
campaign through it and measure what users would have experienced: feed
each historical deployment as a :class:`ContractEvent` in timestamp
order (optionally paced to a target events/sec), let the scanner
micro-batch and score, and account end-to-end throughput plus p50/p95/p99
per-event latency. The same driver backs ``phishinghook monitor`` and
``benchmarks/bench_stream_latency.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.chain.blockchain import Blockchain
from repro.stream.events import ContractEvent, contract_event_at
from repro.stream.scanner import StreamAlert, StreamScanner

__all__ = ["ReplayReport", "TimelineReplayer"]


@dataclass
class ReplayReport:
    """What one replayed campaign experienced end to end."""

    events: int
    scanned: int
    flagged: int
    dropped: int
    deduped: int
    skipped_empty: int
    batches: int
    duration_seconds: float
    alerts: list[StreamAlert]
    latency_seconds: dict[str, float]

    @property
    def events_per_second(self) -> float:
        return self.events / self.duration_seconds if self.duration_seconds else 0.0

    @property
    def scanned_per_second(self) -> float:
        return self.scanned / self.duration_seconds if self.duration_seconds else 0.0

    def as_dict(self) -> dict:
        """JSON-ready summary (alert addresses only, not full alerts)."""
        return {
            "events": self.events,
            "scanned": self.scanned,
            "flagged": self.flagged,
            "dropped": self.dropped,
            "deduped": self.deduped,
            "skipped_empty": self.skipped_empty,
            "batches": self.batches,
            "duration_seconds": self.duration_seconds,
            "events_per_second": self.events_per_second,
            "scanned_per_second": self.scanned_per_second,
            "latency_seconds": self.latency_seconds,
            "alert_addresses": [a.address for a in self.alerts],
        }


class TimelineReplayer:
    """Feed deployment history through a :class:`StreamScanner`.

    Args:
        scanner: The consumer; its queue/batch/backpressure config is
            exactly what the replayed traffic exercises.
        rate: Target feed rate in events/sec. ``None`` replays as fast as
            the scanner drains — the throughput-measurement mode; a finite
            rate paces producers to simulate chain-head cadence and lets
            the deadline flush (``scanner.tick``) come into play.
        tick_every: Call ``scanner.tick()`` after this many fed events, so
            deadline flushes fire even mid-replay.
    """

    def __init__(
        self,
        scanner: StreamScanner,
        *,
        rate: float | None = None,
        tick_every: int = 16,
    ):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for max speed)")
        if tick_every < 1:
            raise ValueError("tick_every must be positive")
        self.scanner = scanner
        self.rate = rate
        self.tick_every = tick_every

    # ------------------------------------------------------------------ #

    def replay_chain(self, chain: Blockchain) -> ReplayReport:
        """Replay every deployment on ``chain``, oldest first."""
        events = [
            contract_event_at(
                address=account.address,
                code=account.code,
                timestamp=account.deployed_at,
                transaction=chain.get_creation_transaction(account.address),
                sequence=sequence,
            )
            for sequence, account in enumerate(chain.accounts())
        ]
        return self.replay_events(events)

    def replay_records(self, records, chain: Blockchain | None = None) -> ReplayReport:
        """Replay corpus-style records (``address``/``bytecode``/``timestamp``).

        When ``chain`` is given, block numbers and tx hashes resolve
        through its O(1) creation-transaction index.
        """
        ordered = sorted(records, key=lambda r: (r.timestamp, r.address))
        events = [
            contract_event_at(
                address=record.address,
                code=record.bytecode,
                timestamp=record.timestamp,
                transaction=(
                    chain.get_creation_transaction(record.address)
                    if chain else None
                ),
                sequence=sequence,
            )
            for sequence, record in enumerate(ordered)
        ]
        return self.replay_events(events)

    def replay_events(self, events: list[ContractEvent]) -> ReplayReport:
        """Feed prepared events through the scanner; drain; account."""
        scanner = self.scanner
        before = scanner.stats.as_dict()
        alerts_before = len(scanner.alerts)

        started = time.perf_counter()
        for index, event in enumerate(events):
            if self.rate is not None:
                target = started + index / self.rate
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            # Stamp at feed time: latency measures the consumer, not the
            # replayer's pacing backlog.
            scanner.on_event(
                ContractEvent(
                    address=event.address,
                    code=event.code,
                    block_number=event.block_number,
                    timestamp=event.timestamp,
                    tx_hash=event.tx_hash,
                    sequence=event.sequence,
                    enqueued_at=time.perf_counter(),
                )
            )
            if (index + 1) % self.tick_every == 0:
                scanner.tick()
        scanner.flush()
        duration = time.perf_counter() - started

        after = scanner.stats.as_dict()
        scanned_delta = after["scanned"] - before["scanned"]
        window = scanner.stats.recent_latencies(scanned_delta)
        if window:
            p50, p95, p99 = np.percentile(window, [50, 95, 99])
            latency = {"p50": float(p50), "p95": float(p95), "p99": float(p99)}
        else:
            latency = {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return ReplayReport(
            events=len(events),
            scanned=scanned_delta,
            flagged=after["flagged"] - before["flagged"],
            dropped=after["dropped"] - before["dropped"],
            deduped=after["deduped"] - before["deduped"],
            skipped_empty=after["skipped_empty"] - before["skipped_empty"],
            batches=after["batches"] - before["batches"],
            duration_seconds=duration,
            alerts=scanner.alerts[alerts_before:],
            latency_seconds=latency,
        )
