"""Event-driven streaming detection (the §VII live mode, production-shaped).

The campaign pipeline (:mod:`repro.core`) is batch-shaped: crawl, train,
evaluate. This subpackage is the *online* shape the ROADMAP's north star
asks for — detection keeping up with the chain head while wallet users
sign within seconds:

* :mod:`repro.stream.events` — :class:`EventBus` pub/sub over
  new-block / new-contract events, bridged from a
  :class:`~repro.chain.blockchain.Blockchain` in-process
  (``bus.attach(chain)``) or pulled through the JSON-RPC filter plane
  (``eth_subscribe`` + ``eth_getFilterChanges`` → ``bus.pump_rpc``), so
  the pipeline downstream is identical either way.
* :mod:`repro.stream.scanner` — :class:`StreamScanner`: bounded intake
  queue with explicit backpressure (block / drop_oldest / drop_newest /
  sample), micro-batches flushed on size or deadline, N shard workers
  partitioned by address hash, each scoring through the fit-once
  :class:`~repro.serve.service.ScanService` + shared
  :class:`~repro.serve.cache.FeatureCache` hot path.
* :mod:`repro.stream.sinks` — pluggable alert delivery (memory, JSONL,
  callback, webhook) with per-sink delivered/failed stats, plus
  :class:`~repro.stream.sinks.DeadLetterSink`: a circuit-breaking
  wrapper that spools undeliverable alerts to a JSONL dead-letter file
  and replays them when the channel recovers.
* :mod:`repro.stream.replay` — :class:`TimelineReplayer`: feed a
  historical campaign through the stream at a configurable rate and
  report events/sec plus p50/p95/p99 end-to-end latency.

Scored shard micro-batches additionally fan out to registered
*observers* (:meth:`StreamScanner.add_observer`) — the hook
:mod:`repro.rollout` uses to shadow-score a candidate model on identical
live traffic and hot-swap every shard on promotion.

Entry points: ``phishinghook monitor`` (CLI),
:class:`repro.core.live.LiveDetector` (the poll-API adapter over this
subsystem), and ``benchmarks/bench_stream_latency.py``.
"""

from repro.stream.events import (
    TOPIC_BLOCKS,
    TOPIC_CONTRACTS,
    BlockEvent,
    ContractEvent,
    EventBus,
    Subscription,
)
from repro.stream.replay import ReplayReport, TimelineReplayer
from repro.stream.scanner import (
    ShardStats,
    StreamAlert,
    StreamScanner,
    StreamStats,
)
from repro.stream.sinks import (
    AlertSink,
    CallbackSink,
    DeadLetterSink,
    DeadLetterStats,
    JsonlSink,
    MemorySink,
    SinkStats,
    WebhookSink,
)

__all__ = [
    "TOPIC_BLOCKS",
    "TOPIC_CONTRACTS",
    "BlockEvent",
    "ContractEvent",
    "EventBus",
    "Subscription",
    "ReplayReport",
    "TimelineReplayer",
    "ShardStats",
    "StreamAlert",
    "StreamScanner",
    "StreamStats",
    "AlertSink",
    "CallbackSink",
    "DeadLetterSink",
    "DeadLetterStats",
    "JsonlSink",
    "MemorySink",
    "SinkStats",
    "WebhookSink",
]
