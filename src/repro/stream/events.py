"""Event envelope and publish/subscribe bus for the streaming pipeline.

The detection side of the system must not poll: §VII's live-deployment
mode has wallet users signing within seconds, so new-contract events are
*pushed* from the ledger to whoever scores them. This module defines the
two event types the pipeline speaks (:class:`BlockEvent`,
:class:`ContractEvent`) and an in-process :class:`EventBus` with bounded,
policy-governed subscriptions — the same drop/block/sample vocabulary a
DDS QoS profile would express (PAPERS.md: unresolvable QoS chains come
from *implicit* buffering decisions; here every buffer is explicit).

``EventBus.attach(chain)`` bridges a :class:`~repro.chain.blockchain.
Blockchain` onto the bus; for events arriving over the wire instead,
open a ``newContracts`` filter (``client.subscribe``) and call
``EventBus.pump_rpc(client, subscription_id)`` per poll cycle — either
way the pipeline downstream of the bus is identical.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.chain.blockchain import Blockchain, DeployEvent

__all__ = [
    "BlockEvent",
    "ContractEvent",
    "Subscription",
    "EventBus",
    "TOPIC_BLOCKS",
    "TOPIC_CONTRACTS",
]

TOPIC_BLOCKS = "blocks"
TOPIC_CONTRACTS = "contracts"

#: Backpressure policies for a bounded subscription buffer.
POLICIES = ("drop_oldest", "drop_newest", "sample")


def shed(queue: deque, max_len: int, policy: str, rng):
    """Bounded-buffer admission: one policy state machine for every queue.

    Makes room in ``queue`` (evicting its head) as ``policy`` dictates.
    Returns ``(admit, evicted)``: whether the caller should append the
    incoming item, and the resident evicted to make room (``None`` when
    nothing was evicted — so ``admit is False`` or ``evicted is not
    None`` each count one shed item). Policies:

    * ``drop_oldest`` — always admit, evicting the oldest resident,
    * ``drop_newest`` — refuse the newcomer, keep history,
    * ``sample`` — coin-flip (via ``rng``) between the two.
    """
    if len(queue) < max_len:
        return True, None
    if policy == "drop_newest":
        return False, None
    if policy == "sample" and rng.random() >= 0.5:
        return False, None
    return True, queue.popleft()


@dataclass(frozen=True)
class BlockEvent:
    """A new block appeared at the chain head."""

    number: int
    timestamp: int

    topic = TOPIC_BLOCKS


@dataclass(frozen=True)
class ContractEvent:
    """A contract-creation landed on chain.

    ``enqueued_at`` is the producer-side ``perf_counter`` stamp; consumers
    subtract it from their own stamp for end-to-end latency accounting.
    It self-stamps at construction when omitted (a zero default would
    make latency look like process uptime and keep deadline flushes
    permanently overdue).
    """

    address: str
    code: bytes
    block_number: int
    timestamp: int
    tx_hash: str
    sequence: int
    enqueued_at: float = field(default_factory=time.perf_counter)

    topic = TOPIC_CONTRACTS


@dataclass
class Subscription:
    """One subscriber: either a direct callback or a bounded pull buffer.

    With a ``handler`` the bus delivers synchronously (the subscriber *is*
    the backpressure — it runs inline). Without one, events land in a
    bounded buffer governed by ``policy``:

    * ``drop_oldest`` — evict the oldest pending event (tail the head),
    * ``drop_newest`` — refuse the incoming event (keep history),
    * ``sample`` — under overflow, admit each incoming event with
      probability 0.5 (evicting the oldest to make room), refusing the
      rest; deterministic under ``seed``.
    """

    topic: str
    handler: object = None
    max_pending: int = 1024
    policy: str = "drop_oldest"
    seed: int = 0
    delivered: int = 0
    dropped: int = 0
    _pending: deque = field(default_factory=deque, repr=False)
    _rng: np.random.Generator = field(default=None, repr=False)

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; supported: {POLICIES}"
            )
        if self.max_pending < 1:
            raise ValueError("max_pending must be positive")
        self._rng = np.random.default_rng(self.seed)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def deliver(self, event) -> bool:
        """Bus-side entry: hand one event to this subscriber."""
        if self.handler is not None:
            self.handler(event)
            self.delivered += 1
            return True
        admit, evicted = shed(
            self._pending, self.max_pending, self.policy, self._rng
        )
        self.dropped += int(not admit) + int(evicted is not None)
        if not admit:
            return False
        self._pending.append(event)
        self.delivered += 1
        return True

    def drain(self, limit: int | None = None) -> list:
        """Pop up to ``limit`` pending events (all, when omitted)."""
        count = len(self._pending) if limit is None else min(limit, len(self._pending))
        return [self._pending.popleft() for _ in range(count)]


class EventBus:
    """Topic-based fan-out of chain events to subscriptions.

    Example:
        >>> bus = EventBus()
        >>> sub = bus.subscribe(TOPIC_CONTRACTS)
        >>> detach = bus.attach(chain)           # doctest: +SKIP
        >>> chain.deploy(code, timestamp=t)      # doctest: +SKIP
        >>> events = sub.drain()                 # doctest: +SKIP
    """

    def __init__(self):
        self._subscriptions: dict[str, list[Subscription]] = {}
        self.published = 0
        #: Events the upstream RPC filter shed before we could pump them
        #: (reported per drain by ``eth_getFilterChanges``). Nonzero means
        #: the poll cadence is too slow for the deployment rate.
        self.dropped_upstream = 0

    def subscribe(
        self,
        topic: str,
        handler=None,
        *,
        max_pending: int = 1024,
        policy: str = "drop_oldest",
        seed: int = 0,
    ) -> Subscription:
        subscription = Subscription(
            topic=topic,
            handler=handler,
            max_pending=max_pending,
            policy=policy,
            seed=seed,
        )
        self._subscriptions.setdefault(topic, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        listeners = self._subscriptions.get(subscription.topic, [])
        if subscription in listeners:
            listeners.remove(subscription)

    def subscriber_count(self, topic: str | None = None) -> int:
        if topic is not None:
            return len(self._subscriptions.get(topic, []))
        return sum(len(subs) for subs in self._subscriptions.values())

    def publish(self, event) -> int:
        """Fan an event out to its topic; returns deliveries (not drops)."""
        self.published += 1
        delivered = 0
        for subscription in list(self._subscriptions.get(event.topic, [])):
            if subscription.deliver(event):
                delivered += 1
        return delivered

    # ------------------------------------------------------------------ #
    # Producers
    # ------------------------------------------------------------------ #

    def attach(self, chain: Blockchain):
        """Publish the chain's deployments onto the bus as they happen.

        Returns a zero-argument detach callable.
        """

        def on_deploy(deploy: DeployEvent) -> None:
            if deploy.block_is_new:
                self.publish(
                    BlockEvent(
                        number=deploy.block.number,
                        timestamp=deploy.block.timestamp,
                    )
                )
            self.publish(contract_event(deploy))

        chain.add_listener(on_deploy)
        return lambda: chain.remove_listener(on_deploy)

    def pump_rpc(self, client, subscription_id: str) -> int:
        """Drain one JSON-RPC ``newContracts`` filter onto the bus.

        The offline counterpart of a websocket push loop: each call maps
        the wire envelope back to :class:`ContractEvent` and publishes.
        Returns the number of events pumped; events the filter shed
        between polls accumulate in :attr:`dropped_upstream`.
        """
        events, dropped = client.filter_changes(subscription_id)
        self.dropped_upstream += dropped
        for body in events:
            self.publish(
                ContractEvent(
                    address=body["address"],
                    code=bytes.fromhex(body["code"][2:]),
                    block_number=int(body["blockNumber"], 16),
                    timestamp=int(body["timestamp"], 16),
                    tx_hash=body["transactionHash"],
                    sequence=body["sequence"],
                    enqueued_at=time.perf_counter(),
                )
            )
        return len(events)


def contract_event(deploy: DeployEvent) -> ContractEvent:
    """Map a ledger :class:`DeployEvent` to the bus envelope."""
    return ContractEvent(
        address=deploy.account.address,
        code=deploy.account.code,
        block_number=deploy.transaction.block_number,
        timestamp=deploy.transaction.timestamp,
        tx_hash=deploy.transaction.tx_hash,
        sequence=deploy.sequence,
        enqueued_at=time.perf_counter(),
    )


def contract_event_at(
    address: str, code: bytes, timestamp: int, transaction, sequence: int
) -> ContractEvent:
    """Envelope for a historical deployment (replay / poll backfill).

    ``transaction`` is the creation transaction or ``None`` when the
    source ledger has no record of it (block number 0, empty hash).
    """
    return ContractEvent(
        address=address,
        code=code,
        block_number=transaction.block_number if transaction else 0,
        timestamp=timestamp,
        tx_hash=transaction.tx_hash if transaction else "",
        sequence=sequence,
        enqueued_at=time.perf_counter(),
    )
