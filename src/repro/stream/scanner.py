"""Micro-batching streaming scanner: events in, alerts out.

The seed ``LiveDetector`` rescanned the whole account set per poll and
scored bytecodes one ``predict_proba`` call at a time. ``StreamScanner``
inverts the shape: deployment events are *pushed* into a bounded intake
queue, grouped into micro-batches (flushed on size or deadline — the
classic latency/throughput dial), partitioned across N shard workers by
address hash, and each shard scores its slice through the fit-once
:class:`~repro.serve.service.ScanService` hot path (in-batch dedup +
content-addressed prediction cache). Cold starts are covered too: the
service precompiles ensemble models into the flat inference engine
(:mod:`repro.ml.flat`) when it fits or wraps them, so the very first
micro-batch after a stream spin-up is scored by vectorized descent rather
than per-row tree walks (``summary()["flat_compiled"]``). Flagged deployments become
:class:`StreamAlert` objects fanned out to the registered sinks.

Backpressure is explicit: the intake queue is bounded, and the ``policy``
chooses what happens when a producer outruns the scanner —

* ``block`` — flush inline to make room (the producer pays the scan;
  nothing is lost; the in-process analogue of blocking the publisher),
* ``drop_oldest`` / ``drop_newest`` / ``sample`` — shed load with an
  explicit, counted drop (freshest-first, history-first, or randomized).

Every stage keeps counters (``scanner.stats``), and per-event end-to-end
latency (enqueue → scored) feeds the p50/p95/p99 accounting the paper's
§IV-F latency budget motivates.

Two post-scoring hooks hang off the scanner: *sinks* receive every
flagged alert (:mod:`repro.stream.sinks`, failure-isolated), and
*observers* receive every scored shard micro-batch
(:meth:`StreamScanner.add_observer`) — the seam the shadow-rollout
subsystem (:mod:`repro.rollout`) attaches to for candidate-vs-production
validation on identical live traffic.

Thread-safety: one flusher at a time. ``on_event`` / ``tick`` / ``flush``
mutate the intake queue without locking and must not race each other;
concurrency lives *below* the scanner (shard workers share one
internally-locked :class:`~repro.serve.cache.FeatureCache`, and
:meth:`rollout` swaps are per-worker atomic against in-flight batches).
"""

from __future__ import annotations

import time
import zlib
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.serve.service import ScanService
from repro.stream.events import TOPIC_CONTRACTS, ContractEvent, shed

__all__ = ["StreamAlert", "ShardStats", "StreamStats", "StreamScanner"]

#: Intake backpressure policies.
SCANNER_POLICIES = ("block", "drop_oldest", "drop_newest", "sample")

#: Latency samples retained for percentile accounting. The buffer compacts
#: to this many once it doubles, so a scanner tailing the chain head for
#: months holds O(window) memory; percentiles cover the retained tail.
LATENCY_WINDOW = 65536


@dataclass(frozen=True)
class StreamAlert:
    """One flagged deployment, as delivered to sinks."""

    address: str
    probability: float
    block_number: int
    timestamp: int
    latency_seconds: float
    shard: int
    batch_id: int
    from_cache: bool


@dataclass
class ShardStats:
    """Per-worker accounting."""

    shard: int
    scanned: int = 0
    flagged: int = 0
    batches: int = 0


@dataclass
class StreamStats:
    """Aggregate pipeline accounting for one scanner."""

    events_in: int = 0
    deduped: int = 0
    skipped_empty: int = 0
    dropped: int = 0
    scanned: int = 0
    flagged: int = 0
    batches: int = 0
    observer_errors: int = 0
    total_latency_seconds: float = 0.0
    _latencies: list = field(default_factory=list, repr=False)

    @property
    def mean_latency_seconds(self) -> float:
        return self.total_latency_seconds / self.scanned if self.scanned else 0.0

    def record_latency(self, latency: float) -> None:
        """Retain a latency sample, compacting past the bounded window."""
        self._latencies.append(latency)
        if len(self._latencies) > 2 * LATENCY_WINDOW:
            del self._latencies[:-LATENCY_WINDOW]

    def recent_latencies(self, count: int) -> list[float]:
        """The newest ``count`` retained samples (fewer after compaction)."""
        return self._latencies[-count:] if count > 0 else []

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 of per-event enqueue→scored latency (seconds),
        over the retained sample window."""
        if not self._latencies:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        p50, p95, p99 = np.percentile(self._latencies, [50, 95, 99])
        return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}

    def as_dict(self) -> dict:
        return {
            "events_in": self.events_in,
            "deduped": self.deduped,
            "skipped_empty": self.skipped_empty,
            "dropped": self.dropped,
            "scanned": self.scanned,
            "flagged": self.flagged,
            "batches": self.batches,
            "observer_errors": self.observer_errors,
            "mean_latency_seconds": self.mean_latency_seconds,
            "latency_seconds": self.latency_percentiles(),
        }


def shard_of(address: str, shards: int) -> int:
    """Deterministic address → worker assignment (CRC32 partitioning)."""
    return zlib.crc32(address.encode()) % shards


class StreamScanner:
    """Consume :class:`ContractEvent` streams into scored micro-batches.

    Args:
        service: A :class:`ScanService` (fitted or lazily fitted); its
            model, cache and prediction namespace are shared across all
            shard workers via :meth:`ScanService.sharded`, so predictions
            are bit-identical to a direct ``scan_bytecodes`` call.
        shards: Worker count; events partition by ``crc32(address)``.
        max_batch: Micro-batch flush threshold (events per flush).
        max_queue: Intake bound; must be ≥ ``max_batch`` when
            ``auto_flush`` is on (so a batch can form before overflow).
        policy: Backpressure policy (see module docstring).
        auto_flush: Flush a micro-batch inline whenever ``max_batch``
            events are queued (producer-paced; the default). Turn off to
            model an independent consumer: events then accumulate until
            :meth:`tick` / :meth:`flush_batch` / :meth:`flush` runs, and
            the bounded queue + ``policy`` govern overflow in between.
        flush_deadline_seconds: Age of the oldest queued event that forces
            a flush in :meth:`tick` — bounds worst-case alert latency when
            traffic is too thin to fill batches.
        threshold: Alert cut-off; defaults to the service threshold.
        sinks: Initial :class:`~repro.stream.sinks.AlertSink` list.
        dedup_addresses: Drop redeliveries of an address already consumed
            (at-least-once producers are the norm; scanning is idempotent
            but alerting should not double-fire).
        seed: Seed for the ``sample`` policy.
    """

    def __init__(
        self,
        service: ScanService,
        *,
        shards: int = 1,
        max_batch: int = 32,
        max_queue: int = 256,
        policy: str = "block",
        auto_flush: bool = True,
        flush_deadline_seconds: float | None = None,
        threshold: float | None = None,
        sinks=(),
        dedup_addresses: bool = True,
        seed: int = 0,
    ):
        if shards < 1:
            raise ValueError("shards must be positive")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        if auto_flush and max_queue < max_batch:
            raise ValueError(
                "max_queue must be >= max_batch under auto_flush "
                "(a batch must be able to form before the queue overflows)"
            )
        if policy not in SCANNER_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; supported: {SCANNER_POLICIES}"
            )
        self.service = service
        self.workers = service.sharded(shards)
        self.shards = shards
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.policy = policy
        self.auto_flush = auto_flush
        self.flush_deadline_seconds = flush_deadline_seconds
        self.threshold = service.threshold if threshold is None else threshold
        self.sinks = list(sinks)
        self.observers: list = []
        self.dedup_addresses = dedup_addresses
        self.stats = StreamStats()
        self.shard_stats = [ShardStats(shard=i) for i in range(shards)]
        self.alerts: list[StreamAlert] = []
        self.rollouts = 0
        self._queue: deque[ContractEvent] = deque()
        self._seen: set[str] = set()
        self._rng = np.random.default_rng(seed)
        self._batch_id = 0

    @classmethod
    def from_artifact(
        cls,
        source,
        *,
        store=None,
        rpc=None,
        cache=None,
        threshold: float = 0.5,
        expected_fingerprint: str | None = None,
        **scanner_kwargs,
    ) -> "StreamScanner":
        """Cold-start a whole sharded stream pipeline from one artifact.

        One :meth:`ScanService.from_artifact` load fans out to every
        shard worker (they share the loaded model, feature cache and
        digest-derived prediction namespace), so spinning up an N-shard
        scanner costs a single artifact read — no training anywhere.
        ``source``/``store``/``expected_fingerprint`` as in
        :meth:`ScanService.from_artifact`; remaining keyword arguments go
        to the scanner constructor.
        """
        service = ScanService.from_artifact(
            source,
            store=store,
            rpc=rpc,
            cache=cache,
            threshold=threshold,
            expected_fingerprint=expected_fingerprint,
        )
        return cls(service, **scanner_kwargs)

    def rollout(
        self,
        source=None,
        *,
        model=None,
        store=None,
        namespace: str | None = None,
        model_name: str | None = None,
        expected_fingerprint: str | None = None,
        artifact_digest: str | None = None,
    ) -> "StreamScanner":
        """Live-roll a new model version across every shard worker.

        Loads the new version once (``source`` + ``store`` as in
        :meth:`from_artifact`, or pass a fitted ``model`` directly —
        ``artifact_digest`` then records which version it is, e.g. a
        shadow rollout promoting a candidate it already loaded), then
        swaps the parent service and each shard. Swaps are per-worker
        atomic — a shard's in-flight micro-batch finishes on the version
        it snapshotted, nothing is dropped — and the outgoing prediction
        namespaces are invalidated exactly once after every shard is on
        the new version.
        """
        if (source is None) == (model is None):
            raise ValueError("rollout needs an artifact source or a model")
        digest = artifact_digest
        if source is not None:
            from repro.serve.service import (
                _artifact_namespace,
                _load_artifact_source,
            )

            model, manifest = _load_artifact_source(
                source, store=store, expected_fingerprint=expected_fingerprint
            )
            namespace = _artifact_namespace(manifest)
            model_name = manifest.get("model_name")
            digest = manifest["digest"]
        if namespace is None:
            from repro.serve.service import _PREFIT_TOKENS

            # One namespace minted up front: every shard must keep
            # sharing prediction-cache hits after the roll.
            namespace = (
                f"pred:{model_name or self.service.model_name}:"
                f"rollout{next(_PREFIT_TOKENS)}"
            )
        targets = [self.service, *self.workers]
        outgoing = {
            target._serving[1]
            for target in targets
            if target._serving is not None
        }
        for target in targets:
            target.swap_model(
                model, namespace=namespace, model_name=model_name,
                artifact_digest=digest, invalidate=False,
            )
        incoming = self.service._serving[1]
        # All shards share one cache; drop each outgoing prediction
        # namespace once (shared feature namespaces stay warm).
        for stale in outgoing - {incoming}:
            self.service.cache.invalidate_namespace(stale)
        self.rollouts += 1
        return self

    # ------------------------------------------------------------------ #
    # Intake
    # ------------------------------------------------------------------ #

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def add_observer(self, observer) -> None:
        """Register a scored-batch observer.

        After each shard micro-batch is scored (and its alerts emitted),
        every observer's ``observe(shard=, events=, results=,
        elapsed_seconds=)`` runs synchronously with the exact events and
        :class:`~repro.serve.service.ScanResult` rows the production
        model produced — the hook :class:`repro.rollout.ShadowRollout`
        uses to score a candidate on identical live traffic. Observers
        may swap the serving model from inside the callback (promotion):
        the shard batch that triggered it is already fully scored and
        delivered, and later shards of the same flush score on the new
        version — exactly the per-worker-atomic semantics of
        :meth:`rollout`. Observers get the same failure isolation as
        sinks: an exception from ``observe`` is swallowed and counted
        (``stats.observer_errors``) — production detection never dies
        for a broken observer.
        """
        self.observers.append(observer)

    def remove_observer(self, observer) -> bool:
        """Detach an observer; returns whether it was registered."""
        try:
            self.observers.remove(observer)
            return True
        except ValueError:
            return False

    def attach(self, bus):
        """Subscribe this scanner to a bus's contract topic."""
        return bus.subscribe(TOPIC_CONTRACTS, handler=self.on_event)

    def mark_seen(self, addresses) -> int:
        """Pre-populate the dedup set (monitor only the future)."""
        before = len(self._seen)
        self._seen.update(addresses)
        return len(self._seen) - before

    @property
    def seen(self) -> set[str]:
        """Addresses consumed or pre-marked (do not mutate)."""
        return self._seen

    def on_event(self, event: ContractEvent) -> bool:
        """Admit one deployment event; returns False when shed/skipped.

        A *shed* event is not marked seen — an at-least-once producer can
        redeliver it and have it scanned; only consumed (queued or
        empty-skipped) addresses dedup.
        """
        self.stats.events_in += 1
        if self.dedup_addresses and event.address in self._seen:
            self.stats.deduped += 1
            return False
        if not event.code:
            if self.dedup_addresses:
                self._seen.add(event.address)
            self.stats.skipped_empty += 1
            return False
        if len(self._queue) >= self.max_queue and self.policy == "block":
            self.flush_batch()
        admit, evicted = shed(
            self._queue, self.max_queue, self.policy, self._rng
        )
        self.stats.dropped += int(not admit) + int(evicted is not None)
        if not admit:
            return False
        if evicted is not None and self.dedup_addresses:
            self._seen.discard(evicted.address)
        if self.dedup_addresses:
            self._seen.add(event.address)
        self._queue.append(event)
        if self.auto_flush and len(self._queue) >= self.max_batch:
            self.flush_batch()
        return True

    @property
    def pending(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #

    def tick(self, now: float | None = None) -> list[StreamAlert]:
        """Deadline check: flush if the oldest queued event is overdue."""
        if not self._queue or self.flush_deadline_seconds is None:
            return []
        now = time.perf_counter() if now is None else now
        if now - self._queue[0].enqueued_at >= self.flush_deadline_seconds:
            return self.flush_batch()
        return []

    def flush_batch(self) -> list[StreamAlert]:
        """Score one micro-batch (up to ``max_batch`` queued events)."""
        if not self._queue:
            return []
        count = min(self.max_batch, len(self._queue))
        batch = [self._queue.popleft() for _ in range(count)]
        return self._score(batch)

    def flush(self) -> list[StreamAlert]:
        """Drain the whole queue, one micro-batch at a time."""
        alerts: list[StreamAlert] = []
        while self._queue:
            alerts.extend(self.flush_batch())
        return alerts

    def _score(self, batch: list[ContractEvent]) -> list[StreamAlert]:
        batch_id = self._batch_id
        self._batch_id += 1
        self.stats.batches += 1

        by_shard: dict[int, list[ContractEvent]] = {}
        for event in batch:
            by_shard.setdefault(shard_of(event.address, self.shards), []).append(event)

        alerts: list[StreamAlert] = []
        for shard, events in sorted(by_shard.items()):
            worker = self.workers[shard]
            shard_started = time.perf_counter()
            results = worker.scan_bytecodes(
                [e.code for e in events], addresses=[e.address for e in events]
            )
            scored_at = time.perf_counter()
            stats = self.shard_stats[shard]
            stats.scanned += len(events)
            stats.batches += 1
            for event, result in zip(events, results):
                latency = max(scored_at - event.enqueued_at, 0.0)
                self.stats.scanned += 1
                self.stats.total_latency_seconds += latency
                self.stats.record_latency(latency)
                if result.probability < self.threshold:
                    continue
                alert = StreamAlert(
                    address=event.address,
                    probability=result.probability,
                    block_number=event.block_number,
                    timestamp=event.timestamp,
                    latency_seconds=latency,
                    shard=shard,
                    batch_id=batch_id,
                    from_cache=result.from_cache,
                )
                alerts.append(alert)
                self.alerts.append(alert)
                self.stats.flagged += 1
                stats.flagged += 1
                for sink in self.sinks:
                    sink.emit(alert)
            # Observers run after delivery so a promotion they trigger
            # can never affect the shard batch that justified it — and,
            # like sinks, they are failure-isolated: a raising observer
            # is counted, the remaining shards still score and alert.
            for observer in list(self.observers):
                try:
                    observer.observe(
                        shard=shard,
                        events=events,
                        results=results,
                        elapsed_seconds=scored_at - shard_started,
                    )
                except Exception:
                    self.stats.observer_errors += 1
        return alerts

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drain pending events and close every sink."""
        self.flush()
        for sink in self.sinks:
            sink.close()

    def summary(self) -> dict:
        """JSON-ready pipeline + shard + sink accounting."""
        return {
            **self.stats.as_dict(),
            "flat_compiled": getattr(self.service, "flat_compiled", 0),
            "rollouts": self.rollouts,
            "artifact_digest": getattr(self.service, "artifact_digest", None),
            "shards": [
                {
                    "shard": s.shard,
                    "scanned": s.scanned,
                    "flagged": s.flagged,
                    "batches": s.batches,
                }
                for s in self.shard_stats
            ],
            "sinks": {sink.name: sink.stats.as_dict() for sink in self.sinks},
        }
