"""Pluggable alert delivery for the streaming scanner.

A flagged deployment is only useful if it reaches someone before the
victim signs. Sinks decouple *scoring* from *delivery*: the scanner emits
each :class:`~repro.stream.scanner.StreamAlert` to every registered sink,
and each sink keeps its own delivery accounting so a slow or failing
channel is visible per channel, not as a mystery in the aggregate.

Provided sinks:

* :class:`MemorySink` — in-process list (tests, dashboards),
* :class:`JsonlSink` — append-only JSON-lines file (audit trail),
* :class:`CallbackSink` — invoke a user callable per alert,
* :class:`WebhookSink` — HTTP POST per alert through the
  :mod:`repro.net` client (bounded timeout, failures counted per
  channel, never fatal); :meth:`WebhookSink.recording` keeps the
  original network-free stub for tests asserting on the wire format.

A sink raising does not break the scan loop: :meth:`AlertSink.emit`
swallows the error, counts it in the sink's ``stats.failed``, and the
scanner keeps going (alert delivery must never take down detection).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = [
    "SinkStats",
    "AlertSink",
    "MemorySink",
    "JsonlSink",
    "CallbackSink",
    "WebhookSink",
]


@dataclass
class SinkStats:
    """Per-sink delivery accounting."""

    delivered: int = 0
    failed: int = 0

    def as_dict(self) -> dict:
        return {"delivered": self.delivered, "failed": self.failed}


class AlertSink:
    """Base class: implement :meth:`_deliver`; stats come for free."""

    name = "sink"

    def __init__(self):
        self.stats = SinkStats()

    def emit(self, alert) -> bool:
        """Deliver one alert; returns success. A failing delivery is
        swallowed and counted (delivery must never take down detection)."""
        try:
            self._deliver(alert)
        except Exception:
            self.stats.failed += 1
            return False
        self.stats.delivered += 1
        return True

    def _deliver(self, alert) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; idempotent. Default: nothing."""


class MemorySink(AlertSink):
    """Collect alerts in a list (``sink.alerts``)."""

    name = "memory"

    def __init__(self):
        super().__init__()
        self.alerts: list = []

    def _deliver(self, alert) -> None:
        self.alerts.append(alert)


class JsonlSink(AlertSink):
    """Append one JSON object per alert to a file.

    The file opens lazily on the first delivery, so an unwritable path
    (missing directory, permission denial) surfaces as counted
    ``stats.failed`` deliveries — visible per channel in the scanner
    summary — instead of an exception at construction time that would
    keep the whole pipeline from starting.
    """

    name = "jsonl"

    def __init__(self, path):
        super().__init__()
        self.path = path
        self._handle = None

    def _deliver(self, alert) -> None:
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(asdict(alert), sort_keys=True) + "\n")

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            self._handle.close()


class CallbackSink(AlertSink):
    """Invoke ``callback(alert)`` per alert."""

    name = "callback"

    def __init__(self, callback):
        super().__init__()
        self._callback = callback

    def _deliver(self, alert) -> None:
        self._callback(alert)


class WebhookSink(AlertSink):
    """POST each alert as JSON to an HTTP endpoint.

    The default transport is a real HTTP POST through
    :func:`repro.net.client.http_request` with a short ``timeout`` — a
    hung webhook receiver must cost a bounded slice of the scan loop,
    and any failure (transport error, non-2xx status) is swallowed by
    :meth:`AlertSink.emit` and counted in ``stats.failed``: alert
    delivery never takes down detection.

    ``transport`` is any callable ``(url, body_text) -> None``;
    :meth:`recording` builds the network-free stub (records
    ``(url, decoded_body)`` in ``sink.sent``) the tests use to assert on
    the wire format.
    """

    name = "webhook"

    def __init__(self, url: str, transport=None, *, timeout: float = 2.0):
        super().__init__()
        self.url = url
        self.timeout = timeout
        self.sent: list[tuple[str, dict]] = []
        self._transport = transport or self._post

    @classmethod
    def recording(cls, url: str = "https://hooks.example/phishing",
                  **kwargs) -> "WebhookSink":
        """The original offline stub: format + record, no network."""
        sink = cls(url, **kwargs)
        sink._transport = sink._record
        return sink

    def _post(self, url: str, body_text: str) -> None:
        from repro.net.client import http_request

        response = http_request(
            "POST", url, body=body_text.encode("utf-8"),
            headers={"Content-Type": "application/json"},
            timeout=self.timeout,
        )
        if not response.ok:
            raise OSError(f"webhook {url}: HTTP {response.status}")

    def _record(self, url: str, body_text: str) -> None:
        self.sent.append((url, json.loads(body_text)))

    def _deliver(self, alert) -> None:
        body = json.dumps(
            {"type": "phishing_alert", **asdict(alert)}, sort_keys=True
        )
        self._transport(self.url, body)
