"""Pluggable alert delivery for the streaming scanner.

A flagged deployment is only useful if it reaches someone before the
victim signs. Sinks decouple *scoring* from *delivery*: the scanner emits
each :class:`~repro.stream.scanner.StreamAlert` to every registered sink,
and each sink keeps its own delivery accounting so a slow or failing
channel is visible per channel, not as a mystery in the aggregate.

Provided sinks:

* :class:`MemorySink` — in-process list (tests, dashboards),
* :class:`JsonlSink` — append-only JSON-lines file (audit trail),
* :class:`CallbackSink` — invoke a user callable per alert,
* :class:`WebhookSink` — HTTP POST per alert through the
  :mod:`repro.net` client (bounded timeout, failures counted per
  channel, never fatal); :meth:`WebhookSink.recording` keeps the
  original network-free stub for tests asserting on the wire format.

A sink raising does not break the scan loop: :meth:`AlertSink.emit`
swallows the error, counts it in the sink's ``stats.failed``, and the
scanner keeps going (alert delivery must never take down detection).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, is_dataclass

from repro import faults

__all__ = [
    "SinkStats",
    "DeadLetterStats",
    "AlertSink",
    "MemorySink",
    "JsonlSink",
    "CallbackSink",
    "WebhookSink",
    "DeadLetterSink",
]


def _alert_dict(alert) -> dict:
    """Alert as a plain dict (dead-letter replay hands sinks dicts)."""
    return dict(alert) if isinstance(alert, dict) else asdict(alert)


@dataclass
class SinkStats:
    """Per-sink delivery accounting."""

    delivered: int = 0
    failed: int = 0

    def as_dict(self) -> dict:
        return {"delivered": self.delivered, "failed": self.failed}


@dataclass
class DeadLetterStats(SinkStats):
    """Dead-letter accounting on top of the plain delivery counters.

    ``delivered`` counts alerts the inner sink accepted (live or on
    replay); ``spooled``/``replayed`` track the dead-letter file;
    ``failed`` counts only alerts lost outright (spool unwritable).
    """

    spooled: int = 0
    replayed: int = 0

    def as_dict(self) -> dict:
        return {**super().as_dict(), "spooled": self.spooled,
                "replayed": self.replayed}


class AlertSink:
    """Base class: implement :meth:`_deliver`; stats come for free."""

    name = "sink"

    def __init__(self):
        self.stats = SinkStats()

    def _attempt(self, alert) -> None:
        """One delivery attempt, raising on failure.

        This is the chaos fault point for alert delivery: an installed
        :class:`~repro.faults.FaultPlan` can ``stall`` (sleep, then
        fail) or ``error`` any sink by name. Wrappers such as
        :class:`DeadLetterSink` call this instead of :meth:`emit` so
        injected faults hit the wrapped delivery too.
        """
        fault = faults.fire("sink.emit", context=self.name)
        if fault is not None and fault.action in ("stall", "error"):
            raise OSError(
                f"injected {fault.action} in sink {self.name!r}"
            )
        self._deliver(alert)

    def emit(self, alert) -> bool:
        """Deliver one alert; returns success. A failing delivery is
        swallowed and counted (delivery must never take down detection)."""
        try:
            self._attempt(alert)
        except Exception:
            self.stats.failed += 1
            return False
        self.stats.delivered += 1
        return True

    def _deliver(self, alert) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; idempotent. Default: nothing."""


class MemorySink(AlertSink):
    """Collect alerts in a list (``sink.alerts``)."""

    name = "memory"

    def __init__(self):
        super().__init__()
        self.alerts: list = []

    def _deliver(self, alert) -> None:
        self.alerts.append(alert)


class JsonlSink(AlertSink):
    """Append one JSON object per alert to a file.

    The file opens lazily on the first delivery, so an unwritable path
    (missing directory, permission denial) surfaces as counted
    ``stats.failed`` deliveries — visible per channel in the scanner
    summary — instead of an exception at construction time that would
    keep the whole pipeline from starting.
    """

    name = "jsonl"

    def __init__(self, path):
        super().__init__()
        self.path = path
        self._handle = None

    def _deliver(self, alert) -> None:
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(
            json.dumps(_alert_dict(alert), sort_keys=True) + "\n"
        )

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            self._handle.close()


class CallbackSink(AlertSink):
    """Invoke ``callback(alert)`` per alert."""

    name = "callback"

    def __init__(self, callback):
        super().__init__()
        self._callback = callback

    def _deliver(self, alert) -> None:
        self._callback(alert)


class WebhookSink(AlertSink):
    """POST each alert as JSON to an HTTP endpoint.

    The default transport is a real HTTP POST through
    :func:`repro.net.client.http_request` with a short ``timeout`` — a
    hung webhook receiver must cost a bounded slice of the scan loop,
    and any failure (transport error, non-2xx status) is swallowed by
    :meth:`AlertSink.emit` and counted in ``stats.failed``: alert
    delivery never takes down detection.

    ``transport`` is any callable ``(url, body_text) -> None``;
    :meth:`recording` builds the network-free stub (records
    ``(url, decoded_body)`` in ``sink.sent``) the tests use to assert on
    the wire format.

    ``retry`` (a :class:`repro.net.retry.RetryPolicy`) re-attempts a
    failed POST with jittered backoff before the delivery counts as
    failed — one flapping webhook receiver should not leak alerts into
    the dead-letter spool.
    """

    name = "webhook"

    def __init__(self, url: str, transport=None, *, timeout: float = 2.0,
                 retry=None):
        super().__init__()
        self.url = url
        self.timeout = timeout
        self.retry = retry
        self.sent: list[tuple[str, dict]] = []
        self._transport = transport or self._post

    @classmethod
    def recording(cls, url: str = "https://hooks.example/phishing",
                  **kwargs) -> "WebhookSink":
        """The original offline stub: format + record, no network."""
        sink = cls(url, **kwargs)
        sink._transport = sink._record
        return sink

    def _post(self, url: str, body_text: str) -> None:
        from repro.net.client import http_request

        response = http_request(
            "POST", url, body=body_text.encode("utf-8"),
            headers={"Content-Type": "application/json"},
            timeout=self.timeout,
        )
        if not response.ok:
            raise OSError(f"webhook {url}: HTTP {response.status}")

    def _record(self, url: str, body_text: str) -> None:
        self.sent.append((url, json.loads(body_text)))

    def _deliver(self, alert) -> None:
        body = json.dumps(
            {"type": "phishing_alert", **_alert_dict(alert)},
            sort_keys=True,
        )
        if self.retry is None:
            self._transport(self.url, body)
        else:
            self.retry.call(
                lambda: self._transport(self.url, body),
                should_retry=lambda exc: isinstance(exc, OSError),
            )


class DeadLetterSink(AlertSink):
    """Wrap a sink with a circuit breaker and a disk-backed spool.

    The alert-loss-zero invariant under a failing delivery channel:
    every alert is either **delivered** by the inner sink or **spooled**
    to an append-only JSONL dead-letter file — never silently dropped.

    * While the breaker is closed, alerts flow to the inner sink; a
      failed delivery is spooled and counted against the breaker.
    * While the breaker is open, delivery is not even attempted — the
      alert goes straight to the spool (the inner channel gets a
      half-open probe once ``reset_seconds`` elapse).
    * On any successful delivery, the spool is **replayed**: spooled
      alerts are re-sent oldest-first and the file is truncated to
      whatever still fails.

    ``emit`` returns ``True`` for spooled alerts — spooling *is* the
    accounted-for outcome; only an unwritable spool counts as
    ``failed``.
    """

    name = "dead_letter"

    def __init__(self, inner: AlertSink, path, *, breaker=None):
        super().__init__()
        from repro.net.retry import CircuitBreaker

        self.inner = inner
        self.path = os.fspath(path)
        self.breaker = breaker or CircuitBreaker(
            failures=3, reset_seconds=5.0
        )
        self.stats = DeadLetterStats()
        self.name = f"dead_letter({inner.name})"

    def emit(self, alert) -> bool:
        if not self.breaker.allow():
            return self._spool(alert)
        try:
            self.inner._attempt(alert)
        except Exception:
            self.breaker.record_failure()
            return self._spool(alert)
        self.breaker.record_success()
        self.stats.delivered += 1
        self.replay()
        return True

    def _spool(self, alert) -> bool:
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(_alert_dict(alert), sort_keys=True) + "\n"
                )
        except OSError:
            self.stats.failed += 1
            return False
        self.stats.spooled += 1
        return True

    def spooled_alerts(self) -> list[dict]:
        """Current spool contents (oldest first)."""
        try:
            with open(self.path, encoding="utf-8") as handle:
                return [json.loads(line) for line in handle
                        if line.strip()]
        except FileNotFoundError:
            return []

    def replay(self) -> int:
        """Re-deliver spooled alerts; returns how many got through.

        Stops at the first alert that still fails (keeping spool order)
        and atomically rewrites the file to the undelivered tail.
        """
        pending = self.spooled_alerts()
        if not pending:
            return 0
        sent = 0
        for payload in pending:
            if not self.breaker.allow():
                break
            try:
                self.inner._attempt(payload)
            except Exception:
                self.breaker.record_failure()
                break
            self.breaker.record_success()
            sent += 1
        if sent:
            remainder = pending[sent:]
            tmp = f"{self.path}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                for payload in remainder:
                    handle.write(
                        json.dumps(payload, sort_keys=True) + "\n"
                    )
            os.replace(tmp, self.path)
            self.stats.replayed += sent
            self.stats.delivered += sent
            self.stats.spooled -= sent
        return sent

    def close(self) -> None:
        self.replay()
        self.inner.close()
