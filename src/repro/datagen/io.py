"""Dataset release I/O.

The paper "releases this novel dataset via our public repository"; this
module provides the corresponding serialization: a dataset (or corpus
snapshot) exports to a JSONL file — one record per line with address,
hex bytecode, label, month and family — and loads back into a
:class:`~repro.datagen.dataset.Dataset`. JSONL keeps diffs reviewable and
streams at any scale.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.datagen.dataset import Dataset

__all__ = ["save_dataset", "load_dataset", "export_corpus"]

_REQUIRED_KEYS = ("address", "bytecode", "label", "month")


def save_dataset(dataset: Dataset, path: str | pathlib.Path) -> pathlib.Path:
    """Write one JSON record per sample; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for index in range(len(dataset)):
            record = {
                "address": dataset.addresses[index],
                "bytecode": "0x" + dataset.bytecodes[index].hex(),
                "label": int(dataset.labels[index]),
                "month": int(dataset.months[index]),
                "family": dataset.families[index],
            }
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_dataset(path: str | pathlib.Path) -> Dataset:
    """Read a JSONL release back into a Dataset.

    Raises:
        ValueError: On missing keys, bad hex, or out-of-range labels.
    """
    path = pathlib.Path(path)
    bytecodes: list[bytes] = []
    labels: list[int] = []
    months: list[int] = []
    families: list[str] = []
    addresses: list[str] = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: bad JSON: {exc}")
            missing = [key for key in _REQUIRED_KEYS if key not in record]
            if missing:
                raise ValueError(
                    f"{path}:{line_number}: missing keys {missing}"
                )
            text = record["bytecode"]
            if text.startswith(("0x", "0X")):
                text = text[2:]
            try:
                code = bytes.fromhex(text)
            except ValueError:
                raise ValueError(f"{path}:{line_number}: bad hex bytecode")
            label = int(record["label"])
            if label not in (0, 1):
                raise ValueError(
                    f"{path}:{line_number}: label must be 0/1, got {label}"
                )
            bytecodes.append(code)
            labels.append(label)
            months.append(int(record["month"]))
            families.append(record.get("family", "unknown"))
            addresses.append(record["address"])
    if not bytecodes:
        raise ValueError(f"{path}: empty dataset file")
    return Dataset(
        bytecodes=bytecodes,
        labels=np.array(labels),
        months=np.array(months),
        families=families,
        addresses=addresses,
    )


def export_corpus(
    corpus, path: str | pathlib.Path, unique_only: bool = True
) -> pathlib.Path:
    """Export a corpus snapshot (optionally deduplicated) as JSONL."""
    records = corpus.unique_records() if unique_only else corpus.records
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for record in records:
            handle.write(
                json.dumps(
                    {
                        "address": record.address,
                        "bytecode": "0x" + record.bytecode.hex(),
                        "label": record.label,
                        "month": record.month,
                        "family": record.family,
                        "kind": record.kind,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
    return path
