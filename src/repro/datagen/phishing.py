"""Phishing contract families.

Six attack patterns modeled on the phishing taxonomies the paper cites
(fake airdrop claims, wallet drainers, sweepers, honeypots). Tell-tale
traits follow §IV-H of the paper: drainers skip gas checks, hardcode the
attacker's hot wallet, emit decoy ``Transfer`` events and concentrate on
``transferFrom`` calls. Two drift mechanisms feed the Fig. 8 time-resistance
experiment: per-month weight drift (attackers slowly adopt benign-looking
guards and heavier obfuscation) and the ``rug_pull_token`` family phasing
in mid-study as a genuinely new pattern.
"""

from repro.datagen.families import PHISHING, FamilySpec, register_family

__all__ = ["PHISHING_FAMILIES"]

APPROVAL_DRAINER = register_family(
    FamilySpec(
        name="approval_drainer",
        label=PHISHING,
        selectors=(
            "claim()",
            "connectWallet()",
            "verifyWallet()",
            "securityUpdate()",
            "transfer(address,uint256)",
        ),
        weights={
            "transfer_from_call": 3.0,
            "external_call": 1.5,
            "calldata_arg": 1.0,
            "emit_transfer": 1.0,   # decoy events
            "mapping_read": 0.5,
            "junk_pushpop": 1.0,
            "require_caller": 0.3,  # few safety checks
            "gas_guard": 0.2,       # the low-GAS tell from §IV-H
            "store_const": 0.5,
            "sweep_balance": 0.6,
        },
        n_functions=(2, 4),
        n_statements=(3, 7),
        payable_probability=0.5,
        fallback_reverts_probability=0.5,
        proxy_probability=0.16,
        drift={"gas_guard": 1.12, "junk_pushpop": 1.06},
        popularity=2.0,
    )
)

FAKE_AIRDROP = register_family(
    FamilySpec(
        name="fake_airdrop",
        label=PHISHING,
        selectors=(
            "claim()",
            "claimRewards()",
            "airdrop(address[],uint256)",
            "getReward()",
        ),
        weights={
            "emit_transfer": 2.5,   # a storm of decoy Transfer events
            "transfer_from_call": 1.5,
            "sweep_balance": 1.0,
            "counter_increment": 1.0,
            "mapping_update": 0.7,
            "junk_pushpop": 1.0,
            "gas_guard": 0.3,
            "calldata_arg": 0.8,
            "store_const": 0.5,
        },
        n_functions=(2, 4),
        n_statements=(3, 8),
        payable_probability=0.4,
        proxy_probability=0.18,
        drift={"emit_transfer": 0.97, "gas_guard": 1.10},
        popularity=1.8,
    )
)

ETHER_SWEEPER = register_family(
    FamilySpec(
        name="ether_sweeper",
        label=PHISHING,
        selectors=("withdraw()", "deposit()", "claim()"),
        weights={
            "sweep_balance": 3.0,
            "selfbalance_probe": 2.0,
            "external_call": 1.0,
            "junk_pushpop": 1.5,
            "store_const": 0.5,
            "gas_guard": 0.2,
            "origin_check": 0.8,
            "junk_dupswap": 1.0,
        },
        n_functions=(1, 3),
        n_statements=(2, 6),
        payable_probability=0.95,
        fallback_reverts_probability=0.1,  # must accept ether
        proxy_probability=0.12,
        drift={"junk_pushpop": 1.08},
        popularity=1.2,
    )
)

HIDDEN_OWNER_HONEYPOT = register_family(
    FamilySpec(
        name="hidden_owner_honeypot",
        label=PHISHING,
        selectors=(
            # Gray family: mimics an ERC-20 token closely.
            "transfer(address,uint256)",
            "approve(address,uint256)",
            "balanceOf(address)",
            "deposit()",
            "totalSupply()",
        ),
        weights={
            "owner_check": 2.0,     # hidden privileged branches
            "mapping_update": 1.5,
            "emit_transfer": 1.5,
            "bit_pack": 1.5,
            "sweep_balance": 0.8,
            "transfer_from_call": 0.8,
            "junk_pushpop": 1.0,
            "timestamp_guard": 0.5,
            "safe_math": 0.5,
            "require_caller": 0.5,
        },
        n_functions=(3, 6),
        n_statements=(4, 8),
        payable_probability=0.5,
        proxy_probability=0.14,
        drift={"owner_check": 1.04},
        popularity=1.0,
    )
)

WALLET_DRAINER_MULTICALL = register_family(
    FamilySpec(
        name="wallet_drainer_multicall",
        label=PHISHING,
        selectors=(
            "multicall(bytes[])",
            "execute(address,uint256,bytes)",
            "claim()",
            "connectWallet()",
        ),
        weights={
            "transfer_from_call": 2.5,
            "delegate_forward": 1.5,
            "calldata_arg": 2.0,
            "external_call": 1.5,
            "junk_pushpop": 1.0,
            "gas_guard": 0.3,
            "origin_check": 1.0,
            "sweep_balance": 0.8,
            "store_const": 0.4,
        },
        n_functions=(2, 4),
        n_statements=(4, 8),
        payable_probability=0.6,
        proxy_probability=0.16,
        drift={"gas_guard": 1.15, "junk_pushpop": 1.05},
        popularity=1.2,
    )
)

RUG_PULL_TOKEN = register_family(
    FamilySpec(
        name="rug_pull_token",
        label=PHISHING,
        selectors=(
            "transfer(address,uint256)",
            "approve(address,uint256)",
            "mint(address,uint256)",
            "swap(uint256,uint256,address)",
        ),
        weights={
            "mapping_update": 2.0,
            "emit_transfer": 1.5,
            "sweep_balance": 1.2,
            "arith_mix": 1.5,
            "bit_pack": 1.0,
            "owner_check": 1.5,
            "junk_dupswap": 0.8,
            "safe_math": 0.8,
            "gas_guard": 0.5,
        },
        n_functions=(3, 6),
        n_statements=(4, 9),
        payable_probability=0.6,
        proxy_probability=0.12,
        phase_in_month=6,  # new attack pattern appearing mid-study
        popularity=1.0,
    )
)

PHISHING_FAMILIES = (
    APPROVAL_DRAINER,
    FAKE_AIRDROP,
    ETHER_SWEEPER,
    HIDDEN_OWNER_HONEYPOT,
    WALLET_DRAINER_MULTICALL,
    RUG_PULL_TOKEN,
)
