"""Contract family framework.

A *family* is a parameterized generator of contracts sharing a purpose
(e.g. "ERC-20 token", "approval drainer"). Families are defined as
:class:`FamilySpec` instances: a label, a pool of function selectors and a
weight distribution over the shared statement library of
:mod:`repro.datagen.solidity_like`. Benign and phishing specs draw from the
same statement library, so their opcode distributions overlap — the
difficulty profile Fig. 3 of the paper documents for real contracts.

Temporal drift (exercised by the Fig. 8 time-resistance experiment) enters
in two ways: statement weights can shift smoothly with the deploy month
(``drift``), and a family can be inactive before a phase-in month
(``phase_in_month``) so that genuinely new attack patterns appear mid-study.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.datagen.solidity_like import (
    SELECTORS,
    STATEMENTS,
    ContractBuilder,
    Environment,
    FunctionSpec,
    metadata_trailer,
)

__all__ = ["FamilySpec", "FAMILIES", "register_family", "generate_contract"]

BENIGN, PHISHING = 0, 1


@dataclass(frozen=True)
class FamilySpec:
    """Generator parameters for one contract family.

    Attributes:
        name: Unique family identifier.
        label: 0 benign, 1 phishing.
        selectors: Function-selector pool (keys of ``SELECTORS`` or ints).
        weights: Statement-name → sampling weight.
        n_functions: Inclusive (low, high) range of external functions.
        n_statements: Inclusive (low, high) statements per function body.
        payable_probability: Chance the contract accepts ether.
        fallback_reverts_probability: Chance the fallback reverts (vs STOP).
        returns_word_probability: Chance a function returns a word.
        dead_code_probability: Chance of an unreachable data section.
        proxy_probability: Chance this contract is cloned via EIP-1167
            minimal proxies when the corpus is built.
        phase_in_month: First study month in which the family occurs.
        drift: Statement-name → per-month multiplicative weight drift
            (1.0 means none; 1.05 grows 5% per month).
        popularity: Relative share of its class this family contributes.
    """

    name: str
    label: int
    selectors: tuple = ()
    weights: dict = field(default_factory=dict)
    n_functions: tuple[int, int] = (2, 5)
    n_statements: tuple[int, int] = (3, 8)
    payable_probability: float = 0.3
    fallback_reverts_probability: float = 0.8
    returns_word_probability: float = 0.5
    dead_code_probability: float = 0.3
    proxy_probability: float = 0.12
    phase_in_month: int = 0
    drift: dict = field(default_factory=dict)
    popularity: float = 1.0

    def __post_init__(self):
        unknown = set(self.weights) - set(STATEMENTS)
        if unknown:
            raise ValueError(f"{self.name}: unknown statements {sorted(unknown)}")
        unknown = set(self.drift) - set(self.weights)
        if unknown:
            raise ValueError(f"{self.name}: drift for unweighted {sorted(unknown)}")

    def weights_at(self, month: int) -> dict:
        """Statement weights after applying ``month`` months of drift."""
        adjusted = dict(self.weights)
        for name, rate in self.drift.items():
            adjusted[name] = adjusted[name] * rate**month
        return adjusted

    def active(self, month: int) -> bool:
        return month >= self.phase_in_month


#: Registry of every family, keyed by name (populated by benign/phishing).
FAMILIES: dict[str, FamilySpec] = {}


def register_family(spec: FamilySpec) -> FamilySpec:
    if spec.name in FAMILIES:
        raise ValueError(f"duplicate family {spec.name!r}")
    FAMILIES[spec.name] = spec
    return spec


def _resolve_selector(item, rng: np.random.Generator) -> int:
    if isinstance(item, int):
        return item
    return SELECTORS[item]


def generate_contract(
    spec: FamilySpec,
    env: Environment,
    month: int = 0,
) -> tuple[bytes, bytes]:
    """Generate one contract of ``spec`` deployed in ``month``.

    Returns:
        ``(bytecode, example_calldata)`` — the runtime bytecode and ABI
        calldata that exercises one of its functions.
    """
    rng = env.rng
    weights = spec.weights_at(month)
    names = sorted(weights)
    probabilities = np.array([weights[n] for n in names], dtype=float)
    if probabilities.sum() <= 0:
        raise ValueError(f"{spec.name}: statement weights sum to zero")
    probabilities /= probabilities.sum()

    low, high = spec.n_functions
    n_functions = int(rng.integers(low, high + 1))
    pool = list(spec.selectors)
    rng.shuffle(pool)
    chosen = pool[:n_functions]
    while len(chosen) < n_functions:  # pad with random selectors
        chosen.append(int(rng.integers(0x01000000, 0xFFFFFFFF)))

    functions = []
    for selector in chosen:
        s_low, s_high = spec.n_statements
        n_statements = int(rng.integers(s_low, s_high + 1))
        body: list = []
        for name in rng.choice(names, size=n_statements, p=probabilities):
            body.extend(STATEMENTS[str(name)](env))
        functions.append(
            FunctionSpec(
                selector=_resolve_selector(selector, rng),
                body=body,
                returns_word=bool(rng.random() < spec.returns_word_probability),
            )
        )

    dead_code = b""
    if rng.random() < spec.dead_code_probability:
        dead_code = bytes(
            rng.integers(0, 256, size=int(rng.integers(8, 64)), dtype=np.uint8)
        )
    builder = ContractBuilder(
        functions=functions,
        payable=bool(rng.random() < spec.payable_probability),
        fallback_reverts=bool(
            rng.random() < spec.fallback_reverts_probability
        ),
        dead_code=dead_code,
        metadata=metadata_trailer(rng),
    )
    return builder.assemble(), builder.example_calldata(rng)
