"""Dataset container and the splits every experiment consumes.

* :meth:`Dataset.from_corpus` — dedup + class balancing, yielding the
  paper's 50/50 phishing/benign dataset,
* :meth:`Dataset.stratified_kfold` — the 10-fold cross-validation splits
  of §IV-D,
* :meth:`Dataset.split_fraction` — the 1/3, 2/3, 1 data splits of the
  scalability study (§IV-F),
* :meth:`Dataset.temporal_split` — train on Oct 2023 – Jan 2024, test on
  nine monthly windows (the §IV-G time-resistance design).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """A labeled set of contract bytecodes.

    Attributes:
        bytecodes: Raw deployed bytecode per sample.
        labels: 0 = benign, 1 = phishing.
        months: Study-month index of each deployment (0 = 2023-10).
        families: Ground-truth generator family (diagnostics only — never a
            model input).
        addresses: Contract addresses.
    """

    bytecodes: list[bytes]
    labels: np.ndarray
    months: np.ndarray
    families: list[str] = field(default_factory=list)
    addresses: list[str] = field(default_factory=list)

    def __post_init__(self):
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.months = np.asarray(self.months, dtype=np.int64)
        n = len(self.bytecodes)
        if not (len(self.labels) == len(self.months) == n):
            raise ValueError("bytecodes/labels/months length mismatch")
        if not self.families:
            self.families = ["unknown"] * n
        if not self.addresses:
            self.addresses = [""] * n
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_corpus(
        cls,
        corpus,
        balance: bool = True,
        seed: int = 0,
    ) -> "Dataset":
        """Dedup a corpus and (optionally) balance the two classes."""
        rng = np.random.default_rng(seed)
        unique = corpus.unique_records()
        phishing = [r for r in unique if r.label == 1]
        benign = [r for r in unique if r.label == 0]
        if balance:
            count = min(len(phishing), len(benign))
            phishing = list(rng.permutation(np.array(phishing, dtype=object)))[:count]
            benign = list(rng.permutation(np.array(benign, dtype=object)))[:count]
        chosen = phishing + benign
        order = rng.permutation(len(chosen))
        chosen = [chosen[i] for i in order]
        return cls(
            bytecodes=[r.bytecode for r in chosen],
            labels=np.array([r.label for r in chosen]),
            months=np.array([r.month for r in chosen]),
            families=[r.family for r in chosen],
            addresses=[r.address for r in chosen],
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.bytecodes)

    def fingerprint(self) -> str:
        """Content hash of (bytecodes, labels) identifying this dataset.

        Stable across processes; used to key fitted-model and prediction
        caches ("same data + same labels → same trained model"). Memoized
        on first call — the caches already treat dataset content as
        immutable.
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            for bytecode, label in zip(self.bytecodes, self.labels):
                digest.update(len(bytecode).to_bytes(4, "big"))
                digest.update(bytecode)
                digest.update(b"\x01" if label else b"\x00")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def class_counts(self) -> tuple[int, int]:
        """(benign, phishing) sample counts."""
        return int(np.sum(self.labels == 0)), int(np.sum(self.labels == 1))

    def subset(self, indices) -> "Dataset":
        indices = np.asarray(indices, dtype=int)
        return Dataset(
            bytecodes=[self.bytecodes[i] for i in indices],
            labels=self.labels[indices],
            months=self.months[indices],
            families=[self.families[i] for i in indices],
            addresses=[self.addresses[i] for i in indices],
        )

    # ------------------------------------------------------------------ #
    # Splits
    # ------------------------------------------------------------------ #

    def stratified_kfold(
        self, n_splits: int, seed: int = 0
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Stratified k-fold: each fold preserves the class balance.

        Returns a list of ``(train_indices, test_indices)`` pairs.
        """
        if n_splits < 2:
            raise ValueError(f"need at least 2 folds, got {n_splits}")
        smallest = min(self.class_counts)
        if smallest < n_splits:
            raise ValueError(
                f"cannot make {n_splits} folds with only {smallest} samples "
                "in the minority class"
            )
        rng = np.random.default_rng(seed)
        fold_of = np.empty(len(self), dtype=int)
        for cls in (0, 1):
            indices = np.flatnonzero(self.labels == cls)
            rng.shuffle(indices)
            fold_of[indices] = np.arange(len(indices)) % n_splits
        folds = []
        for fold in range(n_splits):
            test = np.flatnonzero(fold_of == fold)
            train = np.flatnonzero(fold_of != fold)
            folds.append((train, test))
        return folds

    def train_test_split(
        self, test_fraction: float = 0.2, seed: int = 0
    ) -> tuple["Dataset", "Dataset"]:
        """One stratified train/test split."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        test_indices: list[int] = []
        for cls in (0, 1):
            indices = np.flatnonzero(self.labels == cls)
            rng.shuffle(indices)
            take = max(1, int(round(test_fraction * len(indices))))
            test_indices.extend(indices[:take].tolist())
        test_mask = np.zeros(len(self), dtype=bool)
        test_mask[test_indices] = True
        return self.subset(np.flatnonzero(~test_mask)), self.subset(
            np.flatnonzero(test_mask)
        )

    def split_fraction(self, fraction: float, seed: int = 0) -> "Dataset":
        """Stratified subsample with ``fraction`` of each class (§IV-F)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if fraction == 1.0:
            return self
        rng = np.random.default_rng(seed)
        keep: list[int] = []
        for cls in (0, 1):
            indices = np.flatnonzero(self.labels == cls)
            rng.shuffle(indices)
            take = max(1, int(round(fraction * len(indices))))
            keep.extend(indices[:take].tolist())
        return self.subset(np.sort(np.array(keep)))

    def temporal_split(
        self, train_months: tuple[int, ...] = (0, 1, 2, 3)
    ) -> tuple["Dataset", list[tuple[int, "Dataset"]]]:
        """Train window + one test set per later month (§IV-G).

        Returns ``(train, [(month, test), ...])`` where test months are all
        study months after the training window that contain samples.
        """
        train_set = set(train_months)
        train_indices = np.flatnonzero(np.isin(self.months, list(train_set)))
        if len(train_indices) == 0:
            raise ValueError("no samples in the training window")
        last_train = max(train_set)
        monthly: list[tuple[int, Dataset]] = []
        for month in range(last_train + 1, int(self.months.max()) + 1):
            indices = np.flatnonzero(self.months == month)
            if len(indices):
                monthly.append((month, self.subset(indices)))
        return self.subset(train_indices), monthly
