"""Bytecode-level mutations: minimal proxies and code-shape variation.

The paper's dataset contains "a significant amount of minimal proxy
contracts [EIP-1167], lightweight and cost-efficient clones of a main
contract, with which they share the same bytecode" — the source of the
17,455 → 3,458 duplication it de-duplicates. :func:`minimal_proxy` emits
the canonical EIP-1167 runtime. Clones of the *same* implementation are
bit-identical; proxies of *different* implementations differ only in the
embedded 20-byte address — and therefore have identical opcode sequences,
which is precisely what caps opcode-based classifiers below 100%.
"""

from __future__ import annotations

import numpy as np

__all__ = ["minimal_proxy", "is_minimal_proxy", "proxy_implementation", "random_data_section"]

_PROXY_PREFIX = bytes.fromhex("363d3d373d3d3d363d73")
_PROXY_SUFFIX = bytes.fromhex("5af43d82803e903d91602b57fd5bf3")
_PROXY_LENGTH = len(_PROXY_PREFIX) + 20 + len(_PROXY_SUFFIX)


def _address_bytes(address: int | str) -> bytes:
    if isinstance(address, str):
        text = address[2:] if address.startswith(("0x", "0X")) else address
        raw = bytes.fromhex(text)
    else:
        raw = int(address).to_bytes(20, "big")
    if len(raw) != 20:
        raise ValueError(f"implementation address must be 20 bytes, got {len(raw)}")
    return raw


def minimal_proxy(implementation: int | str) -> bytes:
    """The canonical EIP-1167 runtime delegating to ``implementation``."""
    return _PROXY_PREFIX + _address_bytes(implementation) + _PROXY_SUFFIX


def is_minimal_proxy(bytecode: bytes) -> bool:
    """True when ``bytecode`` is exactly an EIP-1167 minimal proxy."""
    return (
        len(bytecode) == _PROXY_LENGTH
        and bytecode.startswith(_PROXY_PREFIX)
        and bytecode.endswith(_PROXY_SUFFIX)
    )


def proxy_implementation(bytecode: bytes) -> str:
    """Extract the implementation address from an EIP-1167 proxy."""
    if not is_minimal_proxy(bytecode):
        raise ValueError("not an EIP-1167 minimal proxy")
    raw = bytecode[len(_PROXY_PREFIX) : len(_PROXY_PREFIX) + 20]
    return "0x" + raw.hex()


def random_data_section(rng: np.random.Generator, max_size: int = 64) -> bytes:
    """Unreachable data bytes appended after the terminating block."""
    size = int(rng.integers(4, max_size + 1))
    return bytes(rng.integers(0, 256, size=size, dtype=np.uint8))
