"""Solidity-compiler-style building blocks for synthetic contracts.

Real deployed bytecode is dominated by a handful of solc idioms: the free
memory pointer prologue (``PUSH1 0x80 PUSH1 0x40 MSTORE``), a four-byte
selector dispatcher, require/revert guard chains, keccak-derived mapping
slots and a CBOR metadata trailer. Both benign and phishing generators
compose contracts from the *same* statement library defined here — only the
sampling weights differ — so class-conditional opcode distributions overlap
heavily, as Fig. 3 of the paper shows for real contracts.

Every statement is stack-neutral (consumes and produces nothing), so any
sequence of statements forms a valid function body.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.evm.assembler import Assembler, Label, PushLabel

__all__ = [
    "Environment",
    "FunctionSpec",
    "ContractBuilder",
    "STATEMENTS",
    "statement",
    "SELECTORS",
    "TRANSFER_TOPIC",
    "APPROVAL_TOPIC",
]

#: keccak("Transfer(address,address,uint256)") — the canonical ERC-20 topic.
TRANSFER_TOPIC = 0xDDF252AD1BE2C89B69C2B068FC378DAA952BA7F163C4A11628F55A4DF523B3EF

#: keccak("Approval(address,address,uint256)").
APPROVAL_TOPIC = 0x8C5BE1E5EBEC7D5BD14F71427D1E84F3DD0314C0F7B2291E5B200AC8C7C3B925

#: Well-known four-byte selectors (real-world values).
SELECTORS = {
    "transfer(address,uint256)": 0xA9059CBB,
    "transferFrom(address,address,uint256)": 0x23B872DD,
    "approve(address,uint256)": 0x095EA7B3,
    "balanceOf(address)": 0x70A08231,
    "allowance(address,address)": 0xDD62ED3E,
    "totalSupply()": 0x18160DDD,
    "ownerOf(uint256)": 0x6352211E,
    "safeTransferFrom(address,address,uint256)": 0x42842E0E,
    "mint(address,uint256)": 0x40C10F19,
    "claim()": 0x4E71D92D,
    "claimRewards()": 0x372500AB,
    "airdrop(address[],uint256)": 0x67243482,
    "multicall(bytes[])": 0xAC9650D8,
    "withdraw()": 0x3CCFD60B,
    "deposit()": 0xD0E30DB0,
    "stake(uint256)": 0xA694FC3A,
    "unstake(uint256)": 0x2E17DE78,
    "release()": 0x86D1A69F,
    "execute(address,uint256,bytes)": 0xB61D27F6,
    "confirmTransaction(uint256)": 0xC01A8C84,
    "submitTransaction(address,uint256,bytes)": 0xC6427474,
    "swap(uint256,uint256,address)": 0x022C0D9F,
    "getReward()": 0x3D18B912,
    "connectWallet()": 0x6A627842,
    "verifyWallet()": 0xB9E95382,
    "securityUpdate()": 0x5FBA79F5,
}


@dataclass
class Environment:
    """Per-contract generation context shared by statement factories.

    Attributes:
        rng: Source of randomness (drives constants, addresses, slots).
        attacker: Hot-wallet address phishing statements forward funds to.
        tokens: Addresses of token contracts external calls may target.
        deploy_timestamp: Used so time guards pass at deployment time.
    """

    rng: np.random.Generator
    attacker: int = 0
    tokens: tuple[int, ...] = ()
    deploy_timestamp: int = 1_700_000_000

    def address(self) -> int:
        """A fresh pseudo-random 20-byte address."""
        return int(self.rng.integers(1, 1 << 62)) << 96 | int(
            self.rng.integers(1, 1 << 62)
        )

    def token(self) -> int:
        if self.tokens:
            return int(self.tokens[int(self.rng.integers(0, len(self.tokens)))])
        return self.address()


# --------------------------------------------------------------------- #
# Statement library
# --------------------------------------------------------------------- #

STATEMENTS: dict[str, object] = {}


def statement(name: str):
    """Register a statement factory: ``factory(env) -> list`` of asm items."""

    def register(factory):
        STATEMENTS[name] = factory
        return factory

    return register


def _call_args(value_items: list, address: int) -> list:
    """Shared tail for CALL: push args in reverse order, then the call."""
    return (
        [("PUSH1", 0), ("PUSH1", 0), ("PUSH1", 0), ("PUSH1", 0)]
        + value_items
        + [("PUSH20", address), "GAS", "CALL"]
    )


@statement("store_const")
def stmt_store_const(env: Environment) -> list:
    """``slot = constant`` — plain storage write."""
    slot = int(env.rng.integers(0, 12))
    value = int(env.rng.integers(1, 1 << 31))
    return [("PUSH4", value), ("PUSH1", slot), "SSTORE"]


@statement("counter_increment")
def stmt_counter_increment(env: Environment) -> list:
    """``slot += k`` — read-modify-write."""
    slot = int(env.rng.integers(0, 12))
    delta = int(env.rng.integers(1, 255))
    return [
        ("PUSH1", slot), "SLOAD", ("PUSH1", delta), "ADD",
        ("PUSH1", slot), "SSTORE",
    ]


@statement("mapping_update")
def stmt_mapping_update(env: Environment) -> list:
    """``mapping[msg.sender] += k`` via the solc keccak slot scheme."""
    slot = int(env.rng.integers(0, 8))
    delta = int(env.rng.integers(1, 1 << 24))
    return [
        "CALLER", ("PUSH1", 0x00), "MSTORE",
        ("PUSH1", slot), ("PUSH1", 0x20), "MSTORE",
        ("PUSH1", 0x40), ("PUSH1", 0x00), "SHA3",      # key hash
        "DUP1", "SLOAD",                               # [hash, value]
        ("PUSH4", delta), "ADD",                       # [hash, value+k]
        "SWAP1", "SSTORE",                             # store(key=hash)
    ]


@statement("mapping_read")
def stmt_mapping_read(env: Environment) -> list:
    """Read ``mapping[msg.sender]`` and discard (view-style access)."""
    slot = int(env.rng.integers(0, 8))
    return [
        "CALLER", ("PUSH1", 0x00), "MSTORE",
        ("PUSH1", slot), ("PUSH1", 0x20), "MSTORE",
        ("PUSH1", 0x40), ("PUSH1", 0x00), "SHA3",
        "SLOAD", "POP",
    ]


@statement("require_caller")
def stmt_require_caller(env: Environment) -> list:
    """``require(msg.sender != 0)`` — the ubiquitous zero-address check."""
    return ["CALLER", "ISZERO", PushLabel("revert"), "JUMPI"]


@statement("owner_check")
def stmt_owner_check(env: Environment) -> list:
    """``require(msg.sender == owner)`` against a stored owner slot.

    The owner slot is uninitialised (0) in the simulated run, so the guard
    compares against zero and passes for nonzero callers via the EQ/ISZERO
    pair being inverted — i.e. this encodes the *shape* of the check while
    staying executable: it reverts only when caller == stored owner == a
    random constant, which never happens at validation time.
    """
    pseudo_owner = env.address()
    return [
        "CALLER", ("PUSH20", pseudo_owner), "EQ",
        PushLabel("revert"), "JUMPI",
    ]


@statement("gas_guard")
def stmt_gas_guard(env: Environment) -> list:
    """``require(gasleft() > bound)`` — controlled-execution gas check.

    §IV-H singles out low GAS usage as a phishing tell: well-structured
    contracts check available gas before external calls.
    """
    bound = int(env.rng.integers(2_000, 12_000))
    return ["GAS", ("PUSH2", bound), "GT", PushLabel("revert"), "JUMPI"]


@statement("timestamp_guard")
def stmt_timestamp_guard(env: Environment) -> list:
    """``require(block.timestamp >= start)`` vesting/staking style."""
    start = env.deploy_timestamp - int(env.rng.integers(0, 10_000_000))
    return ["TIMESTAMP", ("PUSH4", max(start, 1)), "GT",
            PushLabel("revert"), "JUMPI"]


@statement("callvalue_guard")
def stmt_callvalue_guard(env: Environment) -> list:
    """``require(msg.value == 0)`` — non-payable function check."""
    return ["CALLVALUE", PushLabel("revert"), "JUMPI"]


@statement("emit_transfer")
def stmt_emit_transfer(env: Environment) -> list:
    """Emit an ERC-20 ``Transfer`` event (LOG3)."""
    amount = int(env.rng.integers(1, 1 << 31))
    return [
        ("PUSH4", amount), ("PUSH1", 0x00), "MSTORE",
        ("PUSH20", env.address()),       # topic3: to
        "CALLER",                        # topic2: from
        ("PUSH32", TRANSFER_TOPIC),      # topic1: event signature
        ("PUSH1", 0x20), ("PUSH1", 0x00),
        "LOG3",
    ]


@statement("emit_approval")
def stmt_emit_approval(env: Environment) -> list:
    """Emit an ERC-20 ``Approval`` event (LOG3)."""
    amount = int(env.rng.integers(1, 1 << 31))
    return [
        ("PUSH4", amount), ("PUSH1", 0x00), "MSTORE",
        ("PUSH20", env.address()),
        "CALLER",
        ("PUSH32", APPROVAL_TOPIC),
        ("PUSH1", 0x20), ("PUSH1", 0x00),
        "LOG3",
    ]


@statement("external_call")
def stmt_external_call(env: Environment) -> list:
    """Zero-value call to a token contract; result discarded."""
    return _call_args([("PUSH1", 0)], env.token()) + ["POP"]


@statement("checked_call")
def stmt_checked_call(env: Environment) -> list:
    """Zero-value call whose failure reverts (solc require(success))."""
    return _call_args([("PUSH1", 0)], env.token()) + [
        "ISZERO", PushLabel("revert"), "JUMPI",
    ]


@statement("transfer_from_call")
def stmt_transfer_from_call(env: Environment) -> list:
    """``token.transferFrom(victim, attacker, amount)`` — drainer core.

    Writes the real ``transferFrom`` selector into memory and performs the
    call; the destination defaults to the environment's attacker wallet.
    """
    destination = env.attacker or env.address()
    return [
        ("PUSH4", SELECTORS["transferFrom(address,address,uint256)"]),
        ("PUSH1", 0xE0), "SHL", ("PUSH1", 0x00), "MSTORE",
        "CALLER", ("PUSH1", 0x04), "MSTORE",
        ("PUSH20", destination), ("PUSH1", 0x24), "MSTORE",
        ("PUSH1", 0x00), ("PUSH1", 0x00),        # retLen, retOff
        ("PUSH1", 0x44), ("PUSH1", 0x00),        # argsLen, argsOff
        ("PUSH1", 0x00),                          # value
        ("PUSH20", env.token()), "GAS", "CALL", "POP",
    ]


@statement("sweep_balance")
def stmt_sweep_balance(env: Environment) -> list:
    """Forward the whole contract balance to a hardcoded wallet."""
    destination = env.attacker or env.address()
    return _call_args(["SELFBALANCE"], destination) + ["POP"]


@statement("staticcall_view")
def stmt_staticcall_view(env: Environment) -> list:
    """``token.balanceOf(this)`` style STATICCALL + result load."""
    return [
        ("PUSH4", SELECTORS["balanceOf(address)"]),
        ("PUSH1", 0xE0), "SHL", ("PUSH1", 0x00), "MSTORE",
        "ADDRESS", ("PUSH1", 0x04), "MSTORE",
        ("PUSH1", 0x20), ("PUSH1", 0x00),        # retLen, retOff
        ("PUSH1", 0x24), ("PUSH1", 0x00),        # argsLen, argsOff
        ("PUSH20", env.token()), "GAS", "STATICCALL", "POP",
        "RETURNDATASIZE", "ISZERO", "POP",
        ("PUSH1", 0x00), "MLOAD", "POP",
    ]


@statement("delegate_forward")
def stmt_delegate_forward(env: Environment) -> list:
    """DELEGATECALL into an implementation address (proxy idiom)."""
    return [
        ("PUSH1", 0x00), ("PUSH1", 0x00),        # retLen, retOff
        ("PUSH1", 0x00), ("PUSH1", 0x00),        # argsLen, argsOff
        ("PUSH20", env.address()), "GAS", "DELEGATECALL", "POP",
    ]


@statement("calldata_arg")
def stmt_calldata_arg(env: Environment) -> list:
    """Load an ABI argument word and mask it to an address."""
    offset = 4 + 32 * int(env.rng.integers(0, 2))
    return [
        ("PUSH1", offset), "CALLDATALOAD",
        ("PUSH20", (1 << 160) - 1), "AND", "POP",
    ]


@statement("safe_math")
def stmt_safe_math(env: Environment) -> list:
    """Overflow-checked multiply (pre-0.8 SafeMath shape)."""
    a = int(env.rng.integers(2, 1 << 16))
    b = int(env.rng.integers(2, 1 << 16))
    return [
        ("PUSH2", a), ("PUSH2", b), "MUL",
        "DUP1", ("PUSH2", a), "SWAP1", "DIV",
        ("PUSH2", b), "EQ", "ISZERO",
        PushLabel("revert"), "JUMPI",
        "POP",
    ]


@statement("arith_mix")
def stmt_arith_mix(env: Environment) -> list:
    """Fee/share arithmetic: mul-div-mod chains, result discarded."""
    a = int(env.rng.integers(1, 1 << 30))
    b = int(env.rng.integers(1, 1 << 12))
    c = int(env.rng.integers(1, 10_000))
    return [
        ("PUSH4", a), ("PUSH2", b), "MUL",
        ("PUSH2", c), "SWAP1", "DIV",
        ("PUSH2", max(c // 2, 1)), "SWAP1", "MOD",
        "POP",
    ]


@statement("bit_pack")
def stmt_bit_pack(env: Environment) -> list:
    """Struct packing: shifts and masks over a storage word."""
    slot = int(env.rng.integers(0, 12))
    shift = int(env.rng.integers(1, 128))
    return [
        ("PUSH1", slot), "SLOAD",
        ("PUSH1", shift), "SHR",
        ("PUSH2", 0xFFFF), "AND",
        ("PUSH1", 1), "OR",
        ("PUSH1", shift), "SHL",
        ("PUSH1", slot), "SSTORE",
    ]


@statement("junk_pushpop")
def stmt_junk_pushpop(env: Environment) -> list:
    """Compiler noise: stack shuffles that compute nothing."""
    a = int(env.rng.integers(0, 1 << 16))
    b = int(env.rng.integers(0, 1 << 16))
    return [("PUSH2", a), ("PUSH2", b), "XOR", "ISZERO", "POP"]


@statement("junk_dupswap")
def stmt_junk_dupswap(env: Environment) -> list:
    a = int(env.rng.integers(0, 256))
    return [("PUSH1", a), "DUP1", "SWAP1", "POP", "POP"]


@statement("selfbalance_probe")
def stmt_selfbalance_probe(env: Environment) -> list:
    """Check the contract's own balance (sweeper/staking idiom)."""
    return ["SELFBALANCE", "ISZERO", "POP"]


@statement("origin_check")
def stmt_origin_check(env: Environment) -> list:
    """``require(tx.origin == msg.sender)`` — anti-contract guard."""
    return ["ORIGIN", "CALLER", "EQ", "ISZERO", "ISZERO",
            "POP"]


# --------------------------------------------------------------------- #
# Contract scaffold
# --------------------------------------------------------------------- #


@dataclass
class FunctionSpec:
    """One externally callable function.

    Attributes:
        selector: Four-byte function selector.
        body: Stack-neutral statement items (the scaffold adds entry/exit).
        returns_word: When True the function RETURNs one 32-byte word;
            otherwise it STOPs.
    """

    selector: int
    body: list = field(default_factory=list)
    returns_word: bool = False


class ContractBuilder:
    """Assemble a solc-shaped runtime from function specs.

    Layout: free-memory-pointer prologue, optional non-payable guard,
    selector dispatcher, function bodies, shared revert block, optional
    unreachable dead code, CBOR-style metadata trailer.
    """

    def __init__(
        self,
        functions: list[FunctionSpec],
        payable: bool = True,
        fallback_reverts: bool = True,
        dead_code: bytes = b"",
        metadata: bytes = b"",
    ):
        if not functions:
            raise ValueError("a contract needs at least one function")
        self.functions = functions
        self.payable = payable
        self.fallback_reverts = fallback_reverts
        self.dead_code = dead_code
        self.metadata = metadata

    def program(self) -> list:
        items: list = [("PUSH1", 0x80), ("PUSH1", 0x40), "MSTORE"]
        if not self.payable:
            items += ["CALLVALUE", PushLabel("revert"), "JUMPI"]
        # Dispatcher: calldatasize < 4 → fallback.
        items += [
            ("PUSH1", 0x04), "CALLDATASIZE", "LT",
            PushLabel("fallback"), "JUMPI",
            ("PUSH1", 0x00), "CALLDATALOAD", ("PUSH1", 0xE0), "SHR",
        ]
        for index, function in enumerate(self.functions):
            items += [
                "DUP1", ("PUSH4", function.selector), "EQ",
                PushLabel(f"fn{index}"), "JUMPI",
            ]
        items += ["POP"]
        items += [Label("fallback")]
        if self.fallback_reverts:
            items += [("PUSH1", 0x00), "DUP1", "REVERT"]
        else:
            items += ["STOP"]
        for index, function in enumerate(self.functions):
            items += [Label(f"fn{index}"), "POP"]
            items += list(function.body)
            if function.returns_word:
                items += [
                    ("PUSH1", 0x01), ("PUSH1", 0x00), "MSTORE",
                    ("PUSH1", 0x20), ("PUSH1", 0x00), "RETURN",
                ]
            else:
                items += ["STOP"]
        items += [Label("revert"), ("PUSH1", 0x00), "DUP1", "REVERT"]
        if self.dead_code:
            items += [bytes(self.dead_code)]
        if self.metadata:
            items += [bytes(self.metadata)]
        return items

    def assemble(self) -> bytes:
        asm = Assembler().extend(self.program())
        return asm.assemble()

    def example_calldata(self, rng: np.random.Generator | None = None) -> bytes:
        """ABI calldata hitting one of the contract's functions."""
        index = 0 if rng is None else int(rng.integers(0, len(self.functions)))
        selector = self.functions[index].selector
        args = b"\x00" * 64
        return selector.to_bytes(4, "big") + args


def metadata_trailer(rng: np.random.Generator) -> bytes:
    """A solc-style CBOR metadata trailer (ipfs hash + solc version)."""
    payload = bytes(rng.integers(0, 256, size=int(rng.integers(16, 40)), dtype=np.uint8))
    header = bytes.fromhex("a264697066735822")  # {"ipfs": <34 bytes> ...
    version = bytes([0x64, 0x73, 0x6F, 0x6C, 0x63, 0x43, 0x00,
                     int(rng.integers(4, 9)), int(rng.integers(0, 30))])
    body = header + payload + version
    return body + len(body).to_bytes(2, "big")
