"""Benign contract families.

Eight families spanning the contract types that dominate real Ethereum
deployments. Two of them are deliberately *gray*: the payment splitter
sweeps its own balance outward and the airdrop distributor exposes
``claim()``-style entry points — behaviours phishing families also exhibit —
so the class boundary is genuinely fuzzy, as in the wild.
"""

from repro.datagen.families import BENIGN, FamilySpec, register_family

__all__ = ["BENIGN_FAMILIES"]

ERC20_TOKEN = register_family(
    FamilySpec(
        name="erc20_token",
        label=BENIGN,
        selectors=(
            "transfer(address,uint256)",
            "transferFrom(address,address,uint256)",
            "approve(address,uint256)",
            "balanceOf(address)",
            "allowance(address,address)",
            "totalSupply()",
            "mint(address,uint256)",
        ),
        weights={
            "mapping_update": 3.0,
            "mapping_read": 2.0,
            "require_caller": 2.0,
            "gas_guard": 1.5,
            "safe_math": 2.0,
            "emit_transfer": 2.0,
            "emit_approval": 1.2,
            "counter_increment": 1.0,
            "store_const": 1.0,
            "arith_mix": 1.0,
            "bit_pack": 0.5,
            "staticcall_view": 0.3,
            "checked_call": 0.3,
            "junk_pushpop": 0.8,
            "calldata_arg": 1.0,
        },
        n_functions=(4, 7),
        n_statements=(4, 9),
        payable_probability=0.1,
        fallback_reverts_probability=0.9,
        proxy_probability=0.10,
        popularity=2.5,
    )
)

ERC721_NFT = register_family(
    FamilySpec(
        name="erc721_nft",
        label=BENIGN,
        selectors=(
            "ownerOf(uint256)",
            "safeTransferFrom(address,address,uint256)",
            "approve(address,uint256)",
            "balanceOf(address)",
            "mint(address,uint256)",
            "totalSupply()",
        ),
        weights={
            "mapping_update": 2.5,
            "mapping_read": 2.5,
            "require_caller": 2.0,
            "owner_check": 1.0,
            "emit_transfer": 1.5,
            "emit_approval": 1.0,
            "safe_math": 1.0,
            "counter_increment": 1.5,
            "bit_pack": 1.0,
            "gas_guard": 1.2,
            "junk_dupswap": 0.8,
            "calldata_arg": 1.2,
        },
        n_functions=(4, 6),
        n_statements=(4, 8),
        payable_probability=0.4,
        proxy_probability=0.12,
        popularity=1.5,
    )
)

MULTISIG_WALLET = register_family(
    FamilySpec(
        name="multisig_wallet",
        label=BENIGN,
        selectors=(
            "submitTransaction(address,uint256,bytes)",
            "confirmTransaction(uint256)",
            "execute(address,uint256,bytes)",
            "withdraw()",
            "deposit()",
        ),
        weights={
            "owner_check": 2.0,
            "counter_increment": 2.0,
            "mapping_update": 1.5,
            "checked_call": 2.0,
            "external_call": 1.0,
            "gas_guard": 2.0,
            "calldata_arg": 1.5,
            "bit_pack": 1.0,
            "require_caller": 1.5,
            "selfbalance_probe": 0.8,
            "junk_pushpop": 0.5,
        },
        n_functions=(3, 5),
        n_statements=(4, 9),
        payable_probability=0.8,
        fallback_reverts_probability=0.4,
        proxy_probability=0.15,
        popularity=1.0,
    )
)

VESTING_ESCROW = register_family(
    FamilySpec(
        name="vesting_escrow",
        label=BENIGN,
        selectors=("release()", "withdraw()", "deposit()", "totalSupply()"),
        weights={
            "timestamp_guard": 3.0,
            "counter_increment": 1.5,
            "mapping_read": 1.0,
            "external_call": 1.0,
            "arith_mix": 2.0,
            "gas_guard": 1.5,
            "emit_transfer": 0.5,
            "require_caller": 1.5,
            "store_const": 1.0,
            "safe_math": 1.0,
        },
        n_functions=(2, 4),
        n_statements=(3, 7),
        payable_probability=0.6,
        proxy_probability=0.10,
        popularity=0.8,
    )
)

STAKING_POOL = register_family(
    FamilySpec(
        name="staking_pool",
        label=BENIGN,
        selectors=(
            "stake(uint256)",
            "unstake(uint256)",
            "getReward()",
            "deposit()",
            "withdraw()",
            "balanceOf(address)",
        ),
        weights={
            "mapping_update": 2.5,
            "timestamp_guard": 1.5,
            "arith_mix": 2.0,
            "safe_math": 1.5,
            "emit_transfer": 1.0,
            "external_call": 1.0,
            "staticcall_view": 1.0,
            "gas_guard": 1.5,
            "selfbalance_probe": 1.0,
            "require_caller": 1.2,
            "junk_dupswap": 0.5,
        },
        n_functions=(3, 6),
        n_statements=(4, 9),
        payable_probability=0.7,
        proxy_probability=0.14,
        popularity=1.2,
    )
)

DEX_PAIR = register_family(
    FamilySpec(
        name="dex_pair",
        label=BENIGN,
        selectors=(
            "swap(uint256,uint256,address)",
            "deposit()",
            "withdraw()",
            "totalSupply()",
            "balanceOf(address)",
        ),
        weights={
            "arith_mix": 3.0,
            "safe_math": 2.0,
            "staticcall_view": 1.5,
            "mapping_update": 1.0,
            "gas_guard": 1.5,
            "checked_call": 1.5,
            "bit_pack": 1.0,
            "emit_transfer": 1.0,
            "require_caller": 1.0,
            "calldata_arg": 1.0,
        },
        n_functions=(3, 5),
        n_statements=(5, 10),
        payable_probability=0.5,
        proxy_probability=0.12,
        popularity=1.0,
    )
)

PAYMENT_SPLITTER = register_family(
    FamilySpec(
        name="payment_splitter",
        label=BENIGN,
        selectors=("release()", "withdraw()", "claim()"),
        weights={
            # Gray family: legitimately sweeps its balance outward.
            "sweep_balance": 1.5,
            "selfbalance_probe": 2.0,
            "arith_mix": 1.5,
            "mapping_read": 1.0,
            "counter_increment": 1.0,
            "gas_guard": 1.0,
            "emit_transfer": 0.5,
            "require_caller": 1.0,
            "external_call": 0.8,
        },
        n_functions=(2, 4),
        n_statements=(3, 7),
        payable_probability=0.9,
        fallback_reverts_probability=0.2,
        proxy_probability=0.15,
        popularity=0.6,
    )
)

AIRDROP_DISTRIBUTOR = register_family(
    FamilySpec(
        name="airdrop_distributor",
        label=BENIGN,
        selectors=(
            "claim()",
            "claimRewards()",
            "airdrop(address[],uint256)",
            "getReward()",
        ),
        weights={
            # Gray family: claim()-style entry points like fake airdrops.
            "mapping_update": 2.0,
            "emit_transfer": 2.0,
            "external_call": 1.5,
            "require_caller": 1.5,
            "gas_guard": 1.0,
            "counter_increment": 1.0,
            "timestamp_guard": 1.0,
            "calldata_arg": 1.0,
            "junk_pushpop": 0.5,
        },
        n_functions=(2, 4),
        n_statements=(3, 8),
        payable_probability=0.3,
        proxy_probability=0.12,
        popularity=0.7,
    )
)

BENIGN_FAMILIES = (
    ERC20_TOKEN,
    ERC721_NFT,
    MULTISIG_WALLET,
    VESTING_ESCROW,
    STAKING_POOL,
    DEX_PAIR,
    PAYMENT_SPLITTER,
    AIRDROP_DISTRIBUTOR,
)
