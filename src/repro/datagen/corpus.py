"""Corpus construction: populate a simulated chain with labeled contracts.

Reproduces the paper's data-gathering outcome (§III, Fig. 2): a stream of
phishing deployments following the observed monthly profile, massively
duplicated by minimal-proxy cloning (17,455 obtained → 3,458 unique at
paper scale), enriched with benign contracts. The builder deploys every
contract on a :class:`~repro.chain.blockchain.Blockchain`, flags phishing
addresses on the :class:`~repro.chain.explorer.Explorer`, and optionally
validates that every unique bytecode executes to a clean halt.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chain.blockchain import Blockchain
from repro.chain.explorer import Explorer
from repro.chain.timeline import N_MONTHS, month_to_timestamp
from repro.datagen import benign as _benign  # noqa: F401 - registers families
from repro.datagen import phishing as _phishing  # noqa: F401 - registers families
from repro.datagen.families import BENIGN, FAMILIES, PHISHING, generate_contract
from repro.datagen.mutation import minimal_proxy
from repro.datagen.solidity_like import Environment
from repro.evm.machine import EVM, ExecutionContext, Halt

__all__ = [
    "PHISHING_MONTHLY_PROFILE",
    "CorpusConfig",
    "ContractRecord",
    "Corpus",
    "build_corpus",
]

#: Monthly counts of *obtained* phishing contracts, Oct 2023 – Oct 2024,
#: shaped after Fig. 2 and summing to the paper's 17,455.
PHISHING_MONTHLY_PROFILE = (
    15, 150, 400, 900, 1500, 2200, 2500, 2300, 1900, 1400, 2200, 1500, 490
)

assert sum(PHISHING_MONTHLY_PROFILE) == 17_455
assert len(PHISHING_MONTHLY_PROFILE) == N_MONTHS


@dataclass(frozen=True)
class ContractRecord:
    """One deployed contract with its ground-truth metadata."""

    address: str
    bytecode: bytes
    label: int                     # 0 benign, 1 phishing
    family: str
    month: int
    timestamp: int
    kind: str = "base"             # "base" | "proxy"
    base_address: str | None = None
    example_calldata: bytes = b""


@dataclass
class CorpusConfig:
    """Knobs for corpus construction.

    Attributes:
        n_phishing: Target count of *unique* phishing bytecodes.
        n_benign: Target count of *unique* benign bytecodes.
        clone_factor: Mean minimal-proxy clones per proxied base
            (Poisson); the default reproduces the paper's ≈5× obtained-to-
            unique duplication.
        seed: Master RNG seed.
        benign_temporal_match: Deploy benign contracts following the
            phishing monthly profile (used by the Fig. 8 dataset) instead
            of uniformly.
        validate: Execute every unique bytecode and require a clean halt.
        attacker_pool_size: Number of distinct hot wallets phishing
            campaigns share.
        background_contracts: Extra unlabeled benign deployments that only
            serve to make the BigQuery crawl realistic.
        phishing_profile: Monthly deployment weights for phishing
            contracts. ``None`` uses the Fig. 2 profile; ``"uniform"``
            spreads deployments evenly — useful for the §IV-G second
            dataset at reduced scale, where the Fig. 2 profile would leave
            too few samples in the Oct–Jan training window.
    """

    n_phishing: int = 300
    n_benign: int = 300
    clone_factor: float = 30.0
    seed: int = 7
    benign_temporal_match: bool = False
    validate: bool = True
    attacker_pool_size: int = 24
    token_pool_size: int = 32
    background_contracts: int = 0
    phishing_profile: tuple | str | None = None


@dataclass
class Corpus:
    """The built corpus: chain + explorer + per-contract records."""

    chain: Blockchain
    explorer: Explorer
    records: list[ContractRecord]
    config: CorpusConfig

    def unique_records(self) -> list[ContractRecord]:
        """First record per distinct bytecode — the paper's dedup step."""
        seen: set[bytes] = set()
        unique = []
        for record in self.records:
            if record.bytecode in seen:
                continue
            seen.add(record.bytecode)
            unique.append(record)
        return unique

    def monthly_counts(self, label: int, unique: bool = False) -> np.ndarray:
        """Per-month deployment counts (Fig. 2's two series)."""
        records = self.unique_records() if unique else self.records
        counts = np.zeros(N_MONTHS, dtype=int)
        for record in records:
            if record.label == label:
                counts[record.month] += 1
        return counts

    def phishing_records(self, unique: bool = True) -> list[ContractRecord]:
        source = self.unique_records() if unique else self.records
        return [r for r in source if r.label == PHISHING]

    def benign_records(self, unique: bool = True) -> list[ContractRecord]:
        source = self.unique_records() if unique else self.records
        return [r for r in source if r.label == BENIGN]

    def __len__(self) -> int:
        return len(self.records)


def _month_distribution(profile: tuple | None, rng: np.random.Generator,
                        month_floor: dict[str, int] | None = None) -> np.ndarray:
    if profile is None:
        return np.full(N_MONTHS, 1.0 / N_MONTHS)
    weights = np.asarray(profile, dtype=float)
    return weights / weights.sum()


def _pick_family(rng: np.random.Generator, label: int, month: int):
    candidates = [
        spec for spec in FAMILIES.values()
        if spec.label == label and spec.active(month)
    ]
    weights = np.array([spec.popularity for spec in candidates], dtype=float)
    weights /= weights.sum()
    return candidates[int(rng.choice(len(candidates), p=weights))]


def _validate(record: ContractRecord) -> None:
    context = ExecutionContext(
        timestamp=record.timestamp,
        calldata=record.example_calldata,
    )
    result = EVM(gas_limit=10_000_000).execute(record.bytecode, context)
    if result.halt not in (Halt.STOP, Halt.RETURN, Halt.SELFDESTRUCT):
        raise AssertionError(
            f"{record.family} contract at {record.address} did not halt "
            f"cleanly: {result.halt} ({result.error})"
        )


def build_corpus(config: CorpusConfig | None = None) -> Corpus:
    """Generate, deploy and label the full synthetic corpus."""
    config = config or CorpusConfig()
    rng = np.random.default_rng(config.seed)
    chain = Blockchain()
    explorer = Explorer(chain)
    records: list[ContractRecord] = []

    attacker_pool = [
        int(rng.integers(1, 1 << 62)) << 96 | int(rng.integers(1, 1 << 62))
        for __ in range(config.attacker_pool_size)
    ]
    token_pool = tuple(
        int(rng.integers(1, 1 << 62)) << 96 | int(rng.integers(1, 1 << 62))
        for __ in range(config.token_pool_size)
    )

    if config.phishing_profile == "uniform":
        profile = None
    elif config.phishing_profile is None:
        profile = PHISHING_MONTHLY_PROFILE
    else:
        profile = tuple(config.phishing_profile)
    phishing_months = _month_distribution(profile, rng)
    benign_months = (
        phishing_months
        if config.benign_temporal_match
        else _month_distribution(None, rng)
    )

    def deploy_one(label: int, month_weights: np.ndarray) -> int:
        """Generate one base (plus clones); return unique bytecodes added."""
        month = int(rng.choice(N_MONTHS, p=month_weights))
        spec = _pick_family(rng, label, month)
        timestamp = month_to_timestamp(month, float(rng.random() * 0.999))
        env = Environment(
            rng=rng,
            attacker=attacker_pool[int(rng.integers(0, len(attacker_pool)))],
            tokens=token_pool,
            deploy_timestamp=timestamp,
        )
        bytecode, calldata = generate_contract(spec, env, month)
        address = chain.deploy(bytecode, timestamp=timestamp)
        base = ContractRecord(
            address=address,
            bytecode=bytecode,
            label=label,
            family=spec.name,
            month=month,
            timestamp=timestamp,
            kind="base",
            example_calldata=calldata,
        )
        if label == PHISHING:
            explorer.flag_phishing(address)
        if config.validate:
            _validate(base)
        records.append(base)
        added = 1

        if rng.random() < spec.proxy_probability:
            clone_count = 1 + int(rng.poisson(config.clone_factor))
            proxy_code = minimal_proxy(int(address, 16))
            for __ in range(clone_count):
                clone_timestamp = month_to_timestamp(
                    month, float(rng.random() * 0.999)
                )
                clone_address = chain.deploy(proxy_code, timestamp=clone_timestamp)
                clone = ContractRecord(
                    address=clone_address,
                    bytecode=proxy_code,
                    label=label,
                    family=spec.name,
                    month=month,
                    timestamp=clone_timestamp,
                    kind="proxy",
                    base_address=address,
                )
                if label == PHISHING:
                    explorer.flag_phishing(clone_address)
                records.append(clone)
            if config.validate:
                _validate(records[-1])
            added += 1
        return added

    unique_phishing = 0
    while unique_phishing < config.n_phishing:
        unique_phishing += deploy_one(PHISHING, phishing_months)
    unique_benign = 0
    while unique_benign < config.n_benign:
        unique_benign += deploy_one(BENIGN, benign_months)

    for __ in range(config.background_contracts):
        deploy_one(BENIGN, benign_months)

    records.sort(key=lambda r: (r.timestamp, r.address))
    return Corpus(chain=chain, explorer=explorer, records=records, config=config)
