"""Online production-vs-candidate comparison accounting.

A shadow rollout's evidence is a stream of paired score vectors: for
every shard micro-batch the production model scored, the candidate
scored the identical bytecodes (through the same shared
:class:`~repro.serve.cache.FeatureCache`, so features were extracted
once). :class:`ShadowComparison` folds those pairs into the running
aggregates a :class:`~repro.rollout.policy.RolloutPolicy` decides on:

* **agreement rate** — fraction of events where both models give the
  same verdict at the serving threshold,
* **score divergence** — mean / max ``|p_prod − p_cand|`` (verdicts can
  agree while probabilities drift toward the threshold; divergence is
  the early-warning number),
* **per-class disagreement** — ``production_only`` (production flags,
  candidate passes: a promotion would *lose* those alerts) vs
  ``candidate_only`` (candidate flags, production passes: a promotion
  would *add* them — new coverage or new false positives),
* **latency overhead** — shadow scoring seconds over primary scoring
  seconds, the cost of running the comparison at all.

Everything is a plain counter or sum, so the comparison serializes
(:meth:`as_dict` / :meth:`from_dict`) and survives a CLI process
boundary in the store's rollout record.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ShadowComparison"]


@dataclass
class ShadowComparison:
    """Running aggregates over paired production/candidate scores."""

    events: int = 0
    batches: int = 0
    agreements: int = 0
    production_only: int = 0
    candidate_only: int = 0
    divergence_total: float = 0.0
    max_divergence: float = 0.0
    primary_seconds: float = 0.0
    shadow_seconds: float = 0.0

    def record_batch(
        self,
        production_probs,
        candidate_probs,
        threshold: float,
        *,
        primary_seconds: float = 0.0,
        shadow_seconds: float = 0.0,
    ) -> None:
        """Fold one shard micro-batch of paired scores into the totals."""
        prod = np.asarray(production_probs, dtype=float)
        cand = np.asarray(candidate_probs, dtype=float)
        if prod.shape != cand.shape:
            raise ValueError(
                f"paired score shapes differ: {prod.shape} vs {cand.shape}"
            )
        if prod.size:
            prod_flag = prod >= threshold
            cand_flag = cand >= threshold
            divergence = np.abs(prod - cand)
            self.events += int(prod.size)
            self.agreements += int(np.sum(prod_flag == cand_flag))
            self.production_only += int(np.sum(prod_flag & ~cand_flag))
            self.candidate_only += int(np.sum(~prod_flag & cand_flag))
            self.divergence_total += float(divergence.sum())
            self.max_divergence = max(
                self.max_divergence, float(divergence.max())
            )
        self.batches += 1
        self.primary_seconds += primary_seconds
        self.shadow_seconds += shadow_seconds

    # ------------------------------------------------------------------ #

    @property
    def agreement_rate(self) -> float:
        """Verdict agreement over every compared event (1.0 when idle)."""
        return self.agreements / self.events if self.events else 1.0

    @property
    def disagreements(self) -> int:
        return self.events - self.agreements

    @property
    def mean_divergence(self) -> float:
        return self.divergence_total / self.events if self.events else 0.0

    @property
    def latency_overhead(self) -> float:
        """Shadow scoring time as a fraction of primary scoring time.

        0.35 means the candidate added 35% on top of production scoring
        — the number the ≤ 2× shadow-mode budget is written against.
        """
        if self.primary_seconds <= 0.0:
            return 0.0
        return self.shadow_seconds / self.primary_seconds

    def as_dict(self) -> dict:
        return {
            "events": self.events,
            "batches": self.batches,
            "agreements": self.agreements,
            "agreement_rate": self.agreement_rate,
            "production_only": self.production_only,
            "candidate_only": self.candidate_only,
            "mean_divergence": self.mean_divergence,
            "max_divergence": self.max_divergence,
            "primary_seconds": self.primary_seconds,
            "shadow_seconds": self.shadow_seconds,
            "latency_overhead": self.latency_overhead,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShadowComparison":
        """Rebuild the accumulator from :meth:`as_dict` output (derived
        rates are recomputed, never trusted)."""
        comparison = cls()
        for name in (
            "events", "batches", "agreements",
            "production_only", "candidate_only",
        ):
            setattr(comparison, name, int(data.get(name, 0)))
        comparison.divergence_total = (
            float(data.get("mean_divergence", 0.0)) * comparison.events
        )
        for name in ("max_divergence", "primary_seconds", "shadow_seconds"):
            setattr(comparison, name, float(data.get(name, 0.0)))
        return comparison
