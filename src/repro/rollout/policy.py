"""Rollout policies: turn a live comparison into promote / abort / hold.

The safety rule is written down as code, not tribal knowledge: a policy
looks only at the :class:`~repro.rollout.compare.ShadowComparison` — the
accumulated evidence from identical live traffic — and returns one of
three actions with its reason. Policies are deliberately deterministic
and side-effect free; :class:`~repro.rollout.shadow.ShadowRollout` owns
acting on the decision (retag + swap, or detach).

Provided policies:

* :class:`MetricParityPolicy` — the automated discipline: no verdict
  before ``min_events`` of traffic; *abort* the moment agreement falls
  below the regression floor; *promote* once agreement and mean score
  divergence are inside the parity band; hold otherwise.
* :class:`AdaptivePromotionPolicy` — the learning-loop gate: a
  warm-start candidate exists precisely *because* the stream drifted, so
  symmetric agreement is the wrong yardstick — new flags on drifted
  traffic are the adaptation the retrain was for, while alerts the
  candidate *drops* are regressions. Promote once the evidence floor is
  met and the lost-alert rate stays under the cap; abort otherwise.
* :class:`ManualHoldPolicy` — never decides; an operator promotes or
  aborts explicitly (``phishinghook rollout promote|abort``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rollout.compare import ShadowComparison

__all__ = [
    "HOLD",
    "PROMOTE",
    "ABORT",
    "Decision",
    "RolloutPolicy",
    "MetricParityPolicy",
    "AdaptivePromotionPolicy",
    "ManualHoldPolicy",
]

#: The three possible policy actions.
HOLD = "hold"
PROMOTE = "promote"
ABORT = "abort"


@dataclass(frozen=True)
class Decision:
    """One policy verdict: what to do and why."""

    action: str
    reason: str

    def __bool__(self) -> bool:
        """True when the decision requires acting (not a hold)."""
        return self.action != HOLD


class RolloutPolicy:
    """Base class: implement :meth:`decide` over a comparison."""

    def decide(self, comparison: ShadowComparison) -> Decision:
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-ready parameters (recorded in the rollout state)."""
        return {"policy": type(self).__name__}


class ManualHoldPolicy(RolloutPolicy):
    """Accumulate evidence forever; a human pulls the trigger."""

    def decide(self, comparison: ShadowComparison) -> Decision:
        return Decision(
            HOLD,
            f"manual policy: {comparison.events} events observed, "
            "awaiting operator promote/abort",
        )


class MetricParityPolicy(RolloutPolicy):
    """Promote on metric parity, abort on regression, hold in between.

    Args:
        min_events: Evidence floor — no verdict (either way) before this
            many events have been shadow-scored; small-sample noise must
            not promote *or* abort.
        promote_agreement: Verdict agreement rate at or above which the
            candidate is parity (given divergence also passes).
        abort_agreement: Agreement rate below which the candidate is a
            regression — abort immediately once the evidence floor is
            met.
        max_mean_divergence: Mean ``|p_prod − p_cand|`` allowed for a
            promotion; catches probability drift that has not (yet)
            crossed the verdict threshold.
    """

    def __init__(
        self,
        *,
        min_events: int = 200,
        promote_agreement: float = 0.98,
        abort_agreement: float = 0.90,
        max_mean_divergence: float = 0.05,
    ):
        if min_events < 1:
            raise ValueError("min_events must be positive")
        if not 0.0 <= abort_agreement <= promote_agreement <= 1.0:
            raise ValueError(
                "need 0 <= abort_agreement <= promote_agreement <= 1"
            )
        if max_mean_divergence < 0.0:
            raise ValueError("max_mean_divergence must be non-negative")
        self.min_events = min_events
        self.promote_agreement = promote_agreement
        self.abort_agreement = abort_agreement
        self.max_mean_divergence = max_mean_divergence

    def decide(self, comparison: ShadowComparison) -> Decision:
        if comparison.events < self.min_events:
            return Decision(
                HOLD,
                f"insufficient traffic: {comparison.events}/"
                f"{self.min_events} events",
            )
        agreement = comparison.agreement_rate
        if agreement < self.abort_agreement:
            return Decision(
                ABORT,
                f"regression: agreement {agreement:.4f} < abort floor "
                f"{self.abort_agreement:.4f} "
                f"({comparison.production_only} lost alerts, "
                f"{comparison.candidate_only} new flags over "
                f"{comparison.events} events)",
            )
        divergence = comparison.mean_divergence
        if (agreement >= self.promote_agreement
                and divergence <= self.max_mean_divergence):
            return Decision(
                PROMOTE,
                f"metric parity: agreement {agreement:.4f} >= "
                f"{self.promote_agreement:.4f}, mean divergence "
                f"{divergence:.4f} <= {self.max_mean_divergence:.4f} "
                f"over {comparison.events} events",
            )
        return Decision(
            HOLD,
            f"inside the gray band: agreement {agreement:.4f}, "
            f"mean divergence {divergence:.4f} "
            f"(promote needs >= {self.promote_agreement:.4f} and "
            f"<= {self.max_mean_divergence:.4f})",
        )

    def describe(self) -> dict:
        return {
            "policy": type(self).__name__,
            "min_events": self.min_events,
            "promote_agreement": self.promote_agreement,
            "abort_agreement": self.abort_agreement,
            "max_mean_divergence": self.max_mean_divergence,
        }


class AdaptivePromotionPolicy(RolloutPolicy):
    """Asymmetric gate for warm-start candidates on drifted traffic.

    A parity policy counts every verdict flip against the candidate —
    but a loop candidate was retrained *because* production is missing
    the drifted scams, so the flips where only the candidate flags are
    the point, not a defect. This policy is loss-averse instead of
    symmetric: the candidate must keep (nearly) every alert production
    raises, and is otherwise free to raise new ones.

    Args:
        min_events: Evidence floor — no verdict before this many events
            have been shadow-scored.
        max_lost_rate: Highest tolerated fraction of shadow events where
            *only production* flagged (``production_only / events``) —
            alerts the candidate would silently drop. At or under the
            cap the candidate promotes; over it, it aborts.
    """

    def __init__(self, *, min_events: int = 200,
                 max_lost_rate: float = 0.02):
        if min_events < 1:
            raise ValueError("min_events must be positive")
        if not 0.0 <= max_lost_rate <= 1.0:
            raise ValueError("max_lost_rate must be in [0, 1]")
        self.min_events = min_events
        self.max_lost_rate = max_lost_rate

    def decide(self, comparison: ShadowComparison) -> Decision:
        if comparison.events < self.min_events:
            return Decision(
                HOLD,
                f"insufficient traffic: {comparison.events}/"
                f"{self.min_events} events",
            )
        lost_rate = comparison.production_only / comparison.events
        if lost_rate > self.max_lost_rate:
            return Decision(
                ABORT,
                f"regression: candidate drops {comparison.production_only} "
                f"of production's alerts (lost-alert rate {lost_rate:.4f} "
                f"> {self.max_lost_rate:.4f} over {comparison.events} "
                f"events)",
            )
        return Decision(
            PROMOTE,
            f"adaptation: lost-alert rate {lost_rate:.4f} <= "
            f"{self.max_lost_rate:.4f} with {comparison.candidate_only} "
            f"new flag(s) over {comparison.events} events",
        )

    def describe(self) -> dict:
        return {
            "policy": type(self).__name__,
            "min_events": self.min_events,
            "max_lost_rate": self.max_lost_rate,
        }
