"""Persisted rollout record: the store remembers the rollout in flight.

``phishinghook rollout`` is a sequence of one-shot processes (``start``,
``status``, ``promote``, ``abort``), so the record of *which* candidate
is being validated against *which* production — and the evidence
gathered so far — lives next to the artifacts themselves, under the
``rollout.json`` key of the store's backend. Any box that can resolve
the store (local directory or object bucket) can read the rollout state;
that is the same property that lets sharded serving boxes resolve the
``production`` tag.

The record is exactly :meth:`ShadowRollout.status` output plus an
``updated_at`` stamp; nothing here interprets it.
"""

from __future__ import annotations

import json
import time

__all__ = [
    "ROLLOUT_KEY",
    "save_rollout_state",
    "load_rollout_state",
    "clear_rollout_state",
]

#: Backend key the rollout record lives under (beside ``tags.json``).
ROLLOUT_KEY = "rollout.json"


def save_rollout_state(store, state: dict) -> dict:
    """Write the rollout record into the store; returns it stamped."""
    record = dict(state)
    record["updated_at"] = time.time()
    store.backend.put(
        ROLLOUT_KEY,
        json.dumps(record, indent=2, sort_keys=True).encode("utf-8"),
    )
    return record


def load_rollout_state(store) -> dict | None:
    """The current rollout record, or ``None`` when no rollout exists."""
    try:
        raw = store.backend.get(ROLLOUT_KEY)
    except KeyError:
        return None
    return json.loads(raw.decode("utf-8"))


def clear_rollout_state(store) -> bool:
    """Delete the rollout record; returns whether one existed."""
    return store.backend.delete(ROLLOUT_KEY)
