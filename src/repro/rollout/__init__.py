"""Shadow rollout: validate a candidate on live traffic, promote safely.

PR 4 made model versions portable bytes and tags the serving contract;
this package closes the loop the ROADMAP names — "shadow-score a
``candidate`` tag against ``production`` on live stream traffic and
promote on metric parity". Promotion stops being a human running
``phishinghook models tag production <version>`` on faith and becomes a
measured, reversible, written-down rule:

* :mod:`repro.rollout.shadow` — :class:`ShadowRollout`: per-shard shadow
  scorers over the scanner's live micro-batches, sharing the
  :class:`~repro.serve.cache.FeatureCache` so features are extracted
  once for both models; promotion atomically retags the store and
  hot-swaps every shard with zero dropped batches.
* :mod:`repro.rollout.compare` — :class:`ShadowComparison`: online
  agreement rate, score divergence, per-class disagreement and latency
  overhead.
* :mod:`repro.rollout.policy` — :class:`RolloutPolicy` implementations:
  :class:`MetricParityPolicy` (promote on parity, abort on regression,
  hold in the gray band), :class:`AdaptivePromotionPolicy` (the
  learning-loop gate: loss-averse, tolerant of new flags on drifted
  traffic) and :class:`ManualHoldPolicy` (operator decides).
* :mod:`repro.rollout.state` — the ``rollout.json`` record persisted in
  the store so the CLI workflow spans processes.

Entry points: ``phishinghook rollout start|status|promote|abort``,
``examples/shadow_rollout.py``, and
``benchmarks/bench_shadow_rollout.py`` (shadow overhead ≤ 2×, zero-drop
promotion). The end-to-end walkthrough lives in ``docs/operations.md``.
"""

from repro.rollout.compare import ShadowComparison
from repro.rollout.policy import (
    ABORT,
    HOLD,
    PROMOTE,
    AdaptivePromotionPolicy,
    Decision,
    ManualHoldPolicy,
    MetricParityPolicy,
    RolloutPolicy,
)
from repro.rollout.shadow import ShadowRollout
from repro.rollout.state import (
    ROLLOUT_KEY,
    clear_rollout_state,
    load_rollout_state,
    save_rollout_state,
)

__all__ = [
    "ShadowComparison",
    "HOLD",
    "PROMOTE",
    "ABORT",
    "Decision",
    "RolloutPolicy",
    "MetricParityPolicy",
    "AdaptivePromotionPolicy",
    "ManualHoldPolicy",
    "ShadowRollout",
    "ROLLOUT_KEY",
    "save_rollout_state",
    "load_rollout_state",
    "clear_rollout_state",
]
