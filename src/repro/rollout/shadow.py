"""Shadow deployment: score a candidate on live traffic, promote safely.

``ShadowRollout`` attaches to a running
:class:`~repro.stream.scanner.StreamScanner` as a scored-batch observer.
For every shard micro-batch the production model scores, the matching
shadow scorer — one candidate :class:`~repro.serve.service.ScanService`
view per shard, all sharing the scanner's
:class:`~repro.serve.cache.FeatureCache` — scores the *identical*
bytecodes. Features are therefore extracted once per bytecode no matter
how many models shadow the stream; the candidate pays only its own
``predict_proba`` (plus prediction-cache hits under its own
digest-derived namespace), which is what keeps shadow mode inside the
≤ 2× overhead budget ``benchmarks/bench_shadow_rollout.py`` gates.

The paired scores accumulate in a
:class:`~repro.rollout.compare.ShadowComparison`; after each observed
batch the :class:`~repro.rollout.policy.RolloutPolicy` is consulted
(``auto=True``), and its decision is *acted on*:

* **promote** — the ``production`` tag is atomically repointed at the
  candidate version in the :class:`~repro.artifacts.store.ModelStore`
  (when one is attached) and every shard worker is hot-swapped through
  :meth:`StreamScanner.rollout` using the candidate model this rollout
  already loaded — one artifact read total, zero dropped or mis-scored
  batches (the shard batch that produced the deciding evidence was fully
  scored and delivered before the observer ran).
* **abort** — the shadow scorers detach and the production model keeps
  serving untouched; the comparison and reason are retained for the
  post-mortem.
* **hold** — keep shadowing.

Shadow scoring is failure-isolated like alert sinks: an exception inside
the candidate's scoring path is counted (``shadow_errors``) and skipped,
never allowed to take down production detection.
"""

from __future__ import annotations

import time

from repro.rollout.compare import ShadowComparison
from repro.rollout.policy import (
    ABORT,
    HOLD,
    PROMOTE,
    Decision,
    MetricParityPolicy,
    RolloutPolicy,
)
from repro.serve.service import ScanService

__all__ = ["ShadowRollout"]

#: Lifecycle states of one shadow rollout.
SHADOWING = "shadowing"
PROMOTED = "promoted"
ABORTED = "aborted"


class ShadowRollout:
    """Drive one candidate artifact through shadow scoring to a verdict.

    Args:
        scanner: The live :class:`~repro.stream.scanner.StreamScanner`
            serving production traffic. The rollout registers itself as
            an observer on construction.
        source: Candidate artifact — a file path, or (with ``store``) a
            tag / version / prefix; mutually exclusive with ``model``.
        model: A fitted candidate model passed directly (tests, in-process
            experiments). Promotion then cannot retag a store version.
        store: :class:`~repro.artifacts.store.ModelStore` to resolve
            ``source`` against — and the store whose ``production`` tag a
            promotion repoints.
        policy: A :class:`~repro.rollout.policy.RolloutPolicy`; defaults
            to :class:`MetricParityPolicy` with its standard band.
        auto: Evaluate the policy after every observed batch and act on
            its decision. ``False`` accumulates evidence only; call
            :meth:`evaluate` / :meth:`promote` / :meth:`abort` yourself.
        production_tag: Store tag a promotion repoints (default
            ``production``).
        expected_fingerprint: Refuse candidates trained on a different
            dataset (see :func:`repro.artifacts.load_artifact`).
        comparison: Resume from previously accumulated evidence (a
            :class:`ShadowComparison`, e.g. rebuilt from a persisted
            rollout record via ``ShadowComparison.from_dict``) instead
            of starting at zero — how ``phishinghook rollout start``
            accumulates across process boundaries.
        on_decision: Callback invoked with this rollout right after a
            promote or abort completes (state already final, production
            already swapped/untouched). The continuous-learning loop
            uses it to append the verdict to the promotion history and
            re-arm drift detection; exceptions propagate to the caller
            that triggered the decision.

    Thread-safety: observers run synchronously inside the scanner's
    flush, so a rollout shares whatever threading discipline the scanner
    itself has (one flusher at a time); the shared ``FeatureCache`` is
    internally locked.
    """

    def __init__(
        self,
        scanner,
        source=None,
        *,
        model=None,
        store=None,
        policy: RolloutPolicy | None = None,
        auto: bool = True,
        production_tag: str = "production",
        expected_fingerprint: str | None = None,
        comparison: ShadowComparison | None = None,
        on_decision=None,
    ):
        if (source is None) == (model is None):
            raise ValueError(
                "ShadowRollout needs an artifact source or a model"
            )
        self.scanner = scanner
        self.store = store
        self.policy = policy or MetricParityPolicy()
        self.auto = auto
        self.production_tag = production_tag
        self.comparison = comparison if comparison is not None \
            else ShadowComparison()
        self.on_decision = on_decision
        self.state = SHADOWING
        self.last_decision = Decision(HOLD, "no traffic observed yet")
        self.shadow_errors = 0
        self.production_version = getattr(
            scanner.service, "artifact_digest", None
        )

        if source is not None:
            from repro.serve.service import (
                _artifact_namespace,
                _load_artifact_source,
            )

            model, manifest = _load_artifact_source(
                source, store=store, expected_fingerprint=expected_fingerprint
            )
            self.candidate_version = manifest["digest"]
            self.candidate_name = manifest.get("model_name")
            namespace = _artifact_namespace(manifest)
        else:
            self.candidate_version = None
            self.candidate_name = getattr(model, "name", type(model).__name__)
            namespace = None
        # One candidate service fans out to a view per shard. Sharing the
        # scanner's cache is the whole point: decoded features are
        # extracted once and reused by production and shadow alike, while
        # prediction rows stay separated by namespace.
        self._candidate_service = ScanService(
            self.candidate_name or "candidate",
            model=model,
            cache=scanner.service.cache,
            threshold=scanner.threshold,
            namespace=namespace,
        )
        self._candidate_service.artifact_digest = self.candidate_version
        self._workers = self._candidate_service.sharded(scanner.shards)
        scanner.add_observer(self)

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def observe(self, *, shard, events, results, elapsed_seconds) -> None:
        """Scanner callback: shadow-score one shard micro-batch."""
        if self.state != SHADOWING:
            return
        started = time.perf_counter()
        try:
            shadow = self._workers[shard].scan_bytecodes(
                [e.code for e in events],
                addresses=[e.address for e in events],
            )
        except Exception:
            # Production detection must survive a broken candidate.
            self.shadow_errors += 1
            return
        self.comparison.record_batch(
            [r.probability for r in results],
            [r.probability for r in shadow],
            self.scanner.threshold,
            primary_seconds=elapsed_seconds,
            shadow_seconds=time.perf_counter() - started,
        )
        if self.auto:
            self.evaluate()

    def evaluate(self) -> Decision:
        """Consult the policy; act on promote/abort when still shadowing."""
        if self.state != SHADOWING:
            return self.last_decision
        decision = self.policy.decide(self.comparison)
        self.last_decision = decision
        if decision.action == PROMOTE:
            self.promote(reason=decision.reason)
        elif decision.action == ABORT:
            self.abort(reason=decision.reason)
        return decision

    # ------------------------------------------------------------------ #
    # Actions
    # ------------------------------------------------------------------ #

    def promote(self, reason: str = "operator promotion") -> None:
        """Retag ``production`` at the candidate and swap every shard.

        The store retag happens first (new processes resolving the tag
        already get the candidate), then the live scanner rolls over via
        :meth:`StreamScanner.rollout` with the model this rollout already
        holds — no second artifact read, per-worker atomic swaps, and the
        outgoing prediction namespace invalidated exactly once.
        """
        self._require_shadowing("promote")
        if self.store is not None and self.candidate_version is not None:
            self.store.tag(self.production_tag, self.candidate_version)
        model, namespace = self._candidate_service._serving
        self.scanner.rollout(
            model=model,
            namespace=namespace,
            model_name=self.candidate_name,
            artifact_digest=self.candidate_version,
        )
        self.state = PROMOTED
        self.last_decision = Decision(PROMOTE, reason)
        self.detach()
        if self.on_decision is not None:
            self.on_decision(self)

    def abort(self, reason: str = "operator abort") -> None:
        """Stop shadowing; production serving is untouched."""
        self._require_shadowing("abort")
        self.state = ABORTED
        self.last_decision = Decision(ABORT, reason)
        self.detach()
        if self.on_decision is not None:
            self.on_decision(self)

    def detach(self) -> None:
        """Unregister from the scanner (idempotent)."""
        self.scanner.remove_observer(self)

    def _require_shadowing(self, action: str) -> None:
        if self.state != SHADOWING:
            raise RuntimeError(
                f"cannot {action}: rollout already {self.state}"
            )

    # ------------------------------------------------------------------ #

    def status(self) -> dict:
        """JSON-ready rollout record (state, versions, evidence, policy)."""
        return {
            "state": self.state,
            "production_tag": self.production_tag,
            "production_version": self.production_version,
            "candidate_version": self.candidate_version,
            "candidate_name": self.candidate_name,
            "decision": self.last_decision.action,
            "reason": self.last_decision.reason,
            "shadow_errors": self.shadow_errors,
            "policy": self.policy.describe(),
            "comparison": self.comparison.as_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"ShadowRollout(state={self.state!r}, "
            f"candidate={str(self.candidate_version)[:16]!r}, "
            f"events={self.comparison.events})"
        )
