"""The loop driver: watch → retrain → shadow → promote, automatically.

``LoopOrchestrator`` is a scanner observer (the same seam shadow
rollouts use), so it sees every scored micro-batch production serves.
It runs a small state machine:

* **watching** — production scores feed the
  :class:`~repro.loop.drift.DriftMonitor`; labeled events (the loop's
  ``label_of`` oracle) accumulate in a sliding retrain window. Every
  ``check_every`` events the monitor runs one blockwise test.
* **retraining** — on *confirmed* drift the drift evidence is appended
  to the history log and :func:`~repro.loop.retrain.run_retrain` grows
  the production model on the window — by default in a forked
  subprocess, so the serving process never spends a flush fitting
  trees. Synchronous mode (``wait_for_retrain=True``, the default)
  blocks until the candidate lands — deterministic, what the seeded
  end-to-end test replays; asynchronous mode returns to serving and
  polls the child on subsequent batches.
* **shadowing** — the registered candidate auto-starts a
  :class:`~repro.rollout.shadow.ShadowRollout` against live traffic;
  the rollout policy promotes or aborts, and either verdict lands in
  the history via the rollout's ``on_decision`` hook. A promotion also
  fires ``on_invalidate(outgoing_namespace)`` so a fleet can evict the
  old model's prediction rows host-wide, then the monitor re-baselines
  on the *new* model's scores and the loop returns to watching.

Every decision appends one canonical line to the store's durable
``loop-history.jsonl`` (:mod:`repro.loop.history`); timestamps are event
time from the replayed chain, so the log is bit-reproducible under a
fixed seed. Retrain failures append an ``abort`` entry and leave
production serving exactly what it served before — the loop degrades to
a monitor, never to an outage.
"""

from __future__ import annotations

import json
import time

from repro.loop.drift import DriftMonitor
from repro.loop.history import append_history
from repro.loop.retrain import (
    RETRAIN_MODES,
    RetrainError,
    run_retrain,
    start_retrain,
)

__all__ = [
    "LOOP_KEY",
    "LoopOrchestrator",
    "WATCHING",
    "RETRAINING",
    "SHADOWING",
    "clear_loop_state",
    "load_loop_state",
    "save_loop_state",
]

#: Lifecycle states of the loop.
WATCHING = "watching"
RETRAINING = "retraining"
SHADOWING = "shadowing"

#: Store key holding the persisted loop status (operator surface for
#: ``phishinghook loop status`` across processes; the durable decision
#: record is the history log, not this snapshot).
LOOP_KEY = "loop.json"


def save_loop_state(store, record: dict) -> None:
    """Persist a loop status snapshot (stamps wall-clock ``updated_at``)."""
    record = dict(record)
    record["updated_at"] = time.time()
    store.backend.put(
        LOOP_KEY,
        json.dumps(record, indent=2, sort_keys=True).encode("utf-8"),
    )


def load_loop_state(store) -> dict | None:
    try:
        raw = store.backend.get(LOOP_KEY)
    except KeyError:
        return None
    return json.loads(raw.decode("utf-8"))


def clear_loop_state(store) -> None:
    store.backend.delete(LOOP_KEY)


class LoopOrchestrator:
    """Close the learning loop over one live scanner; see module docs.

    Args:
        scanner: The production :class:`~repro.stream.scanner.StreamScanner`.
        store: The :class:`~repro.artifacts.store.ModelStore` holding the
            production tag, the candidate registrations and the history.
        label_of: Ground-truth oracle ``address -> 0 | 1 | None`` for the
            retrain window (``None`` = unlabeled, skipped). In replay
            deployments this is the corpus's own phishing set; live
            deployments plug in whatever labeling pipeline they trust.
        monitor: A configured :class:`~repro.loop.drift.DriftMonitor`
            (defaults to one built from the standard knobs).
        check_every: Events between drift checks.
        grow: Trees to grow per warm-start retrain.
        holdout: Held-out fraction of the retrain window.
        seed: Seed for the holdout split (fit randomness continues from
            the model's own fitted state).
        policy: Rollout policy for the auto-started shadow (default:
            the shadow's :class:`~repro.rollout.policy.MetricParityPolicy`).
        retrain_mode: ``"subprocess"`` (default) or ``"inline"``.
        wait_for_retrain: Block the triggering flush until the candidate
            lands (deterministic); ``False`` polls while serving.
        retrain_timeout: Subprocess wall-clock budget in seconds.
        store_url: Store location for the retrain subprocess to reopen
            (required in subprocess mode).
        cache_dir: Local artifact cache for the subprocess's store.
        candidate_tag / production_tag: Store tag names.
        on_invalidate: Called with the outgoing prediction namespace
            after a promotion (fleet-wide cache eviction hook).
    """

    def __init__(
        self,
        scanner,
        store,
        *,
        label_of,
        monitor: DriftMonitor | None = None,
        check_every: int = 64,
        grow: int = 40,
        holdout: float = 0.25,
        seed: int = 0,
        policy=None,
        retrain_mode: str = "subprocess",
        wait_for_retrain: bool = True,
        retrain_timeout: float = 600.0,
        store_url: str | None = None,
        cache_dir: str | None = None,
        candidate_tag: str = "candidate",
        production_tag: str = "production",
        on_invalidate=None,
    ):
        if retrain_mode not in RETRAIN_MODES:
            raise ValueError(
                f"unknown retrain mode {retrain_mode!r}; "
                f"supported: {RETRAIN_MODES}"
            )
        if retrain_mode == "subprocess" and not store_url:
            raise ValueError(
                "subprocess retrain needs store_url (the forked child "
                "reopens the store; use retrain_mode='inline' for "
                "in-process stores)"
            )
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.scanner = scanner
        self.store = store
        self.label_of = label_of
        self.monitor = monitor or DriftMonitor()
        self.check_every = check_every
        self.grow = grow
        self.holdout = holdout
        self.seed = seed
        self.policy = policy
        self.retrain_mode = retrain_mode
        self.wait_for_retrain = wait_for_retrain
        self.retrain_timeout = retrain_timeout
        self.store_url = store_url
        self.cache_dir = cache_dir
        self.candidate_tag = candidate_tag
        self.production_tag = production_tag
        self.on_invalidate = on_invalidate

        self.state = WATCHING
        self.clock = 0  # event time: max chain timestamp observed
        self.events_seen = 0
        self.drifts = 0
        self.promotions = 0
        self.aborts = 0
        self.last_report = None
        self.last_retrain: dict | None = None
        self.last_error: str | None = None
        self.rollout = None
        self._window: list[tuple[bytes, int]] = []
        self._last_check = 0
        self._outgoing_namespace: str | None = None
        self._pending = None  # (child, pipe, started) of an async retrain
        scanner.add_observer(self)

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def observe(self, *, shard, events, results, elapsed_seconds) -> None:
        """Scanner callback: advance the loop by one scored micro-batch."""
        for event in events:
            stamp = int(getattr(event, "timestamp", 0) or 0)
            if stamp > self.clock:
                self.clock = stamp
            label = self.label_of(event.address)
            if label is not None:
                self._window.append((bytes(event.code), int(label)))
        window = self.monitor.window
        if len(self._window) > window:
            del self._window[: len(self._window) - window]
        self.events_seen += len(events)

        if self.state == RETRAINING and self._pending is not None:
            self._poll_retrain()
        if self.state != WATCHING:
            return
        self.monitor.observe(result.probability for result in results)
        if self.events_seen - self._last_check >= self.check_every:
            self._last_check = self.events_seen
            report = self.monitor.check()
            if report.checked:
                self.last_report = report
            if report.confirmed:
                self._trigger(report)

    # ------------------------------------------------------------------ #
    # Drift → retrain
    # ------------------------------------------------------------------ #

    def _production_version(self) -> str | None:
        return getattr(self.scanner.service, "artifact_digest", None)

    def _trigger(self, report) -> None:
        self.drifts += 1
        self.state = RETRAINING
        append_history(self.store, {
            "event": "drift",
            "timestamp": self.clock,
            "production": self._production_version(),
            "p_value": report.p_value,
            "effect": report.effect,
            "consecutive": report.consecutive,
            "checks": report.checks,
            "window_events": len(self._window),
        })
        self._run_retrain()

    def _run_retrain(self) -> None:
        codes = [code for code, __ in self._window]
        labels = [label for __, label in self._window]
        kwargs = dict(
            bytecodes=codes,
            labels=labels,
            grow=self.grow,
            holdout=self.holdout,
            seed=self.seed,
            production_tag=self.production_tag,
            candidate_tag=self.candidate_tag,
        )
        if self.retrain_mode == "inline":
            kwargs["store"] = self.store
        else:
            kwargs["store_url"] = self.store_url
            kwargs["cache_dir"] = self.cache_dir
        if self.retrain_mode == "subprocess" and not self.wait_for_retrain:
            # Fleet path: fork and return to serving; observe() polls.
            try:
                child, pipe = start_retrain(**kwargs)
            except Exception as error:  # noqa: BLE001
                self._fail_retrain(f"{type(error).__name__}: {error}")
                return
            self._pending = (child, pipe, time.monotonic())
            return
        try:
            result = run_retrain(
                mode=self.retrain_mode,
                timeout=self.retrain_timeout,
                **kwargs,
            )
        except RetrainError as error:
            self._fail_retrain(str(error))
            return
        self._finish_retrain(result)

    def _poll_retrain(self) -> None:
        """Non-blocking check on an asynchronous retrain child."""
        child, pipe, started = self._pending
        report = None
        if pipe.poll(0):
            try:
                report = pipe.recv()
            except EOFError:
                report = {"ok": False,
                          "error": "retrain subprocess died without "
                                   "reporting"}
        elif not child.is_alive():
            report = {"ok": False,
                      "error": "retrain subprocess died without reporting"}
        elif time.monotonic() - started > self.retrain_timeout:
            child.terminate()
            report = {
                "ok": False,
                "error": f"retrain subprocess timed out after "
                         f"{self.retrain_timeout:.0f}s",
            }
        if report is None:
            return
        pipe.close()
        child.join(timeout=5.0)
        self._pending = None
        if report.get("ok"):
            self._finish_retrain(report["result"])
        else:
            self._fail_retrain(report.get("error", "retrain failed"))

    def _fail_retrain(self, message: str) -> None:
        self.last_error = message
        self.aborts += 1
        append_history(self.store, {
            "event": "abort",
            "stage": "retrain",
            "timestamp": self.clock,
            "production": self._production_version(),
            "error": message,
        })
        # Production is untouched; re-baseline and keep watching.
        self.monitor.reset()
        self._last_check = self.events_seen
        self.state = WATCHING

    def _finish_retrain(self, result: dict) -> None:
        self.last_retrain = result
        append_history(self.store, {
            "event": "retrain",
            "timestamp": self.clock,
            "candidate": result["candidate"],
            "base": result["base"],
            "model_name": result.get("model_name"),
            "metrics": result["metrics"],
            "mode": self.retrain_mode,
        })
        self._start_shadow(result["candidate"])

    # ------------------------------------------------------------------ #
    # Shadow → verdict
    # ------------------------------------------------------------------ #

    def _start_shadow(self, candidate_ref: str) -> None:
        from repro.rollout.shadow import ShadowRollout

        serving = getattr(self.scanner.service, "_serving", None)
        self._outgoing_namespace = serving[1] if serving else None
        self.rollout = ShadowRollout(
            self.scanner,
            candidate_ref,
            store=self.store,
            policy=self.policy,
            production_tag=self.production_tag,
            on_decision=self._on_decision,
        )
        self.state = SHADOWING

    def _on_decision(self, rollout) -> None:
        from repro.rollout.shadow import PROMOTED

        status = rollout.status()
        comparison = status["comparison"]
        promoted = rollout.state == PROMOTED
        append_history(self.store, {
            "event": "promote" if promoted else "abort",
            "stage": "shadow",
            "timestamp": self.clock,
            "reason": status["reason"],
            "candidate": status["candidate_version"],
            "production_before": status["production_version"],
            # Only the deterministic evidence enters the durable log —
            # the comparison's latency fields are wall clock.
            "agreement_rate": comparison["agreement_rate"],
            "mean_divergence": comparison["mean_divergence"],
            "shadow_events": comparison["events"],
        })
        if promoted:
            self.promotions += 1
            if self.on_invalidate is not None and self._outgoing_namespace:
                self.on_invalidate(self._outgoing_namespace)
        else:
            self.aborts += 1
        self._outgoing_namespace = None
        # Re-baseline on whatever is serving now (the candidate after a
        # promotion, the untouched production after an abort) so the
        # loop does not instantly re-fire on the drift it just handled.
        self.monitor.reset()
        self._last_check = self.events_seen
        self.state = WATCHING

    # ------------------------------------------------------------------ #
    # Operator surface
    # ------------------------------------------------------------------ #

    def detach(self) -> None:
        """Stop observing (idempotent); an active shadow detaches too."""
        self.scanner.remove_observer(self)
        if self.rollout is not None:
            self.rollout.detach()
        if self._pending is not None:
            child, pipe, __ = self._pending
            pipe.close()
            if child.is_alive():
                child.terminate()
            child.join(timeout=5.0)
            self._pending = None

    def status(self) -> dict:
        """JSON-ready loop snapshot (state, counters, evidence)."""
        record = {
            "state": self.state,
            "clock": self.clock,
            "events_seen": self.events_seen,
            "window_events": len(self._window),
            "drifts": self.drifts,
            "promotions": self.promotions,
            "aborts": self.aborts,
            "production": self._production_version(),
            "production_tag": self.production_tag,
            "candidate_tag": self.candidate_tag,
            "retrain_mode": self.retrain_mode,
            "retrain_pending": self._pending is not None,
            "monitor": self.monitor.status(),
            "last_check": self.last_report.as_dict()
            if self.last_report is not None else None,
            "last_retrain": self.last_retrain,
            "last_error": self.last_error,
            "rollout": self.rollout.status()
            if self.rollout is not None else None,
        }
        return record
