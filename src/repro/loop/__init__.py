"""Closed-loop continuous learning: drift → retrain → shadow → promote.

The serving stack's missing feedback edge. :mod:`repro.analysis` can
*measure* concept drift, :mod:`repro.artifacts` can *persist* models and
:mod:`repro.rollout` can *promote* them — but nothing connected them, so
a drifting stream silently degraded production. This package closes the
loop:

* :class:`~repro.loop.drift.DriftMonitor` — a sliding two-window drift
  detector over live score distributions, wrapping the paper's
  critical-difference machinery (:mod:`repro.analysis.cdd`): blockwise
  Wilcoxon significance gated by a Cliff's-delta effect floor, confirmed
  over consecutive checks before anything fires.
* :func:`~repro.loop.retrain.retrain_candidate` — the *incremental*
  retrain step: warm-start the production model from its fitted state
  (``fit_more`` grows trees; the Incremental-QBF pattern of keeping
  learned state across related instances) on the sliding event window,
  score a held-out slice, and register the result as ``candidate``.
* :class:`~repro.loop.orchestrator.LoopOrchestrator` — the long-running
  driver: watches the stream as a scanner observer, triggers the retrain
  in a subprocess (serving never stalls), auto-starts a
  :class:`~repro.rollout.shadow.ShadowRollout` on the candidate, and
  lets the rollout policy promote or abort.
* :mod:`~repro.loop.history` — the durable promotion-history log
  (``loop-history.jsonl`` in the store): every decision — drift
  evidence, retrain metrics, shadow comparison, the verdict — appends
  one canonical JSON line. Entries carry *event time* (replayed chain
  timestamps), never wall clock, so a seeded replay reproduces the log
  byte for byte.
"""

from repro.loop.drift import DriftMonitor, DriftReport
from repro.loop.history import HISTORY_KEY, append_history, read_history
from repro.loop.orchestrator import (
    LOOP_KEY,
    LoopOrchestrator,
    clear_loop_state,
    load_loop_state,
    save_loop_state,
)
from repro.loop.retrain import RetrainError, retrain_candidate, run_retrain

__all__ = [
    "DriftMonitor",
    "DriftReport",
    "HISTORY_KEY",
    "LOOP_KEY",
    "LoopOrchestrator",
    "RetrainError",
    "append_history",
    "clear_loop_state",
    "load_loop_state",
    "read_history",
    "retrain_candidate",
    "run_retrain",
    "save_loop_state",
]
