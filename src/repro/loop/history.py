"""Durable promotion-history log: ``loop-history.jsonl`` in the store.

Every loop decision — drift evidence, retrain metrics, the shadow
verdict, aborts — appends exactly one line to one key in the
:class:`~repro.artifacts.backends.StoreBackend`, next to the tag table
it explains. The format is an audit log, so three properties are
non-negotiable:

* **Durability.** The append is a read-modify-write of the whole key
  under the backend's exclusive lock — the same ``fcntl``/mutex lock
  that guards ``tags.json`` — so concurrent appenders (two loops, a
  loop racing an operator CLI) cannot lose each other's entries, and a
  crash between lock and put leaves the previous complete log.
* **Determinism.** Lines are canonical JSON: sorted keys, no
  whitespace, ``allow_nan=False``. Entries carry *event time* from the
  replayed chain, never wall clock — a seeded replay writes a
  byte-identical log, which is exactly what the loop's end-to-end test
  asserts across two runs.
* **Self-numbering.** Each entry's ``seq`` is the number of lines
  already in the log at append time, assigned under the lock — gaps or
  duplicates in ``seq`` would prove a lost or doubled write.
"""

from __future__ import annotations

import json

__all__ = ["HISTORY_KEY", "append_history", "read_history"]

#: Backend key of the promotion-history log (store-root relative).
HISTORY_KEY = "loop-history.jsonl"


def append_history(store, entry: dict) -> dict:
    """Append one decision entry; returns it with ``seq`` assigned.

    ``entry`` must be JSON-serializable and NaN-free (a NaN in an audit
    log is a bug upstream, not something to encode).
    """
    backend = store.backend
    with backend.lock():
        try:
            raw = backend.get(HISTORY_KEY)
        except KeyError:
            raw = b""
        record = dict(entry)
        record["seq"] = raw.count(b"\n")
        line = json.dumps(
            record, sort_keys=True, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
        backend.put(HISTORY_KEY, raw + line + b"\n")
    return record


def read_history(store) -> list[dict]:
    """All entries, oldest first (empty list when no loop ever ran)."""
    try:
        raw = store.backend.get(HISTORY_KEY)
    except KeyError:
        return []
    return [
        json.loads(line)
        for line in raw.decode("utf-8").splitlines()
        if line.strip()
    ]
