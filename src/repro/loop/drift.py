"""Sliding two-window drift detection over live score distributions.

The monitor keeps two windows of production scores: a *reference* window
frozen from the first ``window`` scores it sees (or re-frozen after
:meth:`DriftMonitor.reset`, e.g. post-promotion), and a *live* window
sliding over the most recent ``window`` scores. A check blocks each
window into ``blocks`` equal consecutive chunks and compares the paired
block means through :func:`repro.analysis.cdd.critical_difference` — the
paper's own Friedman + exact-Wilcoxon + Holm machinery, applied to two
treatments — so "drift" means *statistically significant* (adjusted
``p <= alpha``) **and** *practically large* (``|Cliff's delta| >=
min_effect``). A single positive check arms the detector; only
``confirm_checks`` consecutive positives confirm, which is what keeps a
one-off weird micro-batch from triggering a retrain.

Stationarity safety: identical block means produce zero Wilcoxon
differences, which the exact test discards (``p = 1.0``), so a constant
or stationary stream can never confirm drift no matter how long it runs
— the false-positive guard the negative-path tests pin down.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.analysis.cdd import critical_difference

__all__ = ["DriftMonitor", "DriftReport"]


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one :meth:`DriftMonitor.check`."""

    checked: bool          #: both windows were full; a test actually ran
    drifted: bool          #: this check was positive (significant + large)
    confirmed: bool        #: ``consecutive >= confirm_checks``
    p_value: float         #: Holm-adjusted Wilcoxon p (1.0 when unchecked)
    effect: float          #: Cliff's delta, live vs reference (0.0 unchecked)
    consecutive: int       #: positive checks in a row, including this one
    checks: int            #: total checks run since the last reset
    reference_size: int
    live_size: int

    def as_dict(self) -> dict:
        return {
            "checked": self.checked,
            "drifted": self.drifted,
            "confirmed": self.confirmed,
            "p_value": self.p_value,
            "effect": self.effect,
            "consecutive": self.consecutive,
            "checks": self.checks,
            "reference_size": self.reference_size,
            "live_size": self.live_size,
        }


class DriftMonitor:
    """Two-window blockwise drift detector; see module docs.

    Args:
        window: Scores per window. Must be divisible by ``blocks`` so
            the paired block means are equal-sized.
        blocks: Paired blocks per window (the Wilcoxon sample size; the
            exact test is used for ``blocks <= 15``, where 8 all-shifted
            blocks reach ``p ≈ 0.008``).
        alpha: Significance level on the adjusted p-value.
        min_effect: Cliff's-delta magnitude floor — distribution shifts
            smaller than this are noise by definition, whatever their p.
        confirm_checks: Consecutive positive checks required to confirm.
    """

    def __init__(
        self,
        window: int = 256,
        blocks: int = 8,
        alpha: float = 0.05,
        min_effect: float = 0.1,
        confirm_checks: int = 2,
    ):
        if blocks < 2:
            raise ValueError("blocks must be >= 2")
        if window < 2 * blocks:
            raise ValueError("window must be >= 2 * blocks")
        if window % blocks:
            raise ValueError("window must be divisible by blocks")
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if not 0 <= min_effect <= 1:
            raise ValueError("min_effect must be in [0, 1]")
        if confirm_checks < 1:
            raise ValueError("confirm_checks must be >= 1")
        self.window = window
        self.blocks = blocks
        self.alpha = alpha
        self.min_effect = min_effect
        self.confirm_checks = confirm_checks
        self._reference: list[float] = []
        self._live: deque[float] = deque(maxlen=window)
        self.consecutive = 0
        self.checks = 0

    # ------------------------------------------------------------------ #

    def observe(self, scores) -> None:
        """Feed production scores (in stream order).

        The first ``window`` scores freeze the reference; everything
        after slides through the live window.
        """
        for score in scores:
            value = float(score)
            if len(self._reference) < self.window:
                self._reference.append(value)
            else:
                self._live.append(value)

    @property
    def ready(self) -> bool:
        """Both windows full — a check would actually test something."""
        return (
            len(self._reference) >= self.window
            and len(self._live) >= self.window
        )

    def _block_means(self, values) -> list[float]:
        data = np.asarray(list(values), dtype=float)
        return [
            float(chunk.mean()) for chunk in np.split(data, self.blocks)
        ]

    def check(self) -> DriftReport:
        """Run one drift test; never raises on an under-filled monitor."""
        if not self.ready:
            return DriftReport(
                checked=False, drifted=False, confirmed=False,
                p_value=1.0, effect=0.0, consecutive=self.consecutive,
                checks=self.checks, reference_size=len(self._reference),
                live_size=len(self._live),
            )
        self.checks += 1
        reference = self._block_means(self._reference)
        live = self._block_means(self._live)
        diagram = critical_difference(
            {"reference": reference, "live": live}, alpha=self.alpha
        )
        pair = diagram.pairwise[0]
        effect = float(diagram.effect_sizes[("reference", "live")])
        drifted = bool(
            pair.significant(self.alpha) and abs(effect) >= self.min_effect
        )
        self.consecutive = self.consecutive + 1 if drifted else 0
        return DriftReport(
            checked=True,
            drifted=drifted,
            confirmed=self.consecutive >= self.confirm_checks,
            p_value=float(pair.p_adjusted),
            effect=effect,
            consecutive=self.consecutive,
            checks=self.checks,
            reference_size=len(self._reference),
            live_size=len(self._live),
        )

    def reset(self) -> None:
        """Forget everything and re-baseline (post-promotion re-arm).

        The next ``window`` observed scores freeze the new reference —
        scored by the *new* production model, so the loop does not
        immediately re-detect the drift it just corrected.
        """
        self._reference = []
        self._live.clear()
        self.consecutive = 0
        self.checks = 0

    def status(self) -> dict:
        return {
            "window": self.window,
            "blocks": self.blocks,
            "alpha": self.alpha,
            "min_effect": self.min_effect,
            "confirm_checks": self.confirm_checks,
            "reference_size": len(self._reference),
            "live_size": len(self._live),
            "consecutive": self.consecutive,
            "checks": self.checks,
            "ready": self.ready,
        }
