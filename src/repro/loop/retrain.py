"""Incremental retrain: warm-start production into a ``candidate``.

One retrain = load the production model from the store, grow it with
``fit_more`` on the loop's sliding event window (the incremental-solving
pattern: keep fitted state across related instances instead of refitting
from scratch), score a deterministic held-out slice, and register the
result under the candidate tag. The whole step runs equally well inline
(tests, ``memory://`` stores) or in a forked subprocess
(:func:`run_retrain`), which is how the orchestrator keeps serving
latency flat while trees grow — the scanner's process never fits
anything.

Failure contract: *nothing* in this module mutates production. A retrain
that raises (unsupported model family, bad window, dead store) leaves
the production tag, the serving model and the feature cache exactly as
they were; the orchestrator logs the abort and re-arms.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np

__all__ = [
    "RetrainError",
    "retrain_candidate",
    "run_retrain",
    "start_retrain",
]

#: How a retrain runs: forked child (serving never stalls) or inline
#: (deterministic single-process tests, memory:// stores a child could
#: never see).
RETRAIN_MODES = ("subprocess", "inline")


class RetrainError(RuntimeError):
    """The retrain step failed; production is untouched."""


def _holdout_split(n: int, holdout: float, seed: int):
    """Deterministic (train, holdout) index split of ``n`` events."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_holdout = max(1, int(round(n * holdout)))
    if n_holdout >= n:
        raise RetrainError(
            f"holdout={holdout} leaves no training events out of {n}"
        )
    return order[n_holdout:], order[:n_holdout]


def _holdout_metrics(model, bytecodes, labels) -> dict:
    probabilities = model.predict_proba(bytecodes)[:, 1]
    predicted = (probabilities >= 0.5).astype(int)
    labels = np.asarray(labels, dtype=int)
    return {
        "holdout_events": int(len(labels)),
        "holdout_accuracy": float((predicted == labels).mean()),
        "holdout_positive_rate": float(labels.mean()),
    }


def retrain_candidate(
    *,
    store_url: str | None = None,
    store=None,
    bytecodes,
    labels,
    grow: int,
    holdout: float = 0.25,
    seed: int = 0,
    production_tag: str = "production",
    candidate_tag: str = "candidate",
    cache_dir: str | None = None,
) -> dict:
    """Warm-start one candidate from the production artifact.

    Returns a JSON-ready result: candidate/base digests, holdout
    metrics, the grown-tree count and the fit wall seconds (the caller
    decides what of it enters the durable history — wall seconds never
    do).

    Raises:
        RetrainError: On any failure; the store's tags are untouched
            (the candidate tag moves only after a fully successful fit
            and holdout evaluation).
    """
    from repro.artifacts import ModelStore

    if len(bytecodes) != len(labels):
        raise RetrainError("bytecodes and labels must be parallel")
    if len(bytecodes) < 4:
        raise RetrainError(
            f"retrain window has only {len(bytecodes)} labeled events"
        )
    if grow < 1:
        raise RetrainError("grow must be >= 1")

    if store is None:
        store = ModelStore.from_url(store_url or None, cache_dir=cache_dir)
    model, manifest = store.load(production_tag)
    base_digest = manifest["digest"]
    if getattr(model, "fit_more", None) is None:
        raise RetrainError(
            f"production model {manifest.get('model_name')!r} does not "
            "support warm-start fit_more"
        )

    train_idx, hold_idx = _holdout_split(len(bytecodes), holdout, seed)
    codes = list(bytecodes)
    marks = list(labels)
    train_codes = [codes[i] for i in train_idx]
    train_labels = [marks[i] for i in train_idx]
    hold_codes = [codes[i] for i in hold_idx]
    hold_labels = [marks[i] for i in hold_idx]
    if len(set(train_labels)) < 2:
        raise RetrainError("retrain window is single-class; cannot fit")

    started = time.perf_counter()
    try:
        model.fit_more(train_codes, train_labels, int(grow))
    except RetrainError:
        raise
    except Exception as error:
        raise RetrainError(
            f"warm-start fit failed: {type(error).__name__}: {error}"
        ) from error
    seconds = time.perf_counter() - started

    metrics = _holdout_metrics(model, hold_codes, hold_labels)
    metrics["grown_trees"] = int(grow)
    metrics["train_events"] = int(len(train_codes))
    candidate_digest = store.put(
        model,
        model_name=manifest.get("model_name"),
        metrics=metrics,
        extra={
            "warm_started_from": base_digest,
            "grown_trees": int(grow),
            "retrain_seed": int(seed),
        },
        tags=(candidate_tag,),
    )
    return {
        "candidate": candidate_digest,
        "base": base_digest,
        "model_name": manifest.get("model_name"),
        "metrics": metrics,
        "seconds": seconds,
    }


def _retrain_child(connection, kwargs: dict) -> None:
    try:
        result = retrain_candidate(**kwargs)
        connection.send({"ok": True, "result": result})
    except BaseException as error:  # noqa: BLE001 - must report, not die
        connection.send(
            {"ok": False, "error": f"{type(error).__name__}: {error}"}
        )
    finally:
        connection.close()


def run_retrain(
    *,
    mode: str = "subprocess",
    timeout: float = 600.0,
    **kwargs,
) -> dict:
    """Run :func:`retrain_candidate` per ``mode``; see RETRAIN_MODES.

    Subprocess mode prefers ``fork`` (the window's bytecodes ship to the
    child by page sharing, not pickling) and falls back to the
    platform's default context. The parent blocks on the result pipe up
    to ``timeout`` seconds — but the *serving* process only ever blocks
    here when the orchestrator runs in its synchronous test mode; the
    fleet path polls.

    Raises:
        RetrainError: Child error, timeout, or a child that died
            without reporting (OOM kill, SIGKILL).
    """
    if mode not in RETRAIN_MODES:
        raise ValueError(
            f"unknown retrain mode {mode!r}; supported: {RETRAIN_MODES}"
        )
    if mode == "inline":
        return retrain_candidate(**kwargs)
    child, receiver = start_retrain(**kwargs)
    try:
        if not receiver.poll(timeout):
            raise RetrainError(
                f"retrain subprocess timed out after {timeout:.0f}s"
            )
        try:
            report = receiver.recv()
        except EOFError as error:
            raise RetrainError(
                "retrain subprocess died without reporting"
            ) from error
    finally:
        receiver.close()
        child.join(timeout=10.0)
        if child.is_alive():
            child.terminate()
            child.join(timeout=5.0)
    if not report.get("ok"):
        raise RetrainError(report.get("error", "retrain failed"))
    return report["result"]


def start_retrain(**kwargs):
    """Fork a retrain child without waiting; returns ``(process, pipe)``.

    The non-blocking half of subprocess mode: the orchestrator's
    asynchronous path starts the child here and polls the receive end
    of the pipe between scored batches, so a fleet's monitor process
    keeps serving while trees grow. The caller owns both handles —
    poll/recv the pipe, then join the process.
    """
    if kwargs.get("store") is not None:
        # A forked child's store writes land in *its* copy of an
        # in-process backend — invisible to the parent. Subprocess mode
        # must reopen the store by URL (rule D029 rejects the memory://
        # combination statically).
        raise ValueError(
            "subprocess retrain reopens the store by URL; "
            "pass store_url, not a live store object"
        )
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    receiver, sender = context.Pipe(duplex=False)
    child = context.Process(
        target=_retrain_child, args=(sender, kwargs), daemon=True
    )
    child.start()
    sender.close()
    return child, receiver
