"""Hex n-gram sequences — SCSGuard's input pipeline (§IV-B).

"Each hexadecimal string within the bytecode is read as a bigram (sequences
of 6 characters). These bigrams are numerically encoded to create a
vocabulary (i.e., a list of integers), and the sequences are padded to
uniform lengths to enable processing by the model."

Tokens are therefore 6-hex-character windows (3 bytes). The vocabulary is
learned on the training set, capped to the most frequent entries; rare or
unseen tokens map to ``UNK`` and sequences are padded/truncated to
``max_length`` with ``PAD``.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

__all__ = ["HexNgramEncoder"]

PAD_ID = 0
UNK_ID = 1
_RESERVED = 2


class HexNgramEncoder:
    """Fixed-length integer sequences of 6-hex-char tokens.

    Args:
        max_length: Output sequence length (pad/truncate).
        vocab_size: Maximum vocabulary size including PAD/UNK.
        chars_per_token: Hex characters per token (paper: 6).
        stride: Hop between token starts, in hex characters; equal to
            ``chars_per_token`` for non-overlapping windows.
    """

    def __init__(
        self,
        max_length: int = 512,
        vocab_size: int = 4096,
        chars_per_token: int = 6,
        stride: int | None = None,
    ):
        if chars_per_token <= 0 or chars_per_token % 2:
            raise ValueError("chars_per_token must be a positive even number")
        if vocab_size <= _RESERVED:
            raise ValueError("vocab_size must exceed the 2 reserved ids")
        self.max_length = max_length
        self.vocab_size = vocab_size
        self.chars_per_token = chars_per_token
        self.stride = stride or chars_per_token
        self.vocabulary_: dict[str, int] | None = None

    @property
    def is_fitted(self) -> bool:
        return self.vocabulary_ is not None

    def tokens(self, bytecode: bytes) -> list[str]:
        """Split a bytecode's hex string into n-gram tokens."""
        text = bytecode.hex()
        width = self.chars_per_token
        return [
            text[i : i + width]
            for i in range(0, max(len(text) - width + 1, 0), self.stride)
        ]

    def fit(self, bytecodes: list[bytes]) -> "HexNgramEncoder":
        counts: Counter = Counter()
        for bytecode in bytecodes:
            counts.update(self.tokens(bytecode))
        most_common = counts.most_common(self.vocab_size - _RESERVED)
        self.vocabulary_ = {
            token: index + _RESERVED
            for index, (token, __) in enumerate(most_common)
        }
        return self

    def transform(self, bytecodes: list[bytes]) -> np.ndarray:
        """Integer id matrix of shape ``(n_samples, max_length)``."""
        if self.vocabulary_ is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        matrix = np.full((len(bytecodes), self.max_length), PAD_ID, dtype=np.int64)
        for row, bytecode in enumerate(bytecodes):
            ids = [
                self.vocabulary_.get(token, UNK_ID)
                for token in self.tokens(bytecode)[: self.max_length]
            ]
            matrix[row, : len(ids)] = ids
        return matrix

    def fit_transform(self, bytecodes: list[bytes]) -> np.ndarray:
        return self.fit(bytecodes).transform(bytecodes)

    @property
    def effective_vocab_size(self) -> int:
        """Actual number of ids in use (reserved + learned)."""
        if self.vocabulary_ is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        return _RESERVED + len(self.vocabulary_)
