"""Hex n-gram sequences — SCSGuard's input pipeline (§IV-B).

"Each hexadecimal string within the bytecode is read as a bigram (sequences
of 6 characters). These bigrams are numerically encoded to create a
vocabulary (i.e., a list of integers), and the sequences are padded to
uniform lengths to enable processing by the model."

Tokens are therefore 6-hex-character windows (3 bytes). The vocabulary is
learned on the training set, capped to the most frequent entries; rare or
unseen tokens map to ``UNK`` and sequences are padded/truncated to
``max_length`` with ``PAD``.

Internally each token is a base-16 integer code over its nibbles, computed
vectorized from the raw bytes (no hex-string materialization); fitting and
transforming reduce to ``np.unique``/``np.searchsorted`` over those code
arrays. Code arrays can be served from a content-addressed cache (see
:mod:`repro.serve.cache`) via :meth:`HexNgramEncoder.set_cache`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HexNgramEncoder"]

PAD_ID = 0
UNK_ID = 1
_RESERVED = 2

#: Widest token (in hex chars) whose codes fit an int64 (16**15 < 2**63).
_MAX_VECTOR_WIDTH = 15


class HexNgramEncoder:
    """Fixed-length integer sequences of 6-hex-char tokens.

    Args:
        max_length: Output sequence length (pad/truncate).
        vocab_size: Maximum vocabulary size including PAD/UNK.
        chars_per_token: Hex characters per token (paper: 6).
        stride: Hop between token starts, in hex characters; equal to
            ``chars_per_token`` for non-overlapping windows.
    """

    def __init__(
        self,
        max_length: int = 512,
        vocab_size: int = 4096,
        chars_per_token: int = 6,
        stride: int | None = None,
    ):
        if chars_per_token <= 0 or chars_per_token % 2:
            raise ValueError("chars_per_token must be a positive even number")
        if vocab_size <= _RESERVED:
            raise ValueError("vocab_size must exceed the 2 reserved ids")
        self.max_length = max_length
        self.vocab_size = vocab_size
        self.chars_per_token = chars_per_token
        self.stride = stride or chars_per_token
        self.vocabulary_: dict[str, int] | None = None
        self._cache = None

    @property
    def is_fitted(self) -> bool:
        return self.vocabulary_ is not None

    def set_cache(self, cache) -> "HexNgramEncoder":
        """Serve token-code arrays from a :class:`FeatureCache` (or clear)."""
        self._cache = cache
        return self

    # ------------------------------------------------------------------ #
    # Tokenization
    # ------------------------------------------------------------------ #

    def tokens(self, bytecode: bytes) -> list[str]:
        """Split a bytecode's hex string into n-gram tokens."""
        text = bytecode.hex()
        width = self.chars_per_token
        return [
            text[i : i + width]
            for i in range(0, max(len(text) - width + 1, 0), self.stride)
        ]

    def token_codes(self, bytecode: bytes) -> np.ndarray:
        """Vectorized base-16 integer code per token (int64 array).

        ``int(token, 16)`` of every window of :meth:`tokens`, computed from
        the raw bytes without building hex strings.
        """
        if self._cache is not None:
            namespace = f"hexngram:w{self.chars_per_token}:s{self.stride}"
            return self._cache.get(namespace, bytecode, self._compute_codes)
        return self._compute_codes(bytecode)

    def _compute_codes(self, bytecode: bytes) -> np.ndarray:
        width = self.chars_per_token
        if width > _MAX_VECTOR_WIDTH:
            return np.array(
                [int(t, 16) for t in self.tokens(bytecode)], dtype=np.int64
            )
        raw = np.frombuffer(bytecode, dtype=np.uint8)
        nibbles = np.empty(2 * raw.size, dtype=np.int64)
        nibbles[0::2] = raw >> 4
        nibbles[1::2] = raw & 0x0F
        if nibbles.size < width:
            return np.empty(0, dtype=np.int64)
        windows = np.lib.stride_tricks.sliding_window_view(nibbles, width)
        windows = windows[:: self.stride]
        powers = 16 ** np.arange(width - 1, -1, -1, dtype=np.int64)
        return windows @ powers

    def _code_to_token(self, code: int) -> str:
        return format(code, f"0{self.chars_per_token}x")

    # ------------------------------------------------------------------ #
    # Fit / transform
    # ------------------------------------------------------------------ #

    def fit(self, bytecodes: list[bytes]) -> "HexNgramEncoder":
        all_codes = [self.token_codes(code) for code in bytecodes]
        stream = (
            np.concatenate(all_codes) if all_codes
            else np.empty(0, dtype=np.int64)
        )
        if stream.size == 0:
            self.vocabulary_ = {}
            return self
        codes, first_seen, counts = np.unique(
            stream, return_index=True, return_counts=True
        )
        # Count-descending with ties broken by first occurrence in the
        # stream — exactly Counter.most_common over sequentially-updated
        # counts, which the dict-based implementation used.
        order = np.lexsort((first_seen, -counts))
        kept = codes[order][: self.vocab_size - _RESERVED]
        self.vocabulary_ = {
            self._code_to_token(int(code)): index + _RESERVED
            for index, code in enumerate(kept)
        }
        return self

    def _lookup_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """(sorted vocabulary codes, their ids) for searchsorted lookup."""
        items = sorted(
            (int(token, 16), token_id)
            for token, token_id in self.vocabulary_.items()
        )
        codes = np.array([code for code, __ in items], dtype=np.int64)
        ids = np.array([token_id for __, token_id in items], dtype=np.int64)
        return codes, ids

    def transform(self, bytecodes: list[bytes]) -> np.ndarray:
        """Integer id matrix of shape ``(n_samples, max_length)``."""
        if self.vocabulary_ is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        vocab_codes, vocab_ids = self._lookup_tables()
        matrix = np.full(
            (len(bytecodes), self.max_length), PAD_ID, dtype=np.int64
        )
        for row, bytecode in enumerate(bytecodes):
            codes = self.token_codes(bytecode)[: self.max_length]
            if codes.size == 0:
                continue
            position = np.searchsorted(vocab_codes, codes)
            position = np.minimum(position, max(vocab_codes.size - 1, 0))
            if vocab_codes.size:
                known = vocab_codes[position] == codes
                ids = np.where(known, vocab_ids[position], UNK_ID)
            else:
                ids = np.full(codes.size, UNK_ID, dtype=np.int64)
            matrix[row, : ids.size] = ids
        return matrix

    def fit_transform(self, bytecodes: list[bytes]) -> np.ndarray:
        return self.fit(bytecodes).transform(bytecodes)

    @property
    def effective_vocab_size(self) -> int:
        """Actual number of ids in use (reserved + learned)."""
        if self.vocabulary_ is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        return _RESERVED + len(self.vocabulary_)

    # ------------------------------------------------------------------ #
    # Persistence (see repro.artifacts)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Fitted token vocabulary as an artifact-ready state tree."""
        if self.vocabulary_ is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        return {"vocabulary": dict(self.vocabulary_)}

    def load_state(self, state: dict) -> "HexNgramEncoder":
        self.vocabulary_ = {
            str(token): int(token_id)
            for token, token_id in state["vocabulary"].items()
        }
        return self
