"""Opcode histograms — the HSC feature pipeline (§IV-B).

"For each contract bytecode, a histogram of the occurrences of opcodes is
created. It builds a vector of length equal to the number of unique opcodes
inside the training set. The vector is directly served as input (i.e.,
without normalized nor standardized steps)."

The extractor works on the disassembler's compact mnemonic-ID arrays: one
``np.bincount`` per contract replaces the per-opcode dict lookups, and a
pluggable ``decoder`` lets the serve layer substitute a content-addressed
cache (see :mod:`repro.serve.cache`) so each unique bytecode is decoded at
most once per process.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.evm.disassembler import (
    MNEMONIC_COUNT,
    MNEMONIC_IDS,
    MNEMONIC_TABLE,
    decode_mnemonic_ids,
)

__all__ = ["OpcodeHistogramExtractor"]


class OpcodeHistogramExtractor:
    """Count opcode mnemonics against a training-set vocabulary.

    Opcodes never seen during :meth:`fit` are ignored at transform time
    (their column does not exist), mirroring the paper's construction.

    Args:
        decoder: Optional ``bytecode -> uint8 mnemonic-ID array`` callable
            replacing the direct single-pass disassembly — typically
            ``FeatureCache.mnemonic_ids`` for cached decoding.
    """

    def __init__(
        self,
        decoder: Callable[[bytes], np.ndarray] | None = None,
    ):
        self.vocabulary_: dict[str, int] | None = None
        self._decoder = decoder

    def set_decoder(
        self, decoder: Callable[[bytes], np.ndarray] | None
    ) -> "OpcodeHistogramExtractor":
        """Install (or clear) a mnemonic-ID decoder, e.g. a cache's."""
        self._decoder = decoder
        return self

    def _decode(self, bytecode: bytes) -> np.ndarray:
        if self._decoder is not None:
            return self._decoder(bytecode)
        return decode_mnemonic_ids(bytecode)

    @property
    def is_fitted(self) -> bool:
        return self.vocabulary_ is not None

    @property
    def feature_names(self) -> list[str]:
        """Vocabulary mnemonics in column order."""
        self._check_fitted()
        ordered = sorted(self.vocabulary_, key=self.vocabulary_.get)
        return ordered

    def _column_ids(self) -> np.ndarray:
        """Global mnemonic ids in column order (vocabulary gather index)."""
        return np.array(
            [MNEMONIC_IDS[name] for name in self.feature_names], dtype=np.intp
        )

    def _set_vocabulary(self, present_ids: np.ndarray) -> None:
        # Global ids are assigned over the sorted mnemonic table, so
        # ascending-id order *is* the sorted-mnemonic column order the
        # original dict-based construction produced.
        self.vocabulary_ = {
            MNEMONIC_TABLE[gid]: column
            for column, gid in enumerate(present_ids)
        }

    def fit(self, bytecodes: list[bytes]) -> "OpcodeHistogramExtractor":
        """Learn the vocabulary: unique opcodes in the training set."""
        present = np.zeros(MNEMONIC_COUNT, dtype=bool)
        for bytecode in bytecodes:
            present[self._decode(bytecode)] = True
        self._set_vocabulary(np.flatnonzero(present))
        return self

    def transform(self, bytecodes: list[bytes]) -> np.ndarray:
        """Histogram matrix of shape ``(n_samples, vocabulary size)``."""
        self._check_fitted()
        columns = self._column_ids()
        matrix = np.zeros((len(bytecodes), len(columns)), dtype=np.float64)
        for row, bytecode in enumerate(bytecodes):
            counts = np.bincount(
                self._decode(bytecode), minlength=MNEMONIC_COUNT
            )
            matrix[row] = counts[columns]
        return matrix

    def fit_transform(self, bytecodes: list[bytes]) -> np.ndarray:
        """Learn the vocabulary and build the matrix in one decode pass.

        Each bytecode is decoded exactly once (the seed implementation
        disassembled everything twice: once in ``fit``, once in
        ``transform``).
        """
        counts = np.zeros((len(bytecodes), MNEMONIC_COUNT), dtype=np.int64)
        for row, bytecode in enumerate(bytecodes):
            counts[row] = np.bincount(
                self._decode(bytecode), minlength=MNEMONIC_COUNT
            )
        self._set_vocabulary(np.flatnonzero(counts.any(axis=0)))
        return counts[:, self._column_ids()].astype(np.float64)

    def _check_fitted(self) -> None:
        if self.vocabulary_ is None:
            raise RuntimeError("extractor is not fitted; call fit() first")

    # ------------------------------------------------------------------ #
    # Persistence (see repro.artifacts)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Fitted vocabulary as an artifact-ready state tree."""
        self._check_fitted()
        return {"vocabulary": dict(self.vocabulary_)}

    def load_state(self, state: dict) -> "OpcodeHistogramExtractor":
        self.vocabulary_ = {
            str(name): int(column)
            for name, column in state["vocabulary"].items()
        }
        return self
