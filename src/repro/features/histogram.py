"""Opcode histograms — the HSC feature pipeline (§IV-B).

"For each contract bytecode, a histogram of the occurrences of opcodes is
created. It builds a vector of length equal to the number of unique opcodes
inside the training set. The vector is directly served as input (i.e.,
without normalized nor standardized steps)."
"""

from __future__ import annotations

import numpy as np

from repro.evm.disassembler import disassemble_mnemonics

__all__ = ["OpcodeHistogramExtractor"]


class OpcodeHistogramExtractor:
    """Count opcode mnemonics against a training-set vocabulary.

    Opcodes never seen during :meth:`fit` are ignored at transform time
    (their column does not exist), mirroring the paper's construction.
    """

    def __init__(self):
        self.vocabulary_: dict[str, int] | None = None

    @property
    def is_fitted(self) -> bool:
        return self.vocabulary_ is not None

    @property
    def feature_names(self) -> list[str]:
        """Vocabulary mnemonics in column order."""
        self._check_fitted()
        ordered = sorted(self.vocabulary_, key=self.vocabulary_.get)
        return ordered

    def fit(self, bytecodes: list[bytes]) -> "OpcodeHistogramExtractor":
        """Learn the vocabulary: unique opcodes in the training set."""
        seen: set[str] = set()
        for bytecode in bytecodes:
            seen.update(disassemble_mnemonics(bytecode))
        self.vocabulary_ = {name: i for i, name in enumerate(sorted(seen))}
        return self

    def transform(self, bytecodes: list[bytes]) -> np.ndarray:
        """Histogram matrix of shape ``(n_samples, vocabulary size)``."""
        self._check_fitted()
        matrix = np.zeros((len(bytecodes), len(self.vocabulary_)), dtype=np.float64)
        for row, bytecode in enumerate(bytecodes):
            for mnemonic in disassemble_mnemonics(bytecode):
                column = self.vocabulary_.get(mnemonic)
                if column is not None:
                    matrix[row, column] += 1.0
        return matrix

    def fit_transform(self, bytecodes: list[bytes]) -> np.ndarray:
        return self.fit(bytecodes).transform(bytecodes)

    def _check_fitted(self) -> None:
        if self.vocabulary_ is None:
            raise RuntimeError("extractor is not fitted; call fit() first")
