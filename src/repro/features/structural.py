"""Structural (control-flow) features — an extension beyond the paper.

The paper's HSCs see only opcode *counts*; this extractor adds what the
counts cannot express: the contract's control-flow shape, recovered by
:mod:`repro.evm.cfg`. Features per contract:

* basic-block count and mean block length,
* proved edge count and cyclomatic complexity,
* dispatcher fan-out (≈ number of external functions),
* loop count,
* dead-code share (unreachable blocks — data sections, metadata),
* indirect-jump share (statically unresolvable control flow),
* terminator mix: fractions of blocks ending in RETURN / REVERT / STOP.

Used by the ``bench_ext_structural`` extension experiment, which measures
whether CFG structure adds signal on top of opcode histograms.
"""

from __future__ import annotations

import numpy as np

from repro.evm.cfg import build_cfg

__all__ = ["StructuralFeatureExtractor", "STRUCTURAL_FEATURE_NAMES"]

STRUCTURAL_FEATURE_NAMES = (
    "block_count",
    "mean_block_length",
    "edge_count",
    "cyclomatic_complexity",
    "dispatcher_fanout",
    "loop_count",
    "dead_block_share",
    "indirect_jump_share",
    "return_block_share",
    "revert_block_share",
    "stop_block_share",
)


class StructuralFeatureExtractor:
    """Fixed-width CFG feature vectors (stateless: nothing to fit)."""

    @property
    def feature_names(self) -> list[str]:
        return list(STRUCTURAL_FEATURE_NAMES)

    def transform_one(self, bytecode: bytes) -> np.ndarray:
        cfg = build_cfg(bytecode)
        blocks = list(cfg.blocks.values())
        n_blocks = len(blocks)
        if n_blocks == 0:
            return np.zeros(len(STRUCTURAL_FEATURE_NAMES))
        lengths = [len(block) for block in blocks]
        terminators = [block.terminator for block in blocks]
        dead = len(cfg.dead_blocks())
        indirect = sum(block.has_indirect_jump for block in blocks)

        def terminator_share(name: str) -> float:
            return sum(t == name for t in terminators) / n_blocks

        return np.array(
            [
                float(n_blocks),
                float(np.mean(lengths)),
                float(cfg.edge_count()),
                float(cfg.cyclomatic_complexity()),
                float(cfg.dispatcher_fanout()),
                float(len(cfg.loops())),
                dead / n_blocks,
                indirect / n_blocks,
                terminator_share("RETURN"),
                terminator_share("REVERT"),
                terminator_share("STOP"),
            ]
        )

    def transform(self, bytecodes: list[bytes]) -> np.ndarray:
        return np.stack([self.transform_one(code) for code in bytecodes])

    # fit is a no-op: keeps the extractor drop-in with the fitted ones.
    def fit(self, bytecodes: list[bytes]) -> "StructuralFeatureExtractor":
        return self

    def fit_transform(self, bytecodes: list[bytes]) -> np.ndarray:
        return self.transform(bytecodes)
