"""RGB image encodings of contract bytecode (§IV-B, Vision Models).

Two encoders:

* :func:`rgb_image` — the R2D2 scheme (ViT+R2D2, ECA+EfficientNet): the raw
  byte stream is interpreted as a sequence of (R, G, B) triplets, arranged
  row-major into a square image and zero-padded (or truncated) to fit.
* :class:`FrequencyImageEncoder` — the ViT+Freq scheme: a lookup table,
  built exactly once on the training set, maps each *disassembled*
  instruction to pixel intensities. The most frequent mnemonics, operands
  and gas values receive the highest intensities in the R, G and B channels
  respectively (frequency encoding as a categorical encoding technique).

The paper uses 224×224 inputs for the pretrained ViT-B/16; the size here is
a parameter (default 224, benchmarks use smaller CPU-friendly sizes —
substitution S5 in DESIGN.md).
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.evm.disassembler import disassemble

__all__ = ["rgb_image", "rgb_images", "FrequencyImageEncoder"]


def rgb_image(bytecode: bytes, size: int = 224) -> np.ndarray:
    """Encode raw bytes as a ``(size, size, 3)`` float image in [0, 1].

    Bytes are consumed three at a time as (R, G, B); the tail is
    zero-padded and anything beyond ``size*size`` pixels is truncated.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    capacity = size * size * 3
    buffer = np.frombuffer(bytecode[:capacity], dtype=np.uint8)
    padded = np.zeros(capacity, dtype=np.uint8)
    padded[: len(buffer)] = buffer
    return padded.reshape(size, size, 3).astype(np.float64) / 255.0


def rgb_images(bytecodes: list[bytes], size: int = 224) -> np.ndarray:
    """Stack :func:`rgb_image` over samples: ``(n, size, size, 3)``."""
    return np.stack([rgb_image(code, size) for code in bytecodes])


class FrequencyImageEncoder:
    """Frequency-encoded instruction images (ViT+Freq).

    One pixel per disassembled instruction:

    * R — normalized training-set frequency of the mnemonic,
    * G — normalized training-set frequency of the operand value,
    * B — normalized training-set frequency of the gas cost.

    Unseen categories map to intensity 0. The lookup table is constructed
    exactly once, on the entire training set.
    """

    def __init__(self, size: int = 224):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        self._tables: list[dict[object, float]] | None = None

    @property
    def is_fitted(self) -> bool:
        return self._tables is not None

    @staticmethod
    def _triple(instruction) -> tuple[str, str, object]:
        mnemonic, operand, gas = instruction.as_triple()
        gas_key = "NaN" if gas != gas else int(gas)
        return mnemonic, operand, gas_key

    def fit(self, bytecodes: list[bytes]) -> "FrequencyImageEncoder":
        counters = [Counter(), Counter(), Counter()]
        for bytecode in bytecodes:
            for instruction in disassemble(bytecode):
                for channel, key in enumerate(self._triple(instruction)):
                    counters[channel][key] += 1
        self._tables = []
        for counter in counters:
            top = max(counter.values()) if counter else 1
            self._tables.append(
                {key: count / top for key, count in counter.items()}
            )
        return self

    def transform_one(self, bytecode: bytes) -> np.ndarray:
        if self._tables is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        capacity = self.size * self.size
        pixels = np.zeros((capacity, 3), dtype=np.float64)
        for index, instruction in enumerate(disassemble(bytecode)):
            if index >= capacity:
                break
            for channel, key in enumerate(self._triple(instruction)):
                pixels[index, channel] = self._tables[channel].get(key, 0.0)
        return pixels.reshape(self.size, self.size, 3)

    def transform(self, bytecodes: list[bytes]) -> np.ndarray:
        return np.stack([self.transform_one(code) for code in bytecodes])

    def fit_transform(self, bytecodes: list[bytes]) -> np.ndarray:
        return self.fit(bytecodes).transform(bytecodes)

    # ------------------------------------------------------------------ #
    # Persistence (see repro.artifacts)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Fitted intensity tables as an artifact-ready state tree.

        Table keys are heterogeneous (mnemonic/operand strings, integer
        gas values), so each table is stored as a ``[key, value]`` pair
        list rather than a JSON object, preserving key types.
        """
        if self._tables is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        return {
            "tables": [
                [[key, float(value)] for key, value in sorted(
                    table.items(), key=lambda item: str(item[0])
                )]
                for table in self._tables
            ]
        }

    def load_state(self, state: dict) -> "FrequencyImageEncoder":
        self._tables = [
            {
                (int(key) if isinstance(key, (int, np.integer))
                 and not isinstance(key, bool) else str(key)): float(value)
                for key, value in pairs
            }
            for pairs in state["tables"]
        ]
        return self


def quantize_planes(images: np.ndarray, bins: int) -> np.ndarray:
    """One-hot intensity quantization: ``(…, 3)`` → ``(…, 3 · bins)``.

    Each channel intensity in [0, 1] is bucketed into ``bins`` levels and
    one-hot encoded. This fixed stem stands in for the value-selective
    low-level filters an ImageNet-pretrained backbone provides (DESIGN.md
    S5): a linear patch embedding over the quantized planes can compute
    per-patch byte-bucket histograms, which raw intensities do not admit.
    """
    if bins < 2:
        raise ValueError(f"bins must be ≥ 2, got {bins}")
    levels = np.minimum((images * bins).astype(np.int64), bins - 1)
    planes = np.zeros(images.shape + (bins,))
    np.put_along_axis(planes, levels[..., None], 1.0, axis=-1)
    return planes.reshape(images.shape[:-1] + (images.shape[-1] * bins,))


def pixels_needed(bytecode: bytes) -> int:
    """Smallest square image side that fits ``bytecode`` as RGB triplets."""
    return max(1, math.ceil(math.sqrt(math.ceil(len(bytecode) / 3))))
