"""Opcode-text tokenizers with the GPT-2/T5 α and β policies (§IV-D).

The language models consume the disassembled opcode sequence as text. Two
data-handling policies from the paper:

* **α** — "opcode sequences are truncated to fit model token limits";
* **β** — "full bytecodes are processed in chunks using a sliding window".

The tokenizer's vocabulary is the set of opcode mnemonics (≤144) plus the
special tokens ``PAD``/``UNK``/``BOS``/``EOS``, learned from the training
set like the HSC vocabulary.
"""

from __future__ import annotations

import numpy as np

from repro.evm.disassembler import disassemble_mnemonics

__all__ = ["OpcodeTokenizer"]

PAD_ID = 0
UNK_ID = 1
BOS_ID = 2
EOS_ID = 3
_RESERVED = 4


class OpcodeTokenizer:
    """Map opcode mnemonic sequences to fixed-length id sequences.

    Args:
        max_length: Token limit per sequence (α truncates to this).
        window_stride: Hop of the β sliding window, in tokens; defaults to
            half a window (50% overlap).
    """

    def __init__(self, max_length: int = 256, window_stride: int | None = None):
        if max_length < 4:
            raise ValueError("max_length must be at least 4")
        self.max_length = max_length
        self.window_stride = window_stride or max(1, max_length // 2)
        self.vocabulary_: dict[str, int] | None = None

    @property
    def is_fitted(self) -> bool:
        return self.vocabulary_ is not None

    @property
    def vocab_size(self) -> int:
        if self.vocabulary_ is None:
            raise RuntimeError("tokenizer is not fitted; call fit() first")
        return _RESERVED + len(self.vocabulary_)

    def fit(self, bytecodes: list[bytes]) -> "OpcodeTokenizer":
        seen: set[str] = set()
        for bytecode in bytecodes:
            seen.update(disassemble_mnemonics(bytecode))
        self.vocabulary_ = {
            mnemonic: index + _RESERVED
            for index, mnemonic in enumerate(sorted(seen))
        }
        return self

    def state_dict(self) -> dict:
        """Fitted mnemonic vocabulary as an artifact-ready state tree."""
        if self.vocabulary_ is None:
            raise RuntimeError("tokenizer is not fitted; call fit() first")
        return {"vocabulary": dict(self.vocabulary_)}

    def load_state(self, state: dict) -> "OpcodeTokenizer":
        self.vocabulary_ = {
            str(mnemonic): int(token_id)
            for mnemonic, token_id in state["vocabulary"].items()
        }
        return self

    def ids(self, bytecode: bytes) -> list[int]:
        """Full id sequence (BOS ... EOS), unbounded length."""
        if self.vocabulary_ is None:
            raise RuntimeError("tokenizer is not fitted; call fit() first")
        body = [
            self.vocabulary_.get(mnemonic, UNK_ID)
            for mnemonic in disassemble_mnemonics(bytecode)
        ]
        return [BOS_ID] + body + [EOS_ID]

    # ------------------------------------------------------------------ #
    # α: truncation
    # ------------------------------------------------------------------ #

    def encode_alpha(self, bytecodes: list[bytes]) -> np.ndarray:
        """Truncate-to-limit matrix of shape ``(n, max_length)``."""
        matrix = np.full((len(bytecodes), self.max_length), PAD_ID, dtype=np.int64)
        for row, bytecode in enumerate(bytecodes):
            ids = self.ids(bytecode)[: self.max_length]
            matrix[row, : len(ids)] = ids
        return matrix

    # ------------------------------------------------------------------ #
    # β: sliding window
    # ------------------------------------------------------------------ #

    def encode_beta(self, bytecode: bytes) -> np.ndarray:
        """All windows of one bytecode: shape ``(n_windows, max_length)``.

        Windows cover the full sequence with ``window_stride`` overlap; the
        last window is padded. A sequence shorter than one window yields a
        single padded window.
        """
        ids = self.ids(bytecode)
        windows: list[list[int]] = []
        start = 0
        while True:
            chunk = ids[start : start + self.max_length]
            if not chunk:
                break
            windows.append(chunk)
            if start + self.max_length >= len(ids):
                break
            start += self.window_stride
        matrix = np.full((len(windows), self.max_length), PAD_ID, dtype=np.int64)
        for row, chunk in enumerate(windows):
            matrix[row, : len(chunk)] = chunk
        return matrix

    def encode_beta_batch(
        self, bytecodes: list[bytes]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Windows for a batch, with a sample-index per window.

        Returns ``(windows, sample_index)`` where predictions over windows
        are aggregated per sample by the β model heads.
        """
        all_windows = []
        owners = []
        for sample, bytecode in enumerate(bytecodes):
            windows = self.encode_beta(bytecode)
            all_windows.append(windows)
            owners.extend([sample] * len(windows))
        return np.concatenate(all_windows, axis=0), np.asarray(owners, dtype=np.int64)
