"""Feature extraction pipelines for the four model categories.

* :mod:`repro.features.histogram` — opcode-occurrence histograms (HSCs),
* :mod:`repro.features.image` — RGB encodings: raw-byte R2D2 images
  (ViT+R2D2, ECA+EfficientNet) and frequency-encoded images (ViT+Freq),
* :mod:`repro.features.ngrams` — SCSGuard's hex n-gram sequences,
* :mod:`repro.features.tokenizer` — opcode-text tokenizers with the α
  (truncation) and β (sliding-window) policies of GPT-2/T5.

Extractors follow a fit/transform protocol: anything learned (vocabularies,
frequency tables) is learned on the *training* set only, exactly as the
paper stipulates for the ViT+Freq lookup table.
"""

from repro.features.histogram import OpcodeHistogramExtractor
from repro.features.image import FrequencyImageEncoder, rgb_image
from repro.features.ngrams import HexNgramEncoder
from repro.features.structural import StructuralFeatureExtractor
from repro.features.tokenizer import OpcodeTokenizer

__all__ = [
    "OpcodeHistogramExtractor",
    "FrequencyImageEncoder",
    "rgb_image",
    "HexNgramEncoder",
    "StructuralFeatureExtractor",
    "OpcodeTokenizer",
]
