"""Shadow rollout: candidate-vs-production scoring with auto-promotion.

A serving fleet should never find out a new model is worse *after*
promoting it. This example runs the whole safe-promotion loop in one
process on the synthetic stream:

1. train a production model and a candidate, file both in a
   ``ModelStore`` under their tags,
2. serve ``production`` through a sharded ``StreamScanner``,
3. attach a ``ShadowRollout``: the candidate scores the identical live
   micro-batches through the shared feature cache, accumulating
   agreement / divergence / disagreement-class / latency-overhead
   evidence,
4. let the ``MetricParityPolicy`` promote mid-stream — the store's
   ``production`` tag repoints atomically and every shard hot-swaps with
   zero dropped batches,
5. then do it again with a broken candidate (a simulated label-flip
   training bug) and watch the policy abort with production untouched.

The CLI equivalent (``phishinghook rollout start|status|promote|abort``)
is walked through in docs/operations.md.

Run:  python examples/shadow_rollout.py
"""

import tempfile

from repro.artifacts import ModelStore
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.models.hsc import HSCDetector
from repro.rollout import MetricParityPolicy, ShadowRollout
from repro.stream.events import ContractEvent
from repro.stream.scanner import StreamScanner

SEED = 41
SHARDS = 2


def fit_forest(dataset, seed, n_estimators=24):
    model = HSCDetector(variant="Random Forest", seed=seed)
    model.set_params(clf__n_estimators=n_estimators)
    model.fit(dataset.bytecodes, dataset.labels)
    return model


def replay(scanner, chain, start=0):
    """Push every deployment on the chain through the scanner."""
    for index, account in enumerate(chain.accounts()):
        scanner.on_event(ContractEvent(
            address=f"0x{start + index:040x}", code=account.code,
            block_number=index, timestamp=account.deployed_at,
            tx_hash=f"0x{index:064x}", sequence=index,
        ))
    scanner.flush()


def report(tag, rollout):
    comparison = rollout.comparison
    print(f"  [{tag}] state={rollout.state}  "
          f"events={comparison.events}  "
          f"agreement={comparison.agreement_rate:.4f}  "
          f"divergence={comparison.mean_divergence:.4f}")
    print(f"  [{tag}] production-only={comparison.production_only}  "
          f"candidate-only={comparison.candidate_only}  "
          f"shadow overhead={comparison.latency_overhead:.2f}x")
    print(f"  [{tag}] decision: {rollout.last_decision.action} — "
          f"{rollout.last_decision.reason}")


def main() -> None:
    corpus = build_corpus(
        CorpusConfig(n_phishing=60, n_benign=60, seed=SEED)
    )
    dataset = Dataset.from_corpus(corpus, seed=SEED)

    with tempfile.TemporaryDirectory(prefix="phook-rollout-") as root:
        store = ModelStore(f"{root}/store")
        production = fit_forest(dataset, seed=SEED)
        candidate = fit_forest(dataset, seed=SEED + 1)
        prod_version = store.put(
            production, model_name="Random Forest", tags=("production",)
        )
        cand_version = store.put(
            candidate, model_name="Random Forest", tags=("candidate",)
        )
        print(f"store stocked: production={prod_version[:12]} "
              f"candidate={cand_version[:12]}")

        # --- parity candidate: shadow, then automatic promotion -------- #
        scanner = StreamScanner.from_artifact(
            "production", store=store, shards=SHARDS, max_batch=16,
        )
        rollout = ShadowRollout(
            scanner, "candidate", store=store,
            policy=MetricParityPolicy(
                min_events=64, promote_agreement=0.95,
                abort_agreement=0.60, max_mean_divergence=0.10,
            ),
        )
        print(f"\nshadow-scoring candidate on live traffic "
              f"({SHARDS} shards, shared feature cache)...")
        replay(scanner, corpus.chain)
        report("parity", rollout)
        assert scanner.stats.dropped == 0
        print(f"  store production tag now -> "
              f"{store.tags()['production'][:12]} "
              f"(promoted={rollout.state == 'promoted'}, "
              f"dropped={scanner.stats.dropped})")

        # --- regressed candidate: shadow, then automatic abort --------- #
        # Simulate a training-pipeline bug: the labels were flipped.
        # Offline metrics computed with the same bug would look fine —
        # only comparison against live production traffic catches it.
        broken = HSCDetector(variant="Random Forest", seed=SEED + 9)
        broken.set_params(clf__n_estimators=24)
        broken.fit(
            dataset.bytecodes,
            [1 - label for label in dataset.labels],
        )
        store.put(broken, model_name="Random Forest", tags=("candidate",))
        scanner2 = StreamScanner.from_artifact(
            "production", store=store, shards=SHARDS, max_batch=16,
        )
        rollout2 = ShadowRollout(
            scanner2, "candidate", store=store,
            policy=MetricParityPolicy(
                min_events=64, promote_agreement=0.95,
                abort_agreement=0.60, max_mean_divergence=0.10,
            ),
        )
        print("\nshadow-scoring a label-flipped (regressed) candidate...")
        replay(scanner2, corpus.chain, start=10 ** 6)
        report("regressed", rollout2)
        print(f"  store production tag still -> "
              f"{store.tags()['production'][:12]} "
              f"(aborted={rollout2.state == 'aborted'}, "
              f"production untouched)")


if __name__ == "__main__":
    main()
