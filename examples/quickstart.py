"""Quickstart: gather → label → train → classify, in ~30 lines.

Builds a small simulated Ethereum data plane, runs PhishingHook's
extraction pipeline over it, trains the paper's best model (Random Forest
on opcode histograms) and classifies two fresh addresses.

Run:  python examples/quickstart.py
"""

from repro.core.pipeline import PhishingHook, PipelineConfig
from repro.datagen.corpus import CorpusConfig, build_corpus


def main() -> None:
    # A simulated chain + explorer with 120 unique contracts (60 phishing).
    corpus = build_corpus(CorpusConfig(n_phishing=60, n_benign=60, seed=11))
    hook = PhishingHook(corpus, PipelineConfig(run_post_hoc=False))

    # Fig. 1 ➊–➍: crawl BigQuery rows, scrape Phish/Hack flags, pull
    # bytecode over JSON-RPC, dedup the minimal-proxy clones and balance.
    contracts = hook.gather()
    dataset = hook.build_dataset(contracts)
    print(f"crawled {len(contracts)} deployments "
          f"→ dataset of {len(dataset)} unique contracts "
          f"(benign, phishing = {dataset.class_counts})")

    # Scan one known-phishing and one known-benign address.
    phishing_address = corpus.phishing_records()[0].address
    benign_address = corpus.benign_records()[0].address
    for address in (phishing_address, benign_address):
        flagged, probability = hook.classify_address(
            address, "Random Forest", train_dataset=dataset
        )
        verdict = "PHISHING" if flagged else "benign"
        print(f"{address} → {verdict:8s} (p = {probability:.3f})")


if __name__ == "__main__":
    main()
