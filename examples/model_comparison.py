"""Compare detection models across categories (a miniature Table II).

Trains one representative of each category — Random Forest (HSC),
ViT+R2D2 (VM), SCSGuard (LM) and ESCORT (VDM) — under 3-fold
cross-validation and runs the post-hoc statistics.

Run:  python examples/model_comparison.py
"""

from repro.core.mem import ModelEvaluationModule
from repro.core.pam import PostHocAnalysisModule
from repro.core.registry import create_model
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset

MODELS = ["Random Forest", "k-NN", "ViT+R2D2", "SCSGuard", "ESCORT"]


def main() -> None:
    corpus = build_corpus(CorpusConfig(n_phishing=100, n_benign=100, seed=5))
    dataset = Dataset.from_corpus(corpus, seed=5)
    print(f"dataset: {len(dataset)} contracts, classes {dataset.class_counts}")

    mem = ModelEvaluationModule(n_folds=3, n_runs=1, seed=5)
    evaluation = mem.evaluate(dataset, MODELS, model_factory=create_model)
    print()
    print(evaluation.table())

    for name in MODELS:
        train_s, infer_s = evaluation.mean_times(name)
        print(f"{name:16s} train {train_s:7.2f}s   inference {infer_s:6.3f}s")

    # Post-hoc: are the observed differences statistically significant?
    report = PostHocAnalysisModule(exclude=("ESCORT",)).analyze(evaluation)
    print()
    print(report.table3())
    print(f"significant Dunn pairs (accuracy): "
          f"{report.significant_pair_fraction('accuracy'):.0%}")


if __name__ == "__main__":
    main()
