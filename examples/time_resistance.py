"""Time-resistance study (a miniature Fig. 8).

Trains on the first four study months (Oct 2023 – Jan 2024) and evaluates
on each later month, where attack patterns drift (obfuscation grows and a
new rug-pull family phases in mid-study). Reports per-month F1 and the
Area Under Time (AUT) robustness score.

Run:  python examples/time_resistance.py
"""

from repro.analysis.timeeval import time_decay_evaluation
from repro.chain.timeline import month_label
from repro.core.registry import create_model
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset


def main() -> None:
    # Benign deployments follow the phishing temporal profile (§IV-G).
    corpus = build_corpus(
        CorpusConfig(
            n_phishing=100, n_benign=100, seed=23, benign_temporal_match=True
        )
    )
    dataset = Dataset.from_corpus(corpus, seed=23)

    results = time_decay_evaluation(
        dataset,
        create_model,
        ["Random Forest", "SCSGuard"],
        train_months=(0, 1, 2, 3),
        seed=23,
    )

    for result in results:
        print(f"\n{result.model} (trained in {result.train_seconds:.1f}s)")
        for month, metrics in zip(result.months, result.metrics):
            print(f"  {month_label(month)}: F1 = {metrics.f1:.3f} "
                  f"(precision {metrics.precision:.3f}, "
                  f"recall {metrics.recall:.3f})")
        print(f"  AUT(F1) = {result.aut_f1:.3f} "
              f"(paper: RF 0.89, SCSGuard 0.84)")


if __name__ == "__main__":
    main()
