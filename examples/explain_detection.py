"""Explain a detection with exact TreeSHAP (a miniature Fig. 9).

Trains the Random Forest HSC, picks one flagged contract and shows which
opcode counts pushed the prediction toward phishing — the model-designer
view §IV-H discusses (e.g. low GAS usage reads as suspicious).

Run:  python examples/explain_detection.py
"""

import numpy as np

from repro.analysis.shap_values import tree_shap_values
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.features.histogram import OpcodeHistogramExtractor
from repro.ml.forest import RandomForestClassifier


def main() -> None:
    corpus = build_corpus(CorpusConfig(n_phishing=100, n_benign=100, seed=47))
    dataset = Dataset.from_corpus(corpus, seed=47)
    train, test = dataset.train_test_split(0.25, seed=47)

    extractor = OpcodeHistogramExtractor().fit(train.bytecodes)
    X_train = extractor.transform(train.bytecodes)
    X_test = extractor.transform(test.bytecodes)
    forest = RandomForestClassifier(
        n_estimators=60, max_depth=8, random_state=47
    ).fit(X_train, train.labels)

    # Pick the most confidently flagged test contract.
    probabilities = forest.predict_proba(X_test)[:, 1]
    target = int(np.argmax(probabilities))
    print(f"explaining {test.addresses[target]} "
          f"(true class: {'phishing' if test.labels[target] else 'benign'}, "
          f"p = {probabilities[target]:.3f})")

    values, base = tree_shap_values(forest, X_test[target : target + 1])
    names = extractor.feature_names
    contributions = values[0]
    order = np.argsort(np.abs(contributions))[::-1][:10]

    print(f"\nbase rate P(phishing) = {base:.3f}")
    print(f"{'Opcode':16s} {'count':>6s} {'φ':>8s}")
    for index in order:
        count = int(X_test[target, index])
        print(f"{names[index]:16s} {count:6d} {contributions[index]:+8.4f}")
    reconstructed = base + contributions.sum()
    print(f"\nbase + Σφ = {reconstructed:.3f} "
          f"(matches the model output, local accuracy)")


if __name__ == "__main__":
    main()
