"""Active evasion and hardening (extension beyond the paper's §IV-G).

An attacker who controls their own phishing contract pads it with
unreachable bytes drawn from the benign byte distribution (a mimicry
attack — the contract's behaviour is unchanged, verifiable by the EVM
interpreter, but its opcode statistics drift benign-ward). This script:

1. sweeps the attack strength against a clean-trained Random Forest and
   prints the recall-decay table,
2. verifies a sample rewrite really is semantics-preserving,
3. retrains with attacked phishing copies and shows the recovery.

Run:  python examples/adversarial_robustness.py
"""

import numpy as np

from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.models.hsc import HSCDetector
from repro.robustness import (
    adversarial_retraining,
    evaluate_under_attack,
    mimicry_padding,
    opcode_byte_distribution,
    semantics_preserved,
)


def make_detector() -> HSCDetector:
    detector = HSCDetector(variant="Random Forest", seed=0)
    detector.set_params(clf__n_estimators=80)
    return detector


def main() -> None:
    corpus = build_corpus(CorpusConfig(n_phishing=120, n_benign=120, seed=42))
    dataset = Dataset.from_corpus(corpus, seed=42)
    train, test = dataset.train_test_split(0.3, seed=42)

    benign_codes = [
        code for code, label in zip(train.bytecodes, train.labels)
        if label == 0
    ]
    distribution = opcode_byte_distribution(benign_codes)

    def attack(bytecode, rng, strength):
        return mimicry_padding(
            bytecode, rng, int(strength * len(bytecode)), distribution
        )

    # Sanity: the rewrite does not change on-chain behaviour.
    sample = next(
        code for code, label in zip(test.bytecodes, test.labels) if label == 1
    )
    attacked_sample = attack(sample, np.random.default_rng(0), 1.0)
    print("sample rewrite semantics preserved:",
          semantics_preserved(sample, attacked_sample))

    sweep = evaluate_under_attack(
        make_detector(),
        train.bytecodes, train.labels,
        test.bytecodes, test.labels,
        attack,
        strengths=[0.0, 0.5, 1.0, 2.0],
        attack_name="benign-mimicry padding",
    )
    print()
    print(sweep.table())
    print(f"recall lost at max strength: {sweep.recall_drop():.3f}")

    outcome = adversarial_retraining(
        make_detector,
        train.bytecodes, train.labels,
        test.bytecodes, test.labels,
        attack,
        strength=1.0,
    )
    print()
    print("adversarial retraining at strength 1.0 (attacked test set):")
    print(f"  clean-trained model:  {outcome['clean_model']}")
    print(f"  hardened model:       {outcome['hardened_model']}")


if __name__ == "__main__":
    main()
