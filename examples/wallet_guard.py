"""Wallet guard: pre-signature scanning with a latency budget.

The paper's §IV-F motivates timeliness: "in crypto wallets, users interact
with smart contracts in real-time, often signing transactions within
seconds. Any delay in detecting a phishing contract could mean a user
already approved a malicious transaction." This example simulates a wallet
that checks every contract the user is about to interact with, and reports
the per-scan latency of a pre-trained Random Forest detector.

A real wallet warns on probabilities, not hard labels, so the blocking
threshold is chosen on a calibration split as the highest-recall
operating point with at least 95% precision (nuisance warnings erode user
trust faster than the occasional miss).

Run:  python examples/wallet_guard.py
"""

import time

import numpy as np

from repro.core.registry import create_model
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.ml.curves import operating_point_at_precision


def main() -> None:
    corpus = build_corpus(CorpusConfig(n_phishing=100, n_benign=100, seed=31))
    dataset = Dataset.from_corpus(corpus, seed=31)
    train, calibration = dataset.train_test_split(0.25, seed=31)

    # Train the detector once, offline, before any user interaction.
    detector = create_model("Random Forest", seed=31)
    started = time.perf_counter()
    detector.fit(train.bytecodes, train.labels)
    print(f"detector trained in {time.perf_counter() - started:.2f}s "
          f"on {len(train.bytecodes)} contracts")

    # Pick the blocking threshold on held-out data: the highest recall
    # achievable at >= 95% precision.
    scores = detector.predict_proba(calibration.bytecodes)[:, 1]
    point = operating_point_at_precision(
        np.asarray(calibration.labels), scores, min_precision=0.95
    )
    threshold = point.threshold if point is not None else 0.5
    if point is not None:
        print(f"operating point: threshold={threshold:.2f} "
              f"(precision {point.precision:.2f}, recall {point.recall:.2f} "
              "on the calibration split)")

    # The user's wallet session: five transaction targets, mixed classes.
    session = corpus.phishing_records()[:3] + corpus.benign_records()[:2]
    print("\nincoming transaction targets:")
    blocked = 0
    for record in session:
        code = corpus.chain.get_code(record.address)
        started = time.perf_counter()
        probability = float(detector.predict_proba([code])[0, 1])
        latency_ms = (time.perf_counter() - started) * 1000
        flagged = probability >= threshold
        verdict = "BLOCK " if flagged else "allow "
        truth = "phishing" if record.label else "benign"
        blocked += int(flagged and record.label)
        print(f"  {verdict} {record.address}  p={probability:.2f} "
              f"latency={latency_ms:6.1f} ms  (ground truth: {truth})")

    print(f"\nblocked {blocked}/3 phishing targets before signature")
    print("a scan must complete well within the seconds-long signing flow")


if __name__ == "__main__":
    main()
