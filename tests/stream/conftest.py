"""Shared fixtures for streaming-pipeline tests."""

import pytest

from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.serve.service import ScanService


@pytest.fixture(scope="session")
def stream_corpus():
    return build_corpus(
        CorpusConfig(n_phishing=30, n_benign=30, seed=17, clone_factor=3.0)
    )


@pytest.fixture(scope="session")
def stream_dataset(stream_corpus):
    return Dataset.from_corpus(stream_corpus, seed=0)


@pytest.fixture(scope="session")
def fitted_service(stream_dataset):
    """One fitted Random Forest service; tests take sharded views of it."""
    service = ScanService(
        "Random Forest", train_dataset=stream_dataset, seed=0
    )
    service.ensure_fitted()
    return service


@pytest.fixture
def service(fitted_service):
    """A per-test view: isolated counters, shared fit + cache."""
    return fitted_service.sharded(1)[0]
