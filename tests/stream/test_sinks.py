"""Tests for alert sinks and their delivery accounting."""

import json

import pytest

from repro.stream.scanner import StreamAlert
from repro.stream.sinks import (
    AlertSink,
    CallbackSink,
    JsonlSink,
    MemorySink,
    WebhookSink,
)


@pytest.fixture
def alert():
    return StreamAlert(
        address="0x" + "ab" * 20,
        probability=0.93,
        block_number=18_000_000,
        timestamp=1_700_000_000,
        latency_seconds=0.004,
        shard=1,
        batch_id=7,
        from_cache=False,
    )


def test_base_sink_requires_deliver(alert):
    sink = AlertSink()
    assert not sink.emit(alert)  # NotImplementedError → counted failure
    assert sink.stats.failed == 1


def test_memory_sink_collects(alert):
    sink = MemorySink()
    assert sink.emit(alert)
    assert sink.alerts == [alert]
    assert sink.stats.as_dict() == {"delivered": 1, "failed": 0}


def test_jsonl_sink_appends_one_object_per_alert(alert, tmp_path):
    path = tmp_path / "alerts.jsonl"
    sink = JsonlSink(path)
    sink.emit(alert)
    sink.emit(alert)
    sink.close()
    sink.close()  # idempotent
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    body = json.loads(lines[0])
    assert body["address"] == alert.address
    assert body["probability"] == alert.probability
    assert body["shard"] == 1


def test_callback_sink_invokes(alert):
    received = []
    sink = CallbackSink(received.append)
    sink.emit(alert)
    assert received == [alert]


def test_callback_failure_is_swallowed_and_counted(alert):
    def explode(_):
        raise RuntimeError("down")

    sink = CallbackSink(explode)
    assert not sink.emit(alert)
    assert sink.stats.failed == 1
    assert sink.stats.delivered == 0


def test_webhook_sink_records_wire_format(alert):
    sink = WebhookSink.recording("https://hooks.example/phishing")
    sink.emit(alert)
    (url, body), = sink.sent
    assert url == "https://hooks.example/phishing"
    assert body["type"] == "phishing_alert"
    assert body["address"] == alert.address
    assert body["block_number"] == alert.block_number


def test_webhook_custom_transport_failure_counted(alert):
    def transport(url, body):
        raise ConnectionError("no route")

    sink = WebhookSink("https://hooks.example/x", transport=transport)
    assert not sink.emit(alert)
    assert sink.stats.failed == 1
    assert sink.sent == []


class TestFailurePaths:
    """Delivery failures are counted per channel, never fatal."""

    def test_webhook_flaky_transport_accounting(self, alert):
        calls = {"n": 0}

        def flaky(url, body):
            calls["n"] += 1
            if calls["n"] % 3 == 0:  # every third POST times out
                raise TimeoutError("gateway timeout")

        sink = WebhookSink("https://hooks.example/phishing", transport=flaky)
        outcomes = [sink.emit(alert) for _ in range(9)]
        assert outcomes.count(True) == 6
        assert sink.stats.as_dict() == {"delivered": 6, "failed": 3}
        # Only successful posts count as delivered; the wire log keeps
        # everything the default recorder saw (custom transport: none).
        assert sink.sent == []

    def test_webhook_failure_then_recovery(self, alert):
        state = {"down": True}

        def transport(url, body):
            if state["down"]:
                raise ConnectionError("endpoint down")

        sink = WebhookSink("https://hooks.example/x", transport=transport)
        assert not sink.emit(alert)
        state["down"] = False
        assert sink.emit(alert)
        assert sink.stats.as_dict() == {"delivered": 1, "failed": 1}

    def test_jsonl_opens_lazily(self, alert, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # nothing touched before traffic
        sink.emit(alert)
        sink.close()
        assert path.exists()

    def test_jsonl_unwritable_path_counts_failures(self, alert, tmp_path):
        # The parent directory does not exist: every append fails, the
        # failure is visible in the sink stats, and nothing raises out
        # of emit() into the scan loop.
        sink = JsonlSink(tmp_path / "missing-dir" / "alerts.jsonl")
        assert not sink.emit(alert)
        assert not sink.emit(alert)
        assert sink.stats.as_dict() == {"delivered": 0, "failed": 2}
        sink.close()  # close with no handle is a no-op

    def test_jsonl_unwritable_path_recovers_when_fixed(self, alert, tmp_path):
        target = tmp_path / "late-dir" / "alerts.jsonl"
        sink = JsonlSink(target)
        assert not sink.emit(alert)
        target.parent.mkdir()
        assert sink.emit(alert)
        sink.close()
        assert len(target.read_text().strip().splitlines()) == 1
        assert sink.stats.as_dict() == {"delivered": 1, "failed": 1}

    def test_failing_sink_never_breaks_the_scan_loop(self, service,
                                                     stream_dataset,
                                                     tmp_path):
        from repro.stream.scanner import StreamScanner
        from repro.stream.events import ContractEvent

        broken = JsonlSink(tmp_path / "nope" / "alerts.jsonl")
        healthy = MemorySink()
        scanner = StreamScanner(
            service, max_batch=4, threshold=0.0,
            sinks=[broken, healthy],
        )
        codes = stream_dataset.bytecodes[:12]
        for index, code in enumerate(codes):
            scanner.on_event(ContractEvent(
                address=f"0x{index:040x}", code=code, block_number=index,
                timestamp=1_700_000_000 + index,
                tx_hash=f"0x{index:064x}", sequence=index,
            ))
        scanner.flush()
        # Scanning finished; the broken channel is visible per channel.
        assert scanner.stats.scanned == len(codes)
        assert len(healthy.alerts) == scanner.stats.flagged > 0
        summary = scanner.summary()["sinks"]
        assert summary["jsonl"]["failed"] == scanner.stats.flagged
        assert summary["jsonl"]["delivered"] == 0
        assert summary["memory"]["delivered"] == scanner.stats.flagged


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestDeadLetterSink:
    """Zero-alert-loss wrapper: delivered or spooled, never dropped."""

    def _sink(self, tmp_path, *, failures=2, reset=5.0):
        from repro.net.retry import CircuitBreaker
        from repro.stream.sinks import DeadLetterSink

        clock = _Clock()
        inner = MemorySink()
        sink = DeadLetterSink(
            inner, tmp_path / "dead.jsonl",
            breaker=CircuitBreaker(failures=failures,
                                   reset_seconds=reset, clock=clock),
        )
        return sink, inner, clock

    def test_healthy_channel_passes_straight_through(self, alert,
                                                     tmp_path):
        sink, inner, _ = self._sink(tmp_path)
        assert sink.emit(alert)
        assert inner.alerts == [alert]
        assert sink.stats.as_dict() == {
            "delivered": 1, "failed": 0, "spooled": 0, "replayed": 0,
        }
        assert sink.spooled_alerts() == []

    def test_failed_delivery_spools_and_trips_the_breaker(self, alert,
                                                          tmp_path):
        from repro.faults import FaultPlan, FaultSpec
        from repro.net.retry import CircuitBreaker

        sink, inner, _ = self._sink(tmp_path)
        plan = FaultPlan([FaultSpec("sink.emit", "error",
                                    match="memory", count=2)])
        with plan.installed():
            assert sink.emit(alert)  # spooled counts as accounted-for
            assert sink.emit(alert)
        assert inner.alerts == []
        assert sink.stats.spooled == 2
        assert sink.breaker.state == CircuitBreaker.OPEN
        assert len(sink.spooled_alerts()) == 2

    def test_open_breaker_spools_without_attempting(self, alert,
                                                    tmp_path):
        from repro.faults import FaultPlan, FaultSpec

        sink, inner, _ = self._sink(tmp_path)
        # Two injected failures open the breaker; the third emit must
        # not even reach the inner sink (the fault budget is spent).
        plan = FaultPlan([FaultSpec("sink.emit", "error",
                                    match="memory", count=2)])
        with plan.installed():
            sink.emit(alert)
            sink.emit(alert)
            assert sink.emit(alert)
            assert plan.specs[0].hits == 2, (
                "open breaker still attempted a delivery"
            )
        assert sink.stats.spooled == 3

    def test_recovery_replays_the_spool_in_order(self, tmp_path):
        from repro.faults import FaultPlan, FaultSpec

        sink, inner, clock = self._sink(tmp_path)
        alerts = [{"address": f"0x{i:040x}", "probability": 0.9}
                  for i in range(4)]
        plan = FaultPlan([FaultSpec("sink.emit", "error",
                                    match="memory", count=2)])
        with plan.installed():
            sink.emit(alerts[0])
            sink.emit(alerts[1])
            sink.emit(alerts[2])  # breaker open: straight to spool
        clock.now += 5.0  # half-open: next emit is the probe
        assert sink.emit(alerts[3])
        # Probe delivered, then the whole spool replayed oldest-first.
        assert inner.alerts == [alerts[3], alerts[0], alerts[1],
                                alerts[2]]
        assert sink.spooled_alerts() == []
        assert sink.stats.as_dict() == {
            "delivered": 4, "failed": 0, "spooled": 0, "replayed": 3,
        }

    def test_replay_stops_at_first_failure_and_keeps_order(self,
                                                           tmp_path):
        from repro.faults import FaultPlan, FaultSpec

        sink, inner, clock = self._sink(tmp_path)
        alerts = [{"address": f"0x{i:040x}"} for i in range(3)]
        plan = FaultPlan([FaultSpec("sink.emit", "error",
                                    match="memory", count=2)])
        with plan.installed():
            sink.emit(alerts[0])
            sink.emit(alerts[1])
            sink.emit(alerts[2])
        clock.now += 5.0
        # The probe succeeds, replay delivers alerts[0], then a fresh
        # fault kills the second replay: the tail must stay spooled.
        plan2 = FaultPlan([FaultSpec("sink.emit", "error",
                                     match="memory", after=2)])
        with plan2.installed():
            sink.emit({"address": "0xprobe"})
        assert inner.alerts == [{"address": "0xprobe"}, alerts[0]]
        assert sink.spooled_alerts() == [alerts[1], alerts[2]]
        assert sink.stats.replayed == 1

    def test_unwritable_spool_is_the_only_true_loss(self, alert,
                                                    tmp_path):
        from repro.faults import FaultPlan, FaultSpec
        from repro.net.retry import CircuitBreaker
        from repro.stream.sinks import DeadLetterSink

        clock = _Clock()
        sink = DeadLetterSink(
            MemorySink(), tmp_path / "no-such-dir" / "dead.jsonl",
            breaker=CircuitBreaker(failures=1, reset_seconds=5.0,
                                   clock=clock),
        )
        plan = FaultPlan([FaultSpec("sink.emit", "error",
                                    match="memory")])
        with plan.installed():
            assert not sink.emit(alert)
        assert sink.stats.failed == 1
        assert sink.stats.spooled == 0

    def test_close_replays_then_closes_inner(self, tmp_path):
        from repro.faults import FaultPlan, FaultSpec

        sink, inner, clock = self._sink(tmp_path)
        plan = FaultPlan([FaultSpec("sink.emit", "error",
                                    match="memory", count=2)])
        with plan.installed():
            sink.emit({"address": "0x1"})
            sink.emit({"address": "0x2"})
        clock.now += 5.0
        sink.close()
        assert inner.alerts == [{"address": "0x1"}, {"address": "0x2"}]
        assert sink.spooled_alerts() == []
