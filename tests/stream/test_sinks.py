"""Tests for alert sinks and their delivery accounting."""

import json

import pytest

from repro.stream.scanner import StreamAlert
from repro.stream.sinks import (
    AlertSink,
    CallbackSink,
    JsonlSink,
    MemorySink,
    WebhookSink,
)


@pytest.fixture
def alert():
    return StreamAlert(
        address="0x" + "ab" * 20,
        probability=0.93,
        block_number=18_000_000,
        timestamp=1_700_000_000,
        latency_seconds=0.004,
        shard=1,
        batch_id=7,
        from_cache=False,
    )


def test_base_sink_requires_deliver(alert):
    sink = AlertSink()
    assert not sink.emit(alert)  # NotImplementedError → counted failure
    assert sink.stats.failed == 1


def test_memory_sink_collects(alert):
    sink = MemorySink()
    assert sink.emit(alert)
    assert sink.alerts == [alert]
    assert sink.stats.as_dict() == {"delivered": 1, "failed": 0}


def test_jsonl_sink_appends_one_object_per_alert(alert, tmp_path):
    path = tmp_path / "alerts.jsonl"
    sink = JsonlSink(path)
    sink.emit(alert)
    sink.emit(alert)
    sink.close()
    sink.close()  # idempotent
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    body = json.loads(lines[0])
    assert body["address"] == alert.address
    assert body["probability"] == alert.probability
    assert body["shard"] == 1


def test_callback_sink_invokes(alert):
    received = []
    sink = CallbackSink(received.append)
    sink.emit(alert)
    assert received == [alert]


def test_callback_failure_is_swallowed_and_counted(alert):
    def explode(_):
        raise RuntimeError("down")

    sink = CallbackSink(explode)
    assert not sink.emit(alert)
    assert sink.stats.failed == 1
    assert sink.stats.delivered == 0


def test_webhook_sink_records_wire_format(alert):
    sink = WebhookSink("https://hooks.example/phishing")
    sink.emit(alert)
    (url, body), = sink.sent
    assert url == "https://hooks.example/phishing"
    assert body["type"] == "phishing_alert"
    assert body["address"] == alert.address
    assert body["block_number"] == alert.block_number


def test_webhook_custom_transport_failure_counted(alert):
    def transport(url, body):
        raise ConnectionError("no route")

    sink = WebhookSink("https://hooks.example/x", transport=transport)
    assert not sink.emit(alert)
    assert sink.stats.failed == 1
    assert sink.sent == []
