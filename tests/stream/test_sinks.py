"""Tests for alert sinks and their delivery accounting."""

import json

import pytest

from repro.stream.scanner import StreamAlert
from repro.stream.sinks import (
    AlertSink,
    CallbackSink,
    JsonlSink,
    MemorySink,
    WebhookSink,
)


@pytest.fixture
def alert():
    return StreamAlert(
        address="0x" + "ab" * 20,
        probability=0.93,
        block_number=18_000_000,
        timestamp=1_700_000_000,
        latency_seconds=0.004,
        shard=1,
        batch_id=7,
        from_cache=False,
    )


def test_base_sink_requires_deliver(alert):
    sink = AlertSink()
    assert not sink.emit(alert)  # NotImplementedError → counted failure
    assert sink.stats.failed == 1


def test_memory_sink_collects(alert):
    sink = MemorySink()
    assert sink.emit(alert)
    assert sink.alerts == [alert]
    assert sink.stats.as_dict() == {"delivered": 1, "failed": 0}


def test_jsonl_sink_appends_one_object_per_alert(alert, tmp_path):
    path = tmp_path / "alerts.jsonl"
    sink = JsonlSink(path)
    sink.emit(alert)
    sink.emit(alert)
    sink.close()
    sink.close()  # idempotent
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    body = json.loads(lines[0])
    assert body["address"] == alert.address
    assert body["probability"] == alert.probability
    assert body["shard"] == 1


def test_callback_sink_invokes(alert):
    received = []
    sink = CallbackSink(received.append)
    sink.emit(alert)
    assert received == [alert]


def test_callback_failure_is_swallowed_and_counted(alert):
    def explode(_):
        raise RuntimeError("down")

    sink = CallbackSink(explode)
    assert not sink.emit(alert)
    assert sink.stats.failed == 1
    assert sink.stats.delivered == 0


def test_webhook_sink_records_wire_format(alert):
    sink = WebhookSink.recording("https://hooks.example/phishing")
    sink.emit(alert)
    (url, body), = sink.sent
    assert url == "https://hooks.example/phishing"
    assert body["type"] == "phishing_alert"
    assert body["address"] == alert.address
    assert body["block_number"] == alert.block_number


def test_webhook_custom_transport_failure_counted(alert):
    def transport(url, body):
        raise ConnectionError("no route")

    sink = WebhookSink("https://hooks.example/x", transport=transport)
    assert not sink.emit(alert)
    assert sink.stats.failed == 1
    assert sink.sent == []


class TestFailurePaths:
    """Delivery failures are counted per channel, never fatal."""

    def test_webhook_flaky_transport_accounting(self, alert):
        calls = {"n": 0}

        def flaky(url, body):
            calls["n"] += 1
            if calls["n"] % 3 == 0:  # every third POST times out
                raise TimeoutError("gateway timeout")

        sink = WebhookSink("https://hooks.example/phishing", transport=flaky)
        outcomes = [sink.emit(alert) for _ in range(9)]
        assert outcomes.count(True) == 6
        assert sink.stats.as_dict() == {"delivered": 6, "failed": 3}
        # Only successful posts count as delivered; the wire log keeps
        # everything the default recorder saw (custom transport: none).
        assert sink.sent == []

    def test_webhook_failure_then_recovery(self, alert):
        state = {"down": True}

        def transport(url, body):
            if state["down"]:
                raise ConnectionError("endpoint down")

        sink = WebhookSink("https://hooks.example/x", transport=transport)
        assert not sink.emit(alert)
        state["down"] = False
        assert sink.emit(alert)
        assert sink.stats.as_dict() == {"delivered": 1, "failed": 1}

    def test_jsonl_opens_lazily(self, alert, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # nothing touched before traffic
        sink.emit(alert)
        sink.close()
        assert path.exists()

    def test_jsonl_unwritable_path_counts_failures(self, alert, tmp_path):
        # The parent directory does not exist: every append fails, the
        # failure is visible in the sink stats, and nothing raises out
        # of emit() into the scan loop.
        sink = JsonlSink(tmp_path / "missing-dir" / "alerts.jsonl")
        assert not sink.emit(alert)
        assert not sink.emit(alert)
        assert sink.stats.as_dict() == {"delivered": 0, "failed": 2}
        sink.close()  # close with no handle is a no-op

    def test_jsonl_unwritable_path_recovers_when_fixed(self, alert, tmp_path):
        target = tmp_path / "late-dir" / "alerts.jsonl"
        sink = JsonlSink(target)
        assert not sink.emit(alert)
        target.parent.mkdir()
        assert sink.emit(alert)
        sink.close()
        assert len(target.read_text().strip().splitlines()) == 1
        assert sink.stats.as_dict() == {"delivered": 1, "failed": 1}

    def test_failing_sink_never_breaks_the_scan_loop(self, service,
                                                     stream_dataset,
                                                     tmp_path):
        from repro.stream.scanner import StreamScanner
        from repro.stream.events import ContractEvent

        broken = JsonlSink(tmp_path / "nope" / "alerts.jsonl")
        healthy = MemorySink()
        scanner = StreamScanner(
            service, max_batch=4, threshold=0.0,
            sinks=[broken, healthy],
        )
        codes = stream_dataset.bytecodes[:12]
        for index, code in enumerate(codes):
            scanner.on_event(ContractEvent(
                address=f"0x{index:040x}", code=code, block_number=index,
                timestamp=1_700_000_000 + index,
                tx_hash=f"0x{index:064x}", sequence=index,
            ))
        scanner.flush()
        # Scanning finished; the broken channel is visible per channel.
        assert scanner.stats.scanned == len(codes)
        assert len(healthy.alerts) == scanner.stats.flagged > 0
        summary = scanner.summary()["sinks"]
        assert summary["jsonl"]["failed"] == scanner.stats.flagged
        assert summary["jsonl"]["delivered"] == 0
        assert summary["memory"]["delivered"] == scanner.stats.flagged
