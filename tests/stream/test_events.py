"""Tests for the event bus, subscriptions and backpressure policies."""

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.rpc import JsonRpcClient, JsonRpcServer
from repro.chain.timeline import month_to_timestamp
from repro.stream.events import (
    TOPIC_BLOCKS,
    TOPIC_CONTRACTS,
    BlockEvent,
    ContractEvent,
    EventBus,
)


def fresh_chain(n=0, per_block=1):
    chain = Blockchain()
    for i in range(n):
        # Same timestamp → same block; step a day per group of per_block.
        timestamp = month_to_timestamp(0, 0.01 * (i // per_block + 1))
        chain.deploy(bytes([0x60, i]), timestamp=timestamp)
    return chain


def make_event(i, code=b"\x60\x01"):
    return ContractEvent(
        address=f"0x{i:040x}",
        code=code,
        block_number=i + 1,
        timestamp=1700000000 + i,
        tx_hash=f"0x{i:x}",
        sequence=i,
    )


class TestSubscription:
    def test_handler_delivery_is_synchronous(self):
        bus = EventBus()
        seen = []
        bus.subscribe(TOPIC_CONTRACTS, handler=seen.append)
        event = make_event(0)
        assert bus.publish(event) == 1
        assert seen == [event]

    def test_buffered_delivery_and_drain(self):
        bus = EventBus()
        sub = bus.subscribe(TOPIC_CONTRACTS)
        events = [make_event(i) for i in range(5)]
        for event in events:
            bus.publish(event)
        assert sub.pending == 5
        assert sub.drain(2) == events[:2]
        assert sub.drain() == events[2:]
        assert sub.pending == 0

    def test_drop_oldest_evicts_head(self):
        bus = EventBus()
        sub = bus.subscribe(TOPIC_CONTRACTS, max_pending=3)
        for i in range(5):
            bus.publish(make_event(i))
        drained = sub.drain()
        assert [e.sequence for e in drained] == [2, 3, 4]
        assert sub.dropped == 2
        assert sub.delivered == 5

    def test_drop_newest_keeps_history(self):
        bus = EventBus()
        sub = bus.subscribe(
            TOPIC_CONTRACTS, max_pending=3, policy="drop_newest"
        )
        for i in range(5):
            bus.publish(make_event(i))
        assert [e.sequence for e in sub.drain()] == [0, 1, 2]
        assert sub.dropped == 2

    def test_sample_policy_is_deterministic(self):
        def run():
            bus = EventBus()
            sub = bus.subscribe(
                TOPIC_CONTRACTS, max_pending=4, policy="sample", seed=3
            )
            for i in range(40):
                bus.publish(make_event(i))
            return [e.sequence for e in sub.drain()], sub.dropped

        first, dropped = run()
        assert run() == (first, dropped)
        assert len(first) == 4
        assert dropped == 36

    def test_bad_policy_and_bound_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.subscribe(TOPIC_CONTRACTS, policy="spill")
        with pytest.raises(ValueError):
            bus.subscribe(TOPIC_CONTRACTS, max_pending=0)

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        sub = bus.subscribe(TOPIC_CONTRACTS)
        bus.unsubscribe(sub)
        assert bus.publish(make_event(0)) == 0
        assert bus.subscriber_count() == 0


def test_contract_event_self_stamps_enqueued_at():
    event = ContractEvent(
        address="0x" + "00" * 20, code=b"\x60", block_number=1,
        timestamp=1_700_000_000, tx_hash="0x0", sequence=0,
    )
    # Omitted enqueued_at stamps construction time, not 0.0 (which would
    # read as hours of latency and keep deadline flushes always overdue).
    import time

    assert 0 < event.enqueued_at <= time.perf_counter()


class TestChainBridge:
    def test_deploys_fan_out_to_both_topics(self):
        bus = EventBus()
        contracts = bus.subscribe(TOPIC_CONTRACTS)
        blocks = bus.subscribe(TOPIC_BLOCKS)
        chain = fresh_chain()
        bus.attach(chain)
        chain.deploy(b"\x60\x01", timestamp=month_to_timestamp(0, 0.1))
        chain.deploy(b"\x60\x02", timestamp=month_to_timestamp(0, 0.1))
        chain.deploy(b"\x60\x03", timestamp=month_to_timestamp(0, 0.5))
        assert contracts.pending == 3
        # Two distinct timestamps → two blocks, each announced once.
        heads = blocks.drain()
        assert len(heads) == 2
        assert all(isinstance(e, BlockEvent) for e in heads)

    def test_contract_event_carries_ledger_metadata(self):
        bus = EventBus()
        sub = bus.subscribe(TOPIC_CONTRACTS)
        chain = fresh_chain()
        bus.attach(chain)
        address = chain.deploy(
            b"\x60\x01\x00", timestamp=month_to_timestamp(1, 0.2)
        )
        (event,) = sub.drain()
        transaction = chain.get_creation_transaction(address)
        assert event.address == address
        assert event.code == chain.get_code(address)
        assert event.block_number == transaction.block_number
        assert event.tx_hash == transaction.tx_hash
        assert event.sequence == 0
        assert event.enqueued_at > 0

    def test_detach_stops_publishing(self):
        bus = EventBus()
        sub = bus.subscribe(TOPIC_CONTRACTS)
        chain = fresh_chain()
        detach = bus.attach(chain)
        chain.deploy(b"\x60\x01", timestamp=month_to_timestamp(0, 0.1))
        detach()
        chain.deploy(b"\x60\x02", timestamp=month_to_timestamp(0, 0.2))
        assert sub.pending == 1


class TestRpcPump:
    def test_pump_rpc_mirrors_in_process_envelope(self):
        chain = fresh_chain()
        client = JsonRpcClient(JsonRpcServer(chain))
        subscription_id = client.subscribe("newContracts")

        bus = EventBus()
        sub = bus.subscribe(TOPIC_CONTRACTS)
        address = chain.deploy(
            b"\x60\x01\x02", timestamp=month_to_timestamp(0, 0.3)
        )
        pumped = bus.pump_rpc(client, subscription_id)
        assert pumped == 1
        (event,) = sub.drain()
        assert event.address == address
        assert event.code == chain.get_code(address)
        assert event.block_number == chain.get_creation_transaction(
            address
        ).block_number
        # Nothing new → nothing pumped.
        assert bus.pump_rpc(client, subscription_id) == 0

    def test_pump_rpc_accumulates_upstream_drops(self):
        chain = fresh_chain()
        server = JsonRpcServer(chain, max_pending_per_filter=1)
        client = JsonRpcClient(server)
        subscription_id = client.subscribe("newContracts")
        bus = EventBus()
        sub = bus.subscribe(TOPIC_CONTRACTS)
        for k in range(3):
            chain.deploy(
                bytes([0x60, k]), timestamp=month_to_timestamp(0, 0.1 * (k + 1))
            )
        assert bus.pump_rpc(client, subscription_id) == 1
        assert bus.dropped_upstream == 2  # filter shed two between polls
        assert sub.pending == 1
