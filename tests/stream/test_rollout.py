"""Stream cold start from artifacts + live version rollout."""

import numpy as np
import pytest

from repro.artifacts import ModelStore
from repro.models.hsc import HSCDetector
from repro.stream.events import ContractEvent
from repro.stream.scanner import StreamScanner
from repro.stream.sinks import MemorySink


def _event(index, code):
    return ContractEvent(
        address=f"0x{index:040x}", code=code, block_number=index,
        timestamp=1_700_000_000 + index, tx_hash=f"0x{index:064x}",
        sequence=index,
    )


@pytest.fixture(scope="module")
def stocked_store(stream_dataset, tmp_path_factory):
    store = ModelStore(tmp_path_factory.mktemp("rollout") / "store")
    a = HSCDetector(variant="Random Forest", seed=0)
    a.set_params(clf__n_estimators=10)
    a.fit(stream_dataset.bytecodes, stream_dataset.labels)
    half = stream_dataset.subset(np.arange(len(stream_dataset) // 2))
    b = HSCDetector(variant="Random Forest", seed=1)
    b.set_params(clf__n_estimators=10)
    b.fit(half.bytecodes, half.labels)
    store.put(a, model_name="Random Forest", tags=("production",))
    store.put(b, model_name="Random Forest", tags=("candidate",))
    return store, a, b


class TestColdStart:
    def test_all_shards_start_from_one_artifact(self, stocked_store,
                                                stream_dataset):
        store, a, __ = stocked_store
        scanner = StreamScanner.from_artifact(
            "production", store=store, shards=3, max_batch=4, threshold=0.0,
        )
        assert len(scanner.workers) == 3
        # Every shard serves the same loaded model under the same
        # digest-derived namespace — no training happened anywhere.
        namespaces = {w._serving[1] for w in scanner.workers}
        assert len(namespaces) == 1
        assert scanner.service.fit_seconds == 0.0
        codes = stream_dataset.bytecodes[:9]
        for index, code in enumerate(codes):
            scanner.on_event(_event(index, code))
        scanner.flush()
        assert scanner.stats.scanned == len(codes)
        assert scanner.stats.dropped == 0
        expected = {code: p for code, p in
                    zip(codes, a.predict_proba(codes)[:, 1])}
        for alert in scanner.alerts:
            index = int(alert.address, 16)
            assert alert.probability == expected[codes[index]]


class TestRollout:
    def test_live_rollout_switches_every_shard(self, stocked_store,
                                               stream_dataset):
        store, a, b = stocked_store
        sink = MemorySink()
        scanner = StreamScanner.from_artifact(
            "production", store=store, shards=2, max_batch=4,
            threshold=0.0, sinks=[sink],
        )
        codes = stream_dataset.bytecodes[:16]
        expected_a = {c: p for c, p in zip(codes, a.predict_proba(codes)[:, 1])}
        expected_b = {c: p for c, p in zip(codes, b.predict_proba(codes)[:, 1])}

        for index in range(8):
            scanner.on_event(_event(index, codes[index]))
        scanner.flush()
        scanner.rollout("candidate", store=store)
        for index in range(8, 16):
            scanner.on_event(_event(index, codes[index]))
        scanner.flush()

        assert scanner.stats.dropped == 0
        assert scanner.stats.scanned == 16
        summary = scanner.summary()
        assert summary["rollouts"] == 1
        assert summary["artifact_digest"] == store.resolve("candidate")
        for alert in scanner.alerts:
            index = int(alert.address, 16)
            want = expected_a if index < 8 else expected_b
            assert alert.probability == want[codes[index]], alert.address
        # After the roll every worker serves the new version under one
        # shared namespace, and the old prediction namespace is gone.
        old_ns = f"pred:artifact:{store.resolve('production')}"
        new_ns = f"pred:artifact:{store.resolve('candidate')}"
        assert {w._serving[1] for w in scanner.workers} == {new_ns}
        assert not any(
            ns == old_ns for (ns, __) in scanner.service.cache._store
        )
        assert any(
            ns == "ids" for (ns, __) in scanner.service.cache._store
        )

    def test_rollout_with_raw_model_shares_namespace(self, stocked_store,
                                                     stream_dataset):
        store, __, b = stocked_store
        scanner = StreamScanner.from_artifact(
            "production", store=store, shards=3,
        )
        scanner.rollout(model=b, model_name="Random Forest")
        namespaces = {w._serving[1] for w in scanner.workers}
        namespaces.add(scanner.service._serving[1])
        assert len(namespaces) == 1  # shards keep sharing predictions

    def test_rollout_argument_validation(self, stocked_store):
        store, a, __ = stocked_store
        scanner = StreamScanner.from_artifact("production", store=store)
        with pytest.raises(ValueError):
            scanner.rollout()
        with pytest.raises(ValueError):
            scanner.rollout("production", store=store, model=a)
