"""Tests for the micro-batching, sharded stream scanner."""

import pytest

from repro.stream.scanner import StreamScanner, shard_of
from repro.stream.sinks import CallbackSink, MemorySink
from tests.stream.test_events import make_event


def events_for(corpus, count=None):
    """Corpus deployments as stream events, oldest first."""
    records = corpus.records if count is None else corpus.records[:count]
    return [
        make_event_from(record, i) for i, record in enumerate(records)
    ]


def make_event_from(record, sequence):
    from repro.stream.events import ContractEvent
    import time

    return ContractEvent(
        address=record.address,
        code=record.bytecode,
        block_number=sequence + 1,
        timestamp=record.timestamp,
        tx_hash=f"0x{sequence:x}",
        sequence=sequence,
        enqueued_at=time.perf_counter(),
    )


class TestValidation:
    def test_bad_config_rejected(self, service):
        with pytest.raises(ValueError):
            StreamScanner(service, shards=0)
        with pytest.raises(ValueError):
            StreamScanner(service, max_batch=0)
        with pytest.raises(ValueError):
            StreamScanner(service, max_batch=16, max_queue=8)
        with pytest.raises(ValueError):
            StreamScanner(service, policy="explode")


class TestMicroBatching:
    def test_flush_on_size(self, service, stream_corpus):
        scanner = StreamScanner(service, max_batch=4, max_queue=16)
        for event in events_for(stream_corpus, 3):
            scanner.on_event(event)
        assert scanner.stats.batches == 0  # below threshold: nothing flushed
        assert scanner.pending == 3
        scanner.on_event(events_for(stream_corpus, 4)[3])
        assert scanner.stats.batches == 1
        assert scanner.pending == 0
        assert scanner.stats.scanned == 4

    def test_flush_on_deadline(self, service, stream_corpus):
        scanner = StreamScanner(
            service, max_batch=64, max_queue=64,
            flush_deadline_seconds=0.5,
        )
        (event,) = events_for(stream_corpus, 1)
        scanner.on_event(event)
        # Not yet due → no flush; past the deadline → flushed.
        assert scanner.tick(now=event.enqueued_at + 0.1) == []
        assert scanner.pending == 1
        scanner.tick(now=event.enqueued_at + 0.6)
        assert scanner.pending == 0
        assert scanner.stats.batches == 1

    def test_drain_flushes_everything_in_micro_batches(
        self, service, stream_corpus
    ):
        scanner = StreamScanner(service, max_batch=8, max_queue=64)
        events = events_for(stream_corpus, 21)
        for event in events[:7]:  # stay under the auto-flush threshold
            scanner.on_event(event)
        scanner.flush()
        assert scanner.stats.scanned == 7
        assert scanner.pending == 0

    def test_dedup_and_empty_code(self, service, stream_corpus):
        scanner = StreamScanner(service, max_batch=4, max_queue=16)
        (event,) = events_for(stream_corpus, 1)
        assert scanner.on_event(event)
        assert not scanner.on_event(event)  # redelivery deduped
        assert scanner.stats.deduped == 1
        empty = make_event(999, code=b"")
        assert not scanner.on_event(empty)
        assert scanner.stats.skipped_empty == 1
        assert scanner.pending == 1


class TestBackpressure:
    def test_block_policy_flushes_inline(self, service, stream_corpus):
        scanner = StreamScanner(
            service, max_batch=4, max_queue=4, policy="block"
        )
        for event in events_for(stream_corpus, 10):
            scanner.on_event(event)
        scanner.flush()
        assert scanner.stats.dropped == 0
        assert scanner.stats.scanned == 10

    def test_drop_policies_shed_counted_load(self, service, stream_corpus):
        events = events_for(stream_corpus, 12)
        for policy in ("drop_oldest", "drop_newest", "sample"):
            scanner = StreamScanner(
                service.sharded(1)[0], max_batch=64, max_queue=4,
                policy=policy, seed=5, auto_flush=False,
            )
            # Consumer-paced mode: the bounded queue must shed load.
            for event in events:
                scanner.on_event(event)
            assert scanner.pending == 4
            assert scanner.stats.dropped == 8
            scanner.flush()
            assert scanner.stats.scanned + scanner.stats.dropped == 12

    def test_shed_events_are_not_seen_poisoned(self, service, stream_corpus):
        """A dropped event must stay re-deliverable (at-least-once)."""
        events = events_for(stream_corpus, 3)
        # Refused newcomer: redelivery is scanned, not deduped.
        scanner = StreamScanner(
            service, max_batch=2, max_queue=2, policy="drop_newest",
            auto_flush=False,
        )
        for event in events:
            scanner.on_event(event)
        assert scanner.stats.dropped == 1
        scanner.flush()
        assert scanner.on_event(events[2])  # redelivery admitted
        scanner.flush()
        assert scanner.stats.scanned == 3
        assert scanner.stats.deduped == 0

        # Evicted resident: redelivery is scanned, not deduped.
        scanner = StreamScanner(
            service.sharded(1)[0], max_batch=2, max_queue=2,
            policy="drop_oldest", auto_flush=False,
        )
        for event in events:
            scanner.on_event(event)  # events[0] evicted
        scanner.flush()
        assert scanner.on_event(events[0])
        scanner.flush()
        assert scanner.stats.scanned == 3
        assert scanner.stats.deduped == 0

    def test_auto_flush_requires_room_for_a_batch(self, service):
        with pytest.raises(ValueError):
            StreamScanner(service, max_batch=16, max_queue=8)
        # Fine without auto_flush: the queue bound is the consumer's pace.
        StreamScanner(service, max_batch=16, max_queue=8, auto_flush=False)


class TestShardingAndParity:
    def test_shard_partition_is_deterministic(self, service, stream_corpus):
        scanner = StreamScanner(service, shards=3, max_batch=8, max_queue=64)
        events = events_for(stream_corpus, 24)
        for event in events:
            scanner.on_event(event)
        scanner.flush()
        by_shard = {s.shard: s.scanned for s in scanner.shard_stats}
        assert sum(by_shard.values()) == 24
        for alert in scanner.alerts:
            assert alert.shard == shard_of(alert.address, 3)

    def test_alerts_match_direct_batch_scan(
        self, fitted_service, stream_corpus
    ):
        """Sharded streaming = one big scan_bytecodes call, bit for bit."""
        events = events_for(stream_corpus, 30)
        direct = fitted_service.sharded(1)[0].scan_bytecodes(
            [e.code for e in events], addresses=[e.address for e in events]
        )
        expected = {
            r.address: r.probability for r in direct if r.probability >= 0.5
        }

        scanner = StreamScanner(
            fitted_service.sharded(1)[0],
            shards=4, max_batch=7, max_queue=64, threshold=0.5,
        )
        for event in events:
            scanner.on_event(event)
        scanner.flush()
        streamed = {a.address: a.probability for a in scanner.alerts}
        assert streamed == expected

    def test_latency_accounting(self, service, stream_corpus):
        scanner = StreamScanner(service, max_batch=8, max_queue=64)
        for event in events_for(stream_corpus, 8):
            scanner.on_event(event)
        scanner.flush()
        stats = scanner.stats
        assert stats.mean_latency_seconds > 0
        percentiles = stats.latency_percentiles()
        assert 0 < percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]


class TestSinks:
    def test_alerts_fan_out_to_sinks(self, service, stream_corpus):
        memory = MemorySink()
        received = []
        scanner = StreamScanner(
            service, max_batch=8, max_queue=64,
            sinks=[memory, CallbackSink(received.append)],
        )
        for event in events_for(stream_corpus, 16):
            scanner.on_event(event)
        scanner.flush()
        assert len(memory.alerts) == scanner.stats.flagged
        assert received == memory.alerts
        assert memory.stats.delivered == scanner.stats.flagged

    def test_failing_sink_does_not_break_scanning(
        self, service, stream_corpus
    ):
        def explode(alert):
            raise RuntimeError("delivery down")

        bad = CallbackSink(explode)
        good = MemorySink()
        scanner = StreamScanner(
            service, max_batch=8, max_queue=64, sinks=[bad, good]
        )
        for event in events_for(stream_corpus, 16):
            scanner.on_event(event)
        scanner.flush()
        assert scanner.stats.flagged > 0
        assert bad.stats.failed == scanner.stats.flagged
        assert bad.stats.delivered == 0
        assert good.stats.delivered == scanner.stats.flagged

    def test_summary_is_json_ready(self, service, stream_corpus):
        import json

        scanner = StreamScanner(
            service, shards=2, max_batch=8, max_queue=64,
            sinks=[MemorySink()],
        )
        for event in events_for(stream_corpus, 10):
            scanner.on_event(event)
        scanner.close()
        summary = scanner.summary()
        json.dumps(summary)
        assert summary["scanned"] == 10
        assert len(summary["shards"]) == 2
        assert summary["sinks"]["memory"]["delivered"] == summary["flagged"]
