"""Tests for the timeline replay driver and poll/stream parity."""

import json

import pytest

from repro.core.live import LiveDetector
from repro.stream.replay import TimelineReplayer
from repro.stream.scanner import StreamScanner
from repro.stream.sinks import MemorySink


class TestReplay:
    def test_replay_chain_scans_every_deployment(
        self, service, stream_corpus
    ):
        scanner = StreamScanner(service, shards=2, max_batch=16, max_queue=64)
        report = TimelineReplayer(scanner).replay_chain(stream_corpus.chain)
        assert report.events == len(stream_corpus.chain)
        assert report.scanned == report.events
        assert report.dropped == 0
        assert report.events_per_second > 0
        latency = report.latency_seconds
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        json.dumps(report.as_dict())

    def test_replay_records_resolves_chain_metadata(
        self, service, stream_corpus
    ):
        scanner = StreamScanner(service, max_batch=16, max_queue=64)
        report = TimelineReplayer(scanner).replay_records(
            stream_corpus.records[:20], chain=stream_corpus.chain
        )
        assert report.scanned == 20
        assert all(alert.block_number > 0 for alert in report.alerts)

    def test_repeat_replay_dedups_and_hits_cache(self, service, stream_corpus):
        scanner = StreamScanner(service, max_batch=16, max_queue=64)
        replayer = TimelineReplayer(scanner)
        first = replayer.replay_chain(stream_corpus.chain)
        again = replayer.replay_chain(stream_corpus.chain)
        assert first.scanned == len(stream_corpus.chain)
        assert again.scanned == 0  # every address deduped on redelivery
        assert again.deduped == again.events

    def test_warm_scanner_serves_alerts_from_cache(
        self, fitted_service, stream_corpus
    ):
        cold = StreamScanner(
            fitted_service.sharded(1)[0], max_batch=16, max_queue=64
        )
        cold_report = TimelineReplayer(cold).replay_chain(stream_corpus.chain)
        warm = StreamScanner(
            fitted_service.sharded(1)[0], max_batch=16, max_queue=64
        )
        warm_report = TimelineReplayer(warm).replay_chain(stream_corpus.chain)
        assert {a.address for a in warm_report.alerts} == {
            a.address for a in cold_report.alerts
        }
        assert all(alert.from_cache for alert in warm_report.alerts)

    def test_rate_paces_the_feed(self, service, stream_corpus):
        from tests.stream.test_scanner import events_for

        scanner = StreamScanner(service, max_batch=4, max_queue=16)
        events = events_for(stream_corpus, 10)
        report = TimelineReplayer(scanner, rate=500.0).replay_events(events)
        # 10 events at 500/s: the feed alone spans ≥ 9/500 s.
        assert report.duration_seconds >= 9 / 500.0
        assert report.scanned == 10

    def test_bad_config_rejected(self, service):
        scanner = StreamScanner(service)
        with pytest.raises(ValueError):
            TimelineReplayer(scanner, rate=0)
        with pytest.raises(ValueError):
            TimelineReplayer(scanner, tick_every=0)


class TestPollStreamParity:
    def test_live_detector_matches_stream_alerts(
        self, fitted_service, stream_corpus
    ):
        """The poll adapter and a direct replay flag the same addresses
        with the same probabilities."""
        detector = LiveDetector(
            stream_corpus.chain, fitted_service.model, threshold=0.5
        )
        poll_alerts = detector.poll()

        scanner = StreamScanner(
            fitted_service.sharded(1)[0],
            shards=3, max_batch=8, max_queue=64, threshold=0.5,
        )
        report = TimelineReplayer(scanner).replay_chain(stream_corpus.chain)
        assert {(a.address, a.probability) for a in poll_alerts} == {
            (a.address, a.probability) for a in report.alerts
        }
        assert detector.stats.scanned == report.scanned

    def test_mark_existing_returns_total_each_call(
        self, fitted_service, stream_corpus
    ):
        detector = LiveDetector(stream_corpus.chain, fitted_service.model)
        total = len(stream_corpus.chain)
        assert detector.mark_existing_as_seen() == total  # seed semantics
        assert detector.mark_existing_as_seen() == total

    def test_follow_mode_delivers_at_flush_without_poll(
        self, fitted_service, stream_corpus
    ):
        from repro.chain.blockchain import Blockchain

        chain = Blockchain()
        received = []
        detector = LiveDetector(
            chain, fitted_service.model, threshold=0.5,
            on_alert=received.append, follow=True, max_batch=2,
        )
        for record in stream_corpus.phishing_records()[:4]:
            chain.deploy(record.bytecode, timestamp=record.timestamp)
        # Two micro-batches auto-flushed during the deploys themselves.
        assert detector.stats.scanned == 4
        assert len(received) > 0
        assert received == detector.alerts
        # poll() returns everything streamed in since the last poll…
        assert detector.poll() == detector.alerts
        # …exactly once.
        assert detector.poll() == []
        detector.close()

    def test_follow_mode_defers_on_alert_errors_to_poll(
        self, fitted_service, stream_corpus
    ):
        """A raising on_alert must not unwind chain.deploy(); it surfaces
        from the owner's next poll instead."""
        from repro.chain.blockchain import Blockchain

        calls = []

        def explode(alert):
            calls.append(alert)
            raise RuntimeError("pager down")

        chain = Blockchain()
        detector = LiveDetector(
            chain, fitted_service.model, threshold=0.5,
            on_alert=explode, follow=True, max_batch=1,
        )
        record = stream_corpus.phishing_records()[0]
        address = chain.deploy(record.bytecode, timestamp=record.timestamp)
        assert calls, "expected the phishing deploy to alert"  # deploy OK
        with pytest.raises(RuntimeError, match="pager down"):
            detector.poll()
        # The alert itself was not lost: the next poll returns it.
        assert [a.address for a in detector.poll()] == [address]
        detector.close()

    def test_wrapping_a_borrowed_model_keeps_its_cache_wiring(
        self, stream_corpus
    ):
        """LiveDetector must not silently re-point a borrowed model's
        extractors at its private cache."""

        class Recording:
            def __init__(self):
                self.attached = []

            def use_feature_cache(self, cache):
                self.attached.append(cache)

        model = Recording()
        detector = LiveDetector(stream_corpus.chain, model, threshold=0.5)
        assert model.attached == []
        # The scanner's shard views inherit the hands-off behavior.
        assert detector.scanner.workers[0]._attach_cache is False

    def test_alert_block_numbers_use_creation_index(
        self, fitted_service, stream_corpus
    ):
        detector = LiveDetector(
            stream_corpus.chain, fitted_service.model, threshold=0.5
        )
        for alert in detector.poll():
            transaction = stream_corpus.chain.get_creation_transaction(
                alert.address
            )
            assert alert.block_number == transaction.block_number
