"""Shared fixtures for core-framework tests."""

import pytest

from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset


@pytest.fixture(scope="session")
def small_corpus():
    return build_corpus(
        CorpusConfig(n_phishing=60, n_benign=60, seed=21, clone_factor=4.0)
    )


@pytest.fixture(scope="session")
def small_dataset(small_corpus):
    return Dataset.from_corpus(small_corpus, seed=0)


def fast_hsc_factory(name, seed=0):
    """Model factory restricted to quick HSC variants."""
    from repro.models.hsc import HSCDetector

    detector = HSCDetector(variant=name, seed=seed)
    if name in ("Random Forest", "XGBoost", "LightGBM", "CatBoost"):
        detector.set_params(clf__n_estimators=20)
    return detector
