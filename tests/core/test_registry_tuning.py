"""Tests for the model registry and the hyperparameter search."""

import numpy as np
import pytest

from repro.core.registry import (
    MODEL_CATEGORIES,
    MODEL_NAMES,
    category_of,
    create_model,
)
from repro.core.tuning import (
    GridSearch,
    RandomSearch,
    SearchSpace,
    Trial,
    cross_validated_objective,
)
from repro.models.detector import PhishingDetector


class TestRegistry:
    def test_sixteen_models(self):
        assert len(MODEL_NAMES) == 16
        assert len(MODEL_CATEGORIES) == 16

    def test_category_split_matches_paper(self):
        counts = {}
        for name in MODEL_NAMES:
            counts[category_of(name)] = counts.get(category_of(name), 0) + 1
        assert counts == {"HSC": 7, "VM": 3, "LM": 5, "VDM": 1}

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_every_model_instantiates(self, name):
        model = create_model(name, seed=1)
        assert isinstance(model, PhishingDetector)
        assert model.name == name

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            create_model("BERT")

    def test_env_knobs_respected(self, monkeypatch):
        monkeypatch.setenv("PHOOK_IMAGE_SIZE", "8")
        monkeypatch.setenv("PHOOK_EPOCHS", "2")
        monkeypatch.setenv("PHOOK_SEQ_LEN", "32")
        vit = create_model("ViT+R2D2")
        assert vit.image_size == 8
        assert vit.epochs == 2
        gpt = create_model("GPT-2α")
        assert gpt.max_length == 32


class TestSearchSpaces:
    def test_trial_accessors(self):
        trial = Trial({"kind": "a", "lr": 0.1, "depth": 3})
        assert trial.suggest_categorical("kind", ("a", "b")) == "a"
        assert trial.suggest_float("lr", 0.0, 1.0) == 0.1
        assert trial.suggest_int("depth", 1, 5) == 3
        with pytest.raises(ValueError):
            trial.suggest_categorical("kind", ("x", "y"))

    def test_grid_enumerates_categorical_x_integer(self):
        space = SearchSpace(
            categorical={"kind": ("a", "b")}, integer={"k": (1, 3)}
        )
        search = GridSearch(space, resolution=3)
        seen = []

        def objective(trial):
            seen.append((trial.params["kind"], trial.params["k"]))
            return 1.0 if trial.params == {"kind": "b", "k": 2} else 0.0

        result = search.optimize(objective)
        assert len(seen) == 6
        assert result.best_params == {"kind": "b", "k": 2}
        assert result.best_value == 1.0

    def test_grid_log_uniform_axis(self):
        space = SearchSpace(log_uniform={"C": (0.01, 100.0)})
        search = GridSearch(space, resolution=3)
        result = search.optimize(lambda t: -abs(np.log10(t.params["C"])))
        assert result.best_params["C"] == pytest.approx(1.0, rel=1e-6)

    def test_random_search_finds_good_region(self):
        space = SearchSpace(uniform={"x": (-1.0, 1.0)})
        search = RandomSearch(space, n_trials=60, seed=0)
        result = search.optimize(lambda t: -(t.params["x"] - 0.3) ** 2)
        assert abs(result.best_params["x"] - 0.3) < 0.15

    def test_random_search_deterministic(self):
        space = SearchSpace(uniform={"x": (0.0, 1.0)})
        a = RandomSearch(space, n_trials=5, seed=3).optimize(
            lambda t: t.params["x"]
        )
        b = RandomSearch(space, n_trials=5, seed=3).optimize(
            lambda t: t.params["x"]
        )
        assert a.best_params == b.best_params

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            GridSearch(SearchSpace()).optimize(lambda t: 0.0)
        with pytest.raises(ValueError):
            RandomSearch(SearchSpace()).optimize(lambda t: 0.0)


class TestCrossValidatedObjective:
    def test_objective_evaluates_model(self, small_corpus):
        from repro.datagen.dataset import Dataset
        from repro.models.hsc import HSCDetector

        dataset = Dataset.from_corpus(small_corpus, seed=0)

        def build(trial):
            detector = HSCDetector(variant="Random Forest", seed=0)
            detector.set_params(
                clf__n_estimators=trial.suggest_int("trees", 5, 40)
            )
            return detector

        objective = cross_validated_objective(dataset, build, n_folds=3)
        score = objective(Trial({"trees": 20}))
        assert 0.6 < score <= 1.0
