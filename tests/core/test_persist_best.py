"""MEM and tuning persist their best fitted candidate to a ModelStore."""

import numpy as np
import pytest

from repro.artifacts import ModelStore
from repro.core.mem import ModelEvaluationModule
from repro.core.tuning import (
    GridSearch,
    SearchSpace,
    cross_validated_objective,
    fit_and_persist_best,
)

from tests.core.conftest import fast_hsc_factory


class TestMemPersistence:
    def test_best_trial_lands_in_store(self, small_dataset, tmp_path):
        store = ModelStore(tmp_path / "store")
        mem = ModelEvaluationModule(
            n_folds=2, n_runs=1, seed=0, store=store
        )
        result = mem.evaluate(
            small_dataset, ["Random Forest", "k-NN"],
            model_factory=fast_hsc_factory,
        )
        assert mem.last_persisted is not None
        assert store.resolve("best") == mem.last_persisted
        manifest = store.manifest("best")
        best_accuracy = max(
            trial.metrics.accuracy for trial in result.trials
        )
        assert manifest["metrics"]["accuracy"] == pytest.approx(best_accuracy)
        assert manifest["model_name"] in ("Random Forest", "k-NN")
        # The persisted candidate is servable immediately.
        model, __ = store.load("best")
        probabilities = model.predict_proba(small_dataset.bytecodes[:4])
        assert probabilities.shape == (4, 2)

    def test_no_store_keeps_old_behavior(self, small_dataset):
        mem = ModelEvaluationModule(n_folds=2, n_runs=1, seed=0)
        mem.evaluate(
            small_dataset, ["k-NN"], model_factory=fast_hsc_factory
        )
        assert mem.last_persisted is None

    def test_single_split_persists_too(self, small_dataset, tmp_path):
        store = ModelStore(tmp_path / "store")
        mem = ModelEvaluationModule(
            n_folds=2, n_runs=1, seed=0, store=store, persist_tag="scal"
        )
        train, test = small_dataset.train_test_split(0.3, seed=0)
        mem.evaluate_single_split(
            train, test, ["k-NN"], model_factory=fast_hsc_factory
        )
        manifest = store.manifest("scal")
        assert manifest["dataset_fingerprint"] == train.fingerprint()


class TestTuningPersistence:
    def test_fit_and_persist_best(self, small_dataset, tmp_path):
        store = ModelStore(tmp_path / "store")

        def build(trial):
            detector = fast_hsc_factory("Random Forest")
            detector.set_params(
                clf__n_estimators=trial.suggest_int("n_estimators", 5, 15)
            )
            return detector

        objective = cross_validated_objective(
            small_dataset, build, n_folds=2, seed=0
        )
        space = SearchSpace(integer={"n_estimators": (5, 15)})
        result = GridSearch(space, resolution=2).optimize(objective)

        model, version = fit_and_persist_best(
            small_dataset, build, result, store,
            model_name="Random Forest", tags=("tuned",),
        )
        assert store.resolve("tuned") == version
        manifest = store.manifest("tuned")
        assert manifest["metrics"]["cv_accuracy"] == pytest.approx(
            result.best_value
        )
        assert manifest["extra"]["best_params"] == {
            "n_estimators": result.best_params["n_estimators"]
        }
        loaded, __ = store.load("tuned")
        assert np.array_equal(
            loaded.predict_proba(small_dataset.bytecodes[:6]),
            model.predict_proba(small_dataset.bytecodes[:6]),
        )
