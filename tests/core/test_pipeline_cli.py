"""Tests for the end-to-end pipeline and the CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.pipeline import PhishingHook, PipelineConfig

from tests.core.conftest import fast_hsc_factory


@pytest.fixture(scope="module")
def hook(small_corpus):
    config = PipelineConfig(
        model_names=("Random Forest", "k-NN", "Logistic Regression"),
        n_folds=3,
        n_runs=1,
        seed=0,
        run_post_hoc=True,
    )
    hook = PhishingHook(small_corpus, config)
    # Swap in the fast factory to keep the test quick.
    hook.mem.evaluate_orig = hook.mem.evaluate
    return hook


class TestPipeline:
    def test_gather_and_dataset(self, hook, small_corpus):
        contracts = hook.gather()
        assert len(contracts) == len(small_corpus.records)
        dataset = hook.build_dataset(contracts)
        benign, phishing = dataset.class_counts
        assert benign == phishing  # balanced
        # Dedup leaves exactly the unique records.
        assert len(dataset) <= len(small_corpus.unique_records())

    def test_full_run(self, small_corpus):
        config = PipelineConfig(
            model_names=("Random Forest", "k-NN", "Logistic Regression"),
            n_folds=3,
            run_post_hoc=True,
        )
        hook = PhishingHook(small_corpus, config)
        outcome = hook.run()
        assert len(outcome.evaluation.trials) == 9
        assert outcome.post_hoc is not None
        assert outcome.evaluation.mean_metrics("Random Forest").accuracy > 0.6
        assert set(outcome.post_hoc.kruskal) == {
            "accuracy", "f1", "precision", "recall"
        }

    def test_classify_address_phishing(self, small_corpus):
        hook = PhishingHook(small_corpus, PipelineConfig(run_post_hoc=False))
        dataset = hook.build_dataset(hook.gather())
        target = small_corpus.phishing_records()[0].address
        flagged, probability = hook.classify_address(
            target, "Random Forest", train_dataset=dataset
        )
        assert 0.0 <= probability <= 1.0

    def test_classify_unknown_address_raises(self, small_corpus):
        hook = PhishingHook(small_corpus, PipelineConfig(run_post_hoc=False))
        dataset = hook.build_dataset(hook.gather())
        with pytest.raises(ValueError):
            hook.classify_address("0x" + "00" * 20, train_dataset=dataset)


class TestCLI:
    def test_disasm(self, capsys):
        assert main(["disasm", "0x6080604052"]) == 0
        out = capsys.readouterr().out
        assert "PUSH1" in out and "MSTORE" in out

    def test_dataset(self, capsys):
        assert main(["dataset", "--contracts", "40", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "2023-10" in out and "total" in out

    def test_demo(self, capsys):
        code = main([
            "demo", "--contracts", "60", "--folds", "2",
            "--models", "k-NN,Logistic Regression",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "k-NN" in out and "Accuracy" in out

    def test_scan_random_phishing(self, capsys):
        code = main(["scan", "random-phishing", "--contracts", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "p=" in out

    def test_attack(self, capsys):
        code = main([
            "attack", "--contracts", "60", "--strengths", "0,1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "benign-mimicry" in out
        assert "recall lost" in out

    def test_calibrate(self, capsys):
        code = main([
            "calibrate", "--contracts", "60", "--model", "Logistic Regression",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "temperature" in out
        assert "ECE" in out
