"""Tests for the end-to-end pipeline and the CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.pipeline import PhishingHook, PipelineConfig

from tests.core.conftest import fast_hsc_factory


@pytest.fixture(scope="module")
def hook(small_corpus):
    config = PipelineConfig(
        model_names=("Random Forest", "k-NN", "Logistic Regression"),
        n_folds=3,
        n_runs=1,
        seed=0,
        run_post_hoc=True,
    )
    hook = PhishingHook(small_corpus, config)
    # Swap in the fast factory to keep the test quick.
    hook.mem.evaluate_orig = hook.mem.evaluate
    return hook


class TestPipeline:
    def test_gather_and_dataset(self, hook, small_corpus):
        contracts = hook.gather()
        assert len(contracts) == len(small_corpus.records)
        dataset = hook.build_dataset(contracts)
        benign, phishing = dataset.class_counts
        assert benign == phishing  # balanced
        # Dedup leaves exactly the unique records.
        assert len(dataset) <= len(small_corpus.unique_records())

    def test_full_run(self, small_corpus):
        config = PipelineConfig(
            model_names=("Random Forest", "k-NN", "Logistic Regression"),
            n_folds=3,
            run_post_hoc=True,
        )
        hook = PhishingHook(small_corpus, config)
        outcome = hook.run()
        assert len(outcome.evaluation.trials) == 9
        assert outcome.post_hoc is not None
        assert outcome.evaluation.mean_metrics("Random Forest").accuracy > 0.6
        assert set(outcome.post_hoc.kruskal) == {
            "accuracy", "f1", "precision", "recall"
        }

    def test_classify_address_phishing(self, small_corpus):
        hook = PhishingHook(small_corpus, PipelineConfig(run_post_hoc=False))
        dataset = hook.build_dataset(hook.gather())
        target = small_corpus.phishing_records()[0].address
        flagged, probability = hook.classify_address(
            target, "Random Forest", train_dataset=dataset
        )
        assert 0.0 <= probability <= 1.0

    def test_classify_unknown_address_raises(self, small_corpus):
        hook = PhishingHook(small_corpus, PipelineConfig(run_post_hoc=False))
        dataset = hook.build_dataset(hook.gather())
        with pytest.raises(ValueError):
            hook.classify_address("0x" + "00" * 20, train_dataset=dataset)

    def test_classify_address_reuses_fitted_model(self, small_corpus,
                                                  monkeypatch):
        import repro.core.pipeline as pipeline_module

        hook = PhishingHook(small_corpus, PipelineConfig(run_post_hoc=False))
        dataset = hook.build_dataset(hook.gather())
        target = small_corpus.phishing_records()[0].address

        created = []
        real_create = pipeline_module.create_model

        def counting_create(name, seed=0):
            created.append(name)
            return real_create(name, seed=seed)

        monkeypatch.setattr(pipeline_module, "create_model", counting_create)
        first = hook.classify_address(
            target, "Random Forest", train_dataset=dataset
        )
        second = hook.classify_address(
            target, "Random Forest", train_dataset=dataset
        )
        assert created == ["Random Forest"]  # trained once, reused after
        assert first == second
        # A different model name trains its own entry.
        hook.classify_address(target, "k-NN", train_dataset=dataset)
        assert created == ["Random Forest", "k-NN"]
        # reuse_model=False forces the seed retrain-per-call behavior.
        hook.classify_address(
            target, "Random Forest", train_dataset=dataset,
            reuse_model=False,
        )
        assert created == ["Random Forest", "k-NN", "Random Forest"]

    def test_classify_address_accepts_prefitted_model(self, small_corpus):
        hook = PhishingHook(small_corpus, PipelineConfig(run_post_hoc=False))
        dataset = hook.build_dataset(hook.gather())
        model = hook.fitted_model("Random Forest", dataset)
        target = small_corpus.phishing_records()[0].address
        flagged, probability = hook.classify_address(target, model=model)
        assert hook.classify_address(
            target, "Random Forest", train_dataset=dataset
        ) == (flagged, probability)

    def test_scan_service_matches_classify_address(self, small_corpus):
        hook = PhishingHook(small_corpus, PipelineConfig(run_post_hoc=False))
        dataset = hook.build_dataset(hook.gather())
        addresses = [r.address for r in small_corpus.records[:8]]
        service = hook.scan_service("Random Forest", train_dataset=dataset)
        results = service.scan_many(addresses)
        for address, result in zip(addresses, results):
            flagged, probability = hook.classify_address(
                address, "Random Forest", train_dataset=dataset
            )
            assert result.probability == probability
            assert result.is_phishing == flagged


class TestCLI:
    def test_disasm(self, capsys):
        assert main(["disasm", "0x6080604052"]) == 0
        out = capsys.readouterr().out
        assert "PUSH1" in out and "MSTORE" in out

    def test_dataset(self, capsys):
        assert main(["dataset", "--contracts", "40", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "2023-10" in out and "total" in out

    def test_demo(self, capsys):
        code = main([
            "demo", "--contracts", "60", "--folds", "2",
            "--models", "k-NN,Logistic Regression",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "k-NN" in out and "Accuracy" in out

    def test_scan_random_phishing(self, capsys):
        # Refitting in-process is now an explicit opt-in; the default
        # path serves from a persisted artifact (tested below).
        code = main(["scan", "random-phishing", "--contracts", "60",
                     "--train-on-the-fly"])
        assert code == 0
        out = capsys.readouterr().out
        assert "p=" in out

    def test_scan_without_model_refuses(self, capsys):
        code = main(["scan", "random-phishing", "--contracts", "60"])
        assert code == 2
        err = capsys.readouterr().err
        assert "phishinghook train" in err
        assert "--train-on-the-fly" in err

    def test_scan_batch(self, capsys):
        code = main([
            "scan", "--batch", "random-phishing", "random-phishing",
            "--contracts", "60", "--train-on-the-fly",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("via=") == 2
        assert "cache hit rate" in out

    def test_train_then_scan_artifact_path(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        code = main([
            "train", "--model", "Logistic Regression", "--contracts", "60",
            "--store", store, "--tag", "production",
        ])
        assert code == 0
        assert "artifact" in capsys.readouterr().out

        code = main([
            "scan", "--batch", "random-phishing", "--contracts", "60",
            "--store", store, "--model-tag", "production",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "model=Logistic Regression" in out

        code = main(["models", "--store", store, "list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "production" in out and "Logistic Regression" in out

    def test_monitor_from_artifact(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main([
            "train", "--model", "Logistic Regression", "--contracts", "60",
            "--store", store,
        ]) == 0
        capsys.readouterr()
        code = main([
            "monitor", "--contracts", "60", "--store", store,
            "--model-tag", "latest", "--shards", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed" in out and "latency" in out

    def test_monitor_without_model_refuses(self, capsys):
        code = main(["monitor", "--contracts", "60"])
        assert code == 2
        assert "phishinghook train" in capsys.readouterr().err

    def test_train_out_rejects_tag(self, capsys, tmp_path):
        # --tag would be silently lost with --out; refuse instead.
        code = main([
            "train", "--model", "k-NN", "--contracts", "60",
            "--out", str(tmp_path / "m.npz"), "--tag", "production",
        ])
        assert code == 2
        assert "--out" in capsys.readouterr().err

    def test_attack(self, capsys):
        code = main([
            "attack", "--contracts", "60", "--strengths", "0,1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "benign-mimicry" in out
        assert "recall lost" in out

    def test_calibrate(self, capsys):
        code = main([
            "calibrate", "--contracts", "60", "--model", "Logistic Regression",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "temperature" in out
        assert "ECE" in out
