"""Tests for the live-detection monitor."""

import numpy as np
import pytest

from repro.chain.timeline import month_to_timestamp
from repro.core.live import LiveDetector
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.datagen.families import FAMILIES, generate_contract
from repro.datagen.solidity_like import Environment
from repro.models.hsc import HSCDetector


@pytest.fixture(scope="module")
def live_corpus():
    """A private corpus: live tests deploy fresh contracts onto its chain,
    which must not pollute the session-scoped fixture."""
    return build_corpus(
        CorpusConfig(n_phishing=60, n_benign=60, seed=21, clone_factor=4.0)
    )


@pytest.fixture(scope="module")
def trained_model(live_corpus):
    dataset = Dataset.from_corpus(live_corpus, seed=0)
    detector = HSCDetector(variant="Random Forest", seed=0)
    detector.set_params(clf__n_estimators=40)
    detector.fit(dataset.bytecodes, dataset.labels)
    return detector


def deploy_fresh(chain, label: int, seed: int, month: int = 8) -> str:
    family = "approval_drainer" if label else "erc20_token"
    timestamp = month_to_timestamp(month, 0.5)
    env = Environment(
        rng=np.random.default_rng(seed),
        attacker=0xFEFE << 96,
        tokens=(0xABAB << 96,),
        deploy_timestamp=timestamp,
    )
    bytecode, __ = generate_contract(FAMILIES[family], env, month)
    return chain.deploy(bytecode, timestamp=timestamp)


class TestLiveDetector:
    def test_threshold_validation(self, live_corpus, trained_model):
        with pytest.raises(ValueError):
            LiveDetector(live_corpus.chain, trained_model, threshold=0.0)

    def test_existing_contracts_skipped(self, live_corpus, trained_model):
        monitor = LiveDetector(live_corpus.chain, trained_model)
        seen = monitor.mark_existing_as_seen()
        assert seen == len(live_corpus.chain)
        assert monitor.poll() == []
        assert monitor.stats.scanned == 0

    def test_new_phishing_deployment_alerts(self, live_corpus, trained_model):
        monitor = LiveDetector(
            live_corpus.chain, trained_model, threshold=0.5
        )
        monitor.mark_existing_as_seen()
        address = deploy_fresh(live_corpus.chain, label=1, seed=123)
        alerts = monitor.poll()
        assert monitor.stats.scanned == 1
        flagged = {alert.address for alert in alerts}
        assert address in flagged
        alert = alerts[0]
        assert alert.probability >= 0.5
        assert alert.latency_seconds < 2.0
        assert alert.block_number > 0

    def test_benign_deployment_usually_passes(self, live_corpus, trained_model):
        monitor = LiveDetector(
            live_corpus.chain, trained_model, threshold=0.9
        )
        monitor.mark_existing_as_seen()
        deploy_fresh(live_corpus.chain, label=0, seed=321)
        alerts = monitor.poll()
        assert monitor.stats.scanned == 1
        assert len(alerts) <= 1  # high threshold: benign rarely crosses

    def test_callback_invoked(self, live_corpus, trained_model):
        received = []
        monitor = LiveDetector(
            live_corpus.chain, trained_model, threshold=0.4,
            on_alert=received.append,
        )
        monitor.mark_existing_as_seen()
        deploy_fresh(live_corpus.chain, label=1, seed=55)
        alerts = monitor.poll()
        assert received == alerts

    def test_poll_is_incremental(self, live_corpus, trained_model):
        monitor = LiveDetector(live_corpus.chain, trained_model)
        monitor.mark_existing_as_seen()
        deploy_fresh(live_corpus.chain, label=1, seed=77)
        first = monitor.poll()
        second = monitor.poll()
        assert second == []  # nothing new
        assert monitor.stats.scanned == 1
        assert len(monitor.alerts) == len(first)

    def test_precision_recall_accounting(self, trained_model):
        corpus = build_corpus(
            CorpusConfig(n_phishing=10, n_benign=10, seed=5, clone_factor=2.0)
        )
        monitor = LiveDetector(corpus.chain, trained_model, threshold=0.5)
        monitor.poll()  # scan everything
        truth = set(corpus.explorer.flagged_addresses())
        precision = monitor.precision_against(truth)
        recall = monitor.recall_against(truth)
        assert 0.0 <= precision <= 1.0
        assert 0.0 <= recall <= 1.0
        assert recall > 0.3  # the detector catches a useful share

    def test_mean_latency(self, live_corpus, trained_model):
        monitor = LiveDetector(live_corpus.chain, trained_model)
        monitor.poll()
        assert monitor.stats.mean_latency_seconds > 0
