"""Tests for the evaluation and post-hoc modules."""

import numpy as np
import pytest

from repro.core.mem import EvaluationResult, ModelEvaluationModule, TrialRecord
from repro.core.pam import METRICS, PostHocAnalysisModule
from repro.ml.metrics import Metrics

from tests.core.conftest import fast_hsc_factory


@pytest.fixture(scope="module")
def evaluation(small_dataset):
    mem = ModelEvaluationModule(n_folds=3, n_runs=2, seed=0)
    return mem.evaluate(
        small_dataset,
        ["Random Forest", "k-NN", "Logistic Regression"],
        model_factory=fast_hsc_factory,
    )


# A fixture alias usable from this module's signature-based fixtures.
@pytest.fixture(scope="module")
def small_dataset(small_corpus):
    from repro.datagen.dataset import Dataset

    return Dataset.from_corpus(small_corpus, seed=0)


class TestMEM:
    def test_trial_count(self, evaluation):
        # 3 models × 3 folds × 2 runs
        assert len(evaluation.trials) == 18
        assert len(evaluation.for_model("Random Forest")) == 6

    def test_models_listed_in_order(self, evaluation):
        assert evaluation.models() == [
            "Random Forest", "k-NN", "Logistic Regression"
        ]

    def test_metrics_in_unit_interval(self, evaluation):
        for trial in evaluation.trials:
            for value in trial.metrics.as_dict().values():
                assert 0.0 <= value <= 1.0

    def test_models_learn(self, evaluation):
        for model in evaluation.models():
            assert evaluation.mean_metrics(model).accuracy > 0.6

    def test_times_recorded(self, evaluation):
        train_time, inference_time = evaluation.mean_times("Random Forest")
        assert train_time > 0
        assert inference_time > 0

    def test_metric_values_shape(self, evaluation):
        values = evaluation.metric_values("k-NN", "f1")
        assert values.shape == (6,)

    def test_category_mean(self, evaluation):
        assert 0.5 < evaluation.category_mean("HSC", "accuracy") <= 1.0
        with pytest.raises(KeyError):
            evaluation.category_mean("VM", "accuracy")

    def test_table_rendering(self, evaluation):
        table = evaluation.table()
        assert "Random Forest" in table
        assert "Accuracy (%)" in table

    def test_unknown_model_mean_raises(self, evaluation):
        with pytest.raises(KeyError):
            evaluation.mean_metrics("SVM")

    def test_unknown_model_mean_times_raises(self, evaluation):
        # Seed behavior was a NaN pair plus a numpy RuntimeWarning; it must
        # fail like mean_metrics instead.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(KeyError):
                evaluation.mean_times("SVM")

    def test_campaign_with_cache_decodes_unique_bytecodes_once(
        self, small_dataset
    ):
        from repro.serve.cache import FeatureCache

        cache = FeatureCache()
        mem = ModelEvaluationModule(n_folds=2, n_runs=1, seed=0, cache=cache)
        result = mem.evaluate(
            small_dataset,
            ["Random Forest", "k-NN"],
            model_factory=fast_hsc_factory,
        )
        assert len(result.trials) == 4
        hits, misses = cache.stats.by_namespace["ids"]
        unique = len(set(small_dataset.bytecodes))
        assert misses <= unique
        assert hits > 0

    def test_cached_campaign_metrics_match_uncached(self, small_dataset):
        from repro.serve.cache import FeatureCache

        plain = ModelEvaluationModule(n_folds=2, n_runs=1, seed=0).evaluate(
            small_dataset, ["Random Forest"], model_factory=fast_hsc_factory
        )
        cached = ModelEvaluationModule(
            n_folds=2, n_runs=1, seed=0, cache=FeatureCache()
        ).evaluate(
            small_dataset, ["Random Forest"], model_factory=fast_hsc_factory
        )
        assert (plain.mean_metrics("Random Forest")
                == cached.mean_metrics("Random Forest"))

    def test_single_split_evaluation(self, small_dataset):
        train, test = small_dataset.train_test_split(0.3, seed=1)
        mem = ModelEvaluationModule(n_folds=2, n_runs=1)
        result = mem.evaluate_single_split(
            train, test, ["Random Forest"], model_factory=fast_hsc_factory
        )
        assert len(result.trials) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelEvaluationModule(n_folds=1)
        with pytest.raises(ValueError):
            ModelEvaluationModule(n_runs=0)


def _synthetic_evaluation(means: dict[str, float], spread=0.01, trials=30):
    """Fabricate an EvaluationResult with controlled per-model metrics."""
    rng = np.random.default_rng(0)
    result = EvaluationResult()
    for model, mean in means.items():
        for index in range(trials):
            value = float(np.clip(rng.normal(mean, spread), 0, 1))
            result.trials.append(
                TrialRecord(
                    model=model,
                    run=index // 10,
                    fold=index % 10,
                    metrics=Metrics(value, value, value, value),
                    train_seconds=0.1,
                    inference_seconds=0.01,
                )
            )
    return result


class TestPAM:
    def test_rejects_with_separated_models(self):
        evaluation = _synthetic_evaluation(
            {"Random Forest": 0.93, "k-NN": 0.90, "ViT+R2D2": 0.80}
        )
        report = PostHocAnalysisModule(exclude=()).analyze(evaluation)
        for metric in METRICS:
            assert report.kruskal[metric].p_value < 0.001
            assert report.kruskal_adjusted_p[metric] < 0.01
        assert report.significant_pair_fraction("accuracy") > 0.5

    def test_cross_category_pairs_more_significant(self):
        evaluation = _synthetic_evaluation(
            {
                "Random Forest": 0.93, "XGBoost": 0.93,  # same category, close
                "ViT+R2D2": 0.80, "ViT+Freq": 0.80,      # same category, close
            }
        )
        report = PostHocAnalysisModule(exclude=()).analyze(evaluation)
        same = report.pair_fraction_by_category("accuracy", same_category=True)
        cross = report.pair_fraction_by_category("accuracy", same_category=False)
        assert cross > same

    def test_exclusions_applied(self):
        evaluation = _synthetic_evaluation(
            {"Random Forest": 0.93, "k-NN": 0.9, "ESCORT": 0.55}
        )
        report = PostHocAnalysisModule().analyze(evaluation)
        models_in_dunn = {
            name
            for result in report.dunn["accuracy"]
            for name in (result.group_a, result.group_b)
        }
        assert "ESCORT" not in models_in_dunn

    def test_normality_bookkeeping(self):
        evaluation = _synthetic_evaluation({"Random Forest": 0.9, "k-NN": 0.8})
        report = PostHocAnalysisModule(exclude=()).analyze(evaluation)
        assert len(report.normality) == 2 * len(METRICS)
        assert report.normality_violations >= 0

    def test_table3_rendering(self):
        evaluation = _synthetic_evaluation({"Random Forest": 0.9, "k-NN": 0.8})
        report = PostHocAnalysisModule(exclude=()).analyze(evaluation)
        table = report.table3()
        assert "accuracy" in table and "p_adj" in table

    def test_needs_two_models(self):
        evaluation = _synthetic_evaluation({"Random Forest": 0.9})
        with pytest.raises(ValueError):
            PostHocAnalysisModule(exclude=()).analyze(evaluation)

    def test_bootstrap_intervals_attached(self):
        evaluation = _synthetic_evaluation({"Random Forest": 0.9, "k-NN": 0.8})
        report = PostHocAnalysisModule(exclude=()).analyze(evaluation)
        assert len(report.intervals) == 2 * len(METRICS)
        interval = report.intervals[("Random Forest", "accuracy")]
        # The interval brackets the configured mean tightly (spread 0.01).
        assert 0.9 in interval
        assert interval.width < 0.05

    def test_interval_separation_mirrors_significance(self):
        evaluation = _synthetic_evaluation(
            {"Random Forest": 0.93, "ViT+R2D2": 0.80}
        )
        report = PostHocAnalysisModule(exclude=()).analyze(evaluation)
        forest = report.intervals[("Random Forest", "accuracy")]
        vit = report.intervals[("ViT+R2D2", "accuracy")]
        # Non-overlapping CIs for clearly separated models.
        assert forest.lower > vit.upper
