"""Tests for the extraction and disassembler modules."""

import numpy as np
import pytest

from repro.chain.bigquery import BigQueryClient
from repro.chain.rpc import JsonRpcClient, JsonRpcServer
from repro.chain.timeline import month_to_timestamp
from repro.core.bdm import BytecodeDisassemblerModule
from repro.core.bem import BytecodeExtractionModule


@pytest.fixture
def bem(small_corpus):
    return BytecodeExtractionModule(
        bigquery=BigQueryClient(small_corpus.chain),
        explorer=small_corpus.explorer,
        rpc=JsonRpcClient(JsonRpcServer(small_corpus.chain)),
        batch_size=64,
    )


class TestBEM:
    def test_crawl_extracts_everything(self, bem, small_corpus):
        contracts = bem.crawl()
        assert len(contracts) == len(small_corpus.records)
        assert bem.stats.candidates == len(small_corpus.records)
        assert bem.stats.extracted == len(contracts)
        assert bem.stats.rpc_calls == len(contracts)

    def test_labels_match_ground_truth(self, bem, small_corpus):
        contracts = bem.crawl()
        truth = {r.address: bool(r.label) for r in small_corpus.records}
        assert all(c.is_phishing == truth[c.address] for c in contracts)
        assert bem.stats.flagged == sum(
            1 for r in small_corpus.records if r.label == 1
        )

    def test_bytecode_matches_chain(self, bem, small_corpus):
        contracts = bem.crawl(limit=10)
        for contract in contracts:
            assert contract.bytecode == small_corpus.chain.get_code(
                contract.address
            )

    def test_window_filter(self, bem):
        start = month_to_timestamp(4)
        end = month_to_timestamp(8)
        contracts = bem.crawl(start_timestamp=start, end_timestamp=end)
        assert all(start <= c.block_timestamp < end for c in contracts)

    def test_limit(self, bem):
        assert len(bem.crawl(limit=5)) == 5

    def test_dedup_keeps_first_per_bytecode(self, bem):
        contracts = bem.crawl()
        unique = bem.deduplicate(contracts)
        assert len({c.bytecode for c in unique}) == len(unique)
        assert len(unique) < len(contracts)  # clones removed

    def test_month_property(self, bem):
        contract = bem.crawl(limit=1)[0]
        assert 0 <= contract.month <= 12


class TestBDM:
    def test_triples_match_paper_example(self):
        bdm = BytecodeDisassemblerModule()
        triples = bdm.triples(bytes.fromhex("6080604052"))
        assert triples[0] == ("PUSH1", "0x80", 3.0)
        assert triples[2][0] == "MSTORE"

    def test_batch(self, small_corpus):
        bdm = BytecodeDisassemblerModule()
        codes = [r.bytecode for r in small_corpus.records[:5]]
        results = bdm.disassemble_batch(codes)
        assert len(results) == 5
        assert all(len(instructions) > 0 for instructions in results)

    def test_csv_persistence(self, tmp_path):
        bdm = BytecodeDisassemblerModule(output_dir=tmp_path)
        path = bdm.disassemble_to_csv("0xAB", bytes.fromhex("6001"))
        assert path.exists()
        assert path.read_text().startswith("offset,mnemonic,operand,gas")

    def test_csv_requires_output_dir(self):
        with pytest.raises(RuntimeError):
            BytecodeDisassemblerModule().disassemble_to_csv("0xAB", b"\x00")

    def test_opcode_usage_counts(self):
        bdm = BytecodeDisassemblerModule()
        usage = bdm.opcode_usage(
            [bytes.fromhex("6080604052"), bytes.fromhex("6001")]
        )
        assert usage["PUSH1"] == [2, 1]
        assert usage["MSTORE"] == [1, 0]
