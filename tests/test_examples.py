"""Smoke tests: every example script runs to completion.

Examples are executed in-process (import + ``main()``) with their output
captured, asserting the key artifacts appear.
"""

import importlib
import sys
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    yield
    for name in ("quickstart", "model_comparison", "time_resistance",
                 "wallet_guard", "explain_detection", "shadow_rollout"):
        sys.modules.pop(name, None)


def run_example(name: str, capsys) -> str:
    module = importlib.import_module(name)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "crawled" in out
    assert "PHISHING" in out or "benign" in out


@pytest.mark.slow
def test_model_comparison(capsys):
    out = run_example("model_comparison", capsys)
    assert "Random Forest" in out
    assert "Kruskal" in out or "p_adj" in out


@pytest.mark.slow
def test_time_resistance(capsys):
    out = run_example("time_resistance", capsys)
    assert "AUT(F1)" in out


def test_wallet_guard(capsys):
    out = run_example("wallet_guard", capsys)
    assert "latency" in out
    assert "blocked" in out


def test_explain_detection(capsys):
    out = run_example("explain_detection", capsys)
    assert "base rate" in out
    assert "local accuracy" in out


def test_shadow_rollout(capsys):
    out = run_example("shadow_rollout", capsys)
    # The parity candidate is promoted with zero dropped batches …
    assert "state=promoted" in out
    assert "promoted=True, dropped=0" in out
    # … and the label-flipped candidate is aborted, production untouched.
    assert "state=aborted" in out
    assert "decision: abort — regression" in out
    assert "production untouched" in out
