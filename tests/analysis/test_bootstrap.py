"""Tests for bootstrap confidence intervals and paired model tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.analysis.bootstrap import (
    BootstrapInterval,
    bootstrap_ci,
    paired_bootstrap_test,
)


def finite_samples(min_size=5, max_size=40):
    return st.lists(
        st.floats(-100, 100, allow_nan=False),
        min_size=min_size,
        max_size=max_size,
    ).map(np.array)


class TestInterval:
    def test_contains_and_width(self):
        interval = BootstrapInterval(0.5, 0.4, 0.7, 0.95, "bca")
        assert 0.5 in interval
        assert 0.39 not in interval
        assert interval.width == pytest.approx(0.3)

    def test_str_format(self):
        text = str(BootstrapInterval(0.5, 0.4, 0.7, 0.95, "bca"))
        assert "95%" in text and "bca" in text


class TestBootstrapCi:
    def test_point_estimate_is_plugin_value(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        interval = bootstrap_ci(values)
        assert interval.estimate == pytest.approx(2.5)

    def test_interval_covers_mean_of_well_behaved_sample(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 2.0, size=200)
        interval = bootstrap_ci(values, seed=1)
        assert 10.0 in interval

    def test_matches_scipy_percentile_roughly(self):
        rng = np.random.default_rng(1)
        values = rng.exponential(2.0, size=80)
        ours = bootstrap_ci(values, method="percentile",
                            n_resamples=4000, seed=0)
        theirs = scipy_stats.bootstrap(
            (values,), np.mean, n_resamples=4000,
            confidence_level=0.95, method="percentile",
            random_state=np.random.default_rng(0),
        ).confidence_interval
        assert ours.lower == pytest.approx(theirs.low, abs=0.15)
        assert ours.upper == pytest.approx(theirs.high, abs=0.15)

    def test_bca_shifts_interval_for_skewed_sample(self):
        rng = np.random.default_rng(2)
        values = rng.exponential(1.0, size=30)
        percentile = bootstrap_ci(values, method="percentile", seed=0)
        bca = bootstrap_ci(values, method="bca", seed=0)
        # For a right-skewed statistic BCa moves the interval; it must
        # still contain the plug-in estimate and differ from percentile.
        assert bca.estimate in bca
        assert (bca.lower, bca.upper) != (percentile.lower, percentile.upper)

    def test_degenerate_sample_falls_back(self):
        interval = bootstrap_ci(np.array([3.0, 3.0, 3.0, 3.0]))
        assert interval.lower == interval.upper == 3.0
        assert interval.method == "percentile"  # BCa fallback

    def test_custom_statistic(self):
        values = np.array([1.0, 2.0, 100.0, 3.0, 2.0])
        interval = bootstrap_ci(values, statistic=np.median, seed=0)
        assert interval.estimate == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, np.nan])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], method="studentized")
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], n_resamples=10)

    @given(finite_samples())
    @settings(max_examples=30, deadline=None)
    def test_interval_ordered_and_contains_estimate(self, values):
        interval = bootstrap_ci(values, n_resamples=300, seed=0)
        assert interval.lower <= interval.upper
        # Mean of resampled means concentrates near the estimate; the
        # interval must bracket the plug-in value for the mean statistic.
        assert interval.lower - 1e-9 <= interval.estimate <= interval.upper + 1e-9

    @given(finite_samples(), st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_per_seed(self, values, seed):
        first = bootstrap_ci(values, n_resamples=200, seed=seed)
        second = bootstrap_ci(values, n_resamples=200, seed=seed)
        assert first == second


class TestPairedBootstrapTest:
    def test_clear_difference_is_significant(self):
        rng = np.random.default_rng(3)
        strong = rng.normal(0.93, 0.01, size=30)
        weak = rng.normal(0.80, 0.01, size=30)
        p_value, interval = paired_bootstrap_test(strong, weak, seed=0)
        assert p_value < 0.01
        assert interval.lower > 0.0

    def test_identical_models_not_significant(self):
        rng = np.random.default_rng(4)
        base = rng.normal(0.9, 0.02, size=30)
        noise = base + rng.normal(0.0, 0.001, size=30)
        p_value, interval = paired_bootstrap_test(base, noise, seed=0)
        assert p_value > 0.05
        assert 0.0 in interval

    def test_sign_symmetry(self):
        rng = np.random.default_rng(5)
        first = rng.normal(0.9, 0.02, size=25)
        second = rng.normal(0.85, 0.02, size=25)
        p_forward, ci_forward = paired_bootstrap_test(first, second, seed=0)
        p_backward, ci_backward = paired_bootstrap_test(second, first, seed=0)
        assert p_forward == pytest.approx(p_backward, abs=0.02)
        assert ci_forward.estimate == pytest.approx(-ci_backward.estimate)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap_test([0.1, 0.2], [0.1, 0.2, 0.3])

    @given(finite_samples(min_size=6, max_size=25))
    @settings(max_examples=20, deadline=None)
    def test_p_value_in_unit_interval(self, values):
        shifted = values + 0.5
        p_value, _ = paired_bootstrap_test(values, shifted,
                                           n_resamples=200, seed=0)
        assert 0.0 <= p_value <= 1.0
