"""Tests for TreeSHAP: local accuracy, symmetry, cross-checks."""

import numpy as np
import pytest

from repro.analysis.shap_values import (
    permutation_shap_values,
    top_influential_features,
    tree_shap_values,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture(scope="module")
def fitted_tree():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 5))
    y = ((X[:, 0] > 0) & (X[:, 2] > 0.3)).astype(int)
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    return tree, X, y


@pytest.fixture(scope="module")
def fitted_forest():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(300, 4))
    y = (X[:, 1] + 0.5 * X[:, 3] > 0).astype(int)
    forest = RandomForestClassifier(
        n_estimators=10, max_depth=4, random_state=0
    ).fit(X, y)
    return forest, X, y


class TestLocalAccuracy:
    def test_single_tree(self, fitted_tree):
        tree, X, __ = fitted_tree
        sample = X[:20]
        values, base = tree_shap_values(tree, sample)
        reconstruction = base + values.sum(axis=1)
        np.testing.assert_allclose(
            reconstruction, tree.predict_proba(sample)[:, 1], atol=1e-9
        )

    def test_forest(self, fitted_forest):
        forest, X, __ = fitted_forest
        sample = X[:10]
        values, base = tree_shap_values(forest, sample)
        reconstruction = base + values.sum(axis=1)
        np.testing.assert_allclose(
            reconstruction, forest.predict_proba(sample)[:, 1], atol=1e-9
        )


class TestAttributionSemantics:
    def test_unused_features_get_zero(self, fitted_tree):
        tree, X, __ = fitted_tree
        values, __ = tree_shap_values(tree, X[:20])
        used = {int(f) for f in tree.feature_ if f != -1}
        for feature in range(X.shape[1]):
            if feature not in used:
                np.testing.assert_allclose(values[:, feature], 0.0)

    def test_signal_features_dominate(self, fitted_tree):
        tree, X, __ = fitted_tree
        values, __ = tree_shap_values(tree, X[:50])
        importance = np.abs(values).mean(axis=0)
        assert set(np.argsort(importance)[-2:]) == {0, 2}

    def test_stump_matches_closed_form(self):
        """Depth-1 tree: φ of the split feature is p_leaf − p_root."""
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        values, base = tree_shap_values(stump, np.array([[0.0], [3.0]]))
        assert base == pytest.approx(0.5)
        assert values[0, 0] == pytest.approx(-0.5)
        assert values[1, 0] == pytest.approx(0.5)

    def test_matches_permutation_shap_direction(self, fitted_forest):
        """Exact and Monte-Carlo attributions agree on sign for the
        dominant feature."""
        forest, X, __ = fitted_forest
        sample = X[:5]
        exact, __ = tree_shap_values(forest, sample)
        estimated, __ = permutation_shap_values(
            forest.predict_proba, sample, X[:100], n_permutations=24, seed=0
        )
        dominant = int(np.abs(exact).mean(axis=0).argmax())
        agreeing = np.sign(exact[:, dominant]) == np.sign(estimated[:, dominant])
        assert agreeing.mean() >= 0.8


class TestPermutationShap:
    def test_local_accuracy_in_expectation(self, fitted_forest):
        forest, X, __ = fitted_forest
        sample = X[:3]
        values, base = permutation_shap_values(
            forest.predict_proba, sample, X[:80], n_permutations=48, seed=1
        )
        reconstruction = base + values.sum(axis=1)
        prediction = forest.predict_proba(sample)[:, 1]
        # Monte-Carlo: looser tolerance.
        np.testing.assert_allclose(reconstruction, prediction, atol=0.15)


class TestTopFeatures:
    def test_ranking(self):
        values = np.array([[0.5, -0.1, 0.0], [0.4, 0.2, 0.0]])
        names = ["A", "B", "C"]
        assert top_influential_features(values, names, k=2) == ["A", "B"]
