"""Tests for the markdown report generator."""

import numpy as np
import pytest

from repro.analysis.report import render_report
from repro.core.mem import EvaluationResult, TrialRecord
from repro.core.pam import PostHocAnalysisModule
from repro.ml.metrics import Metrics


def synthetic_evaluation():
    rng = np.random.default_rng(0)
    result = EvaluationResult()
    for model, mean in (
        ("Random Forest", 0.93), ("k-NN", 0.89), ("ViT+R2D2", 0.80)
    ):
        for index in range(12):
            value = float(np.clip(rng.normal(mean, 0.01), 0, 1))
            result.trials.append(
                TrialRecord(
                    model=model, run=0, fold=index,
                    metrics=Metrics(value, value, value, value),
                    train_seconds=0.5 if model == "ViT+R2D2" else 0.05,
                    inference_seconds=0.01,
                )
            )
    return result


class TestRenderReport:
    def test_contains_all_models_ranked(self):
        report = render_report(synthetic_evaluation())
        assert report.index("Random Forest") < report.index("k-NN")
        assert "ViT+R2D2" in report

    def test_best_model_called_out(self):
        report = render_report(synthetic_evaluation())
        assert "**Best model:** Random Forest" in report

    def test_cost_table_present(self):
        report = render_report(synthetic_evaluation())
        assert "## Cost" in report
        assert "Train (s)" in report

    def test_posthoc_section(self):
        evaluation = synthetic_evaluation()
        post_hoc = PostHocAnalysisModule(exclude=()).analyze(evaluation)
        report = render_report(evaluation, post_hoc=post_hoc)
        assert "## Statistical validation" in report
        assert "Kruskal–Wallis" in report
        assert "Dunn pairs" in report

    def test_category_means_section(self):
        report = render_report(synthetic_evaluation())
        assert "## Category means" in report
        assert "HSC:" in report and "VM:" in report

    def test_dataset_size_in_preamble(self):
        report = render_report(synthetic_evaluation(), dataset_size=240)
        assert "240 contracts" in report

    def test_custom_title(self):
        report = render_report(synthetic_evaluation(), title="Weekly scan")
        assert report.startswith("# Weekly scan")

    def test_empty_evaluation_rejected(self):
        with pytest.raises(ValueError):
            render_report(EvaluationResult())

    def test_is_valid_markdown_table(self):
        report = render_report(synthetic_evaluation())
        table_lines = [l for l in report.splitlines() if l.startswith("|")]
        widths = {line.count("|") for line in table_lines[:2]}
        assert len(widths) == 1  # header and separator align
