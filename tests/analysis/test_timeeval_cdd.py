"""Tests for AUT / time-decay evaluation and the critical difference diagram."""

import numpy as np
import pytest

from repro.analysis.cdd import critical_difference
from repro.analysis.timeeval import (
    TimeDecayResult,
    area_under_time,
    time_decay_evaluation,
)
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.ml.metrics import Metrics
from repro.models.hsc import HSCDetector


class TestAUT:
    def test_constant_curve(self):
        assert area_under_time([0.8, 0.8, 0.8]) == pytest.approx(0.8)

    def test_linear_decay(self):
        assert area_under_time([1.0, 0.0]) == pytest.approx(0.5)

    def test_single_period(self):
        assert area_under_time([0.7]) == 0.7

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            area_under_time([1.2])
        with pytest.raises(ValueError):
            area_under_time([])

    def test_higher_curve_higher_aut(self):
        low = area_under_time([0.6, 0.5, 0.6])
        high = area_under_time([0.9, 0.85, 0.9])
        assert high > low


class TestTimeDecayResult:
    def test_series_and_aut(self):
        result = TimeDecayResult(model="RF")
        for f1 in (0.9, 0.8, 0.85):
            result.months.append(len(result.months) + 4)
            result.metrics.append(
                Metrics(accuracy=f1, f1=f1, precision=f1, recall=f1)
            )
        assert result.series("f1") == [0.9, 0.8, 0.85]
        assert result.aut_f1 == pytest.approx(area_under_time([0.9, 0.8, 0.85]))


class TestTimeDecayEvaluation:
    def test_end_to_end_with_hsc(self):
        corpus = build_corpus(
            CorpusConfig(
                n_phishing=80, n_benign=80, seed=17,
                benign_temporal_match=True, clone_factor=4.0,
            )
        )
        dataset = Dataset.from_corpus(corpus, seed=0)

        def factory(name, seed=0):
            detector = HSCDetector(variant=name, seed=seed)
            detector.set_params(clf__n_estimators=30)
            return detector

        results = time_decay_evaluation(
            dataset, factory, ["Random Forest"], train_months=(0, 1, 2, 3)
        )
        assert len(results) == 1
        result = results[0]
        assert result.model == "Random Forest"
        assert all(m >= 4 for m in result.months)
        assert len(result.metrics) == len(result.months) >= 3
        assert 0.0 <= result.aut_f1 <= 1.0
        assert result.train_seconds > 0


class TestCriticalDifference:
    def _scores(self):
        rng = np.random.default_rng(0)
        return {
            "best": list(0.95 + rng.normal(0, 0.003, size=12)),
            "middle": list(0.85 + rng.normal(0, 0.003, size=12)),
            "worst": list(0.70 + rng.normal(0, 0.003, size=12)),
        }

    def test_rank_ordering(self):
        diagram = critical_difference(self._scores())
        assert diagram.ordered() == ["best", "middle", "worst"]
        assert diagram.mean_ranks["best"] > diagram.mean_ranks["worst"]

    def test_friedman_rejects_on_clear_separation(self):
        diagram = critical_difference(self._scores())
        assert diagram.friedman.p_value < 0.01

    def test_pairwise_and_effect_sizes(self):
        diagram = critical_difference(self._scores())
        assert len(diagram.pairwise) == 3
        assert diagram.effect_sizes[("best", "worst")] == pytest.approx(1.0)

    def test_indistinguishable_pair_forms_clique(self):
        rng = np.random.default_rng(1)
        noise = rng.normal(0, 0.05, size=6)
        scores = {
            "a": list(0.9 + noise),
            "b": list(0.9 + rng.normal(0, 0.05, size=6)),
            "c": list(0.2 + rng.normal(0, 0.01, size=6)),
        }
        diagram = critical_difference(scores)
        assert any({"a", "b"} <= set(clique) for clique in diagram.cliques)

    def test_render_contains_treatments(self):
        text = critical_difference(self._scores()).render()
        assert "best" in text and "Friedman" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            critical_difference({"only": [1.0, 2.0]})
        with pytest.raises(ValueError):
            critical_difference({"a": [1.0], "b": [1.0, 2.0]})
