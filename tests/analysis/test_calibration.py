"""Tests for reliability diagrams, calibration errors and scalers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.calibration import (
    IsotonicCalibrator,
    PlattScaler,
    TemperatureScaler,
    brier_score,
    expected_calibration_error,
    maximum_calibration_error,
    reliability_bins,
)


def _calibrated_sample(n=4000, seed=0):
    """Labels drawn with P(y=1) = p: perfectly calibrated by design."""
    rng = np.random.default_rng(seed)
    probs = rng.random(n)
    labels = (rng.random(n) < probs).astype(int)
    return labels, probs


def _overconfident_sample(n=4000, seed=1):
    """Probabilities pushed towards the extremes relative to the truth."""
    labels, probs = _calibrated_sample(n, seed)
    logits = np.log(np.clip(probs, 1e-9, 1 - 1e-9) / (1 - probs))
    sharpened = 1.0 / (1.0 + np.exp(-3.0 * logits))
    return labels, sharpened


def prob_label_arrays():
    return st.integers(4, 40).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 1), min_size=n, max_size=n).map(np.array),
            st.lists(
                st.floats(0.0, 1.0, allow_nan=False),
                min_size=n, max_size=n,
            ).map(np.array),
        )
    )


class TestReliabilityBins:
    def test_partition_is_exhaustive(self):
        labels, probs = _calibrated_sample(500)
        bins = reliability_bins(labels, probs, n_bins=10)
        assert sum(b.count for b in bins) == 500
        assert bins[0].lower == 0.0
        assert bins[-1].upper == 1.0

    def test_boundary_probabilities(self):
        bins = reliability_bins([0, 1, 1], [0.0, 0.5, 1.0], n_bins=2)
        # 0.0 and 0.5 fall in the first right-closed bin, 1.0 in the last.
        assert bins[0].count == 2
        assert bins[1].count == 1

    def test_empty_bin_gap_zero(self):
        bins = reliability_bins([0, 1], [0.05, 0.95], n_bins=10)
        empty = [b for b in bins if b.count == 0]
        assert empty and all(b.gap == 0.0 for b in empty)

    def test_bad_nbins(self):
        with pytest.raises(ValueError):
            reliability_bins([0, 1], [0.2, 0.8], n_bins=0)

    def test_bad_probs(self):
        with pytest.raises(ValueError):
            reliability_bins([0, 1], [-0.1, 0.5])
        with pytest.raises(ValueError):
            reliability_bins([0, 2], [0.1, 0.5])


class TestCalibrationErrors:
    def test_calibrated_sample_has_small_ece(self):
        labels, probs = _calibrated_sample()
        assert expected_calibration_error(labels, probs) < 0.05

    def test_overconfident_sample_has_larger_ece(self):
        calibrated_labels, calibrated = _calibrated_sample()
        sharp_labels, sharpened = _overconfident_sample()
        assert expected_calibration_error(
            sharp_labels, sharpened
        ) > expected_calibration_error(calibrated_labels, calibrated)

    def test_mce_bounds_ece(self):
        labels, probs = _overconfident_sample()
        ece = expected_calibration_error(labels, probs)
        mce = maximum_calibration_error(labels, probs)
        assert 0.0 <= ece <= mce <= 1.0

    def test_brier_perfect_and_worst(self):
        assert brier_score([1, 0], [1.0, 0.0]) == 0.0
        assert brier_score([1, 0], [0.0, 1.0]) == 1.0

    def test_brier_constant_half(self):
        assert brier_score([1, 0, 1, 0], [0.5] * 4) == pytest.approx(0.25)

    @given(prob_label_arrays())
    @settings(max_examples=50, deadline=None)
    def test_error_metrics_in_unit_interval(self, data):
        labels, probs = data
        assert 0.0 <= expected_calibration_error(labels, probs) <= 1.0
        assert 0.0 <= maximum_calibration_error(labels, probs) <= 1.0
        assert 0.0 <= brier_score(labels, probs) <= 1.0


class TestPlattScaler:
    def test_repairs_overconfidence(self):
        labels, sharpened = _overconfident_sample()
        scaler = PlattScaler().fit(sharpened, labels)
        repaired = scaler.transform(sharpened)
        assert expected_calibration_error(
            labels, repaired
        ) < expected_calibration_error(labels, sharpened)

    def test_learns_inverse_slope(self):
        labels, sharpened = _overconfident_sample()
        scaler = PlattScaler().fit(sharpened, labels)
        # Overconfident logits were scaled by 3; Platt should undo it.
        assert 0.2 < scaler.slope_ < 0.6

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PlattScaler().transform([0.5])

    def test_output_is_probability(self):
        labels, probs = _calibrated_sample(200)
        scaler = PlattScaler().fit(probs, labels)
        out = scaler.transform(probs)
        assert np.all((out >= 0) & (out <= 1))


class TestTemperatureScaler:
    def test_repairs_overconfidence_with_t_above_one(self):
        labels, sharpened = _overconfident_sample()
        scaler = TemperatureScaler().fit(sharpened, labels)
        assert scaler.temperature_ > 1.5
        repaired = scaler.transform(sharpened)
        assert expected_calibration_error(
            labels, repaired
        ) < expected_calibration_error(labels, sharpened)

    def test_preserves_ranking(self):
        labels, sharpened = _overconfident_sample(500)
        scaler = TemperatureScaler().fit(sharpened, labels)
        out = scaler.transform(sharpened)
        order_before = np.argsort(sharpened, kind="stable")
        order_after = np.argsort(out, kind="stable")
        assert np.array_equal(order_before, order_after)

    def test_calibrated_input_keeps_t_near_one(self):
        labels, probs = _calibrated_sample()
        scaler = TemperatureScaler().fit(probs, labels)
        assert 0.8 < scaler.temperature_ < 1.3

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            TemperatureScaler(bounds=(2.0, 1.0))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TemperatureScaler().transform([0.5])


class TestIsotonicCalibrator:
    def test_output_monotone_in_input(self):
        labels, probs = _overconfident_sample(1000)
        calibrator = IsotonicCalibrator().fit(probs, labels)
        grid = np.linspace(0, 1, 101)
        out = calibrator.transform(grid)
        assert np.all(np.diff(out) >= -1e-12)

    def test_repairs_overconfidence(self):
        labels, sharpened = _overconfident_sample()
        calibrator = IsotonicCalibrator().fit(sharpened, labels)
        repaired = calibrator.transform(sharpened)
        assert expected_calibration_error(
            labels, repaired
        ) < expected_calibration_error(labels, sharpened)

    def test_pav_known_small_case(self):
        # Scores ordered, labels [0, 1, 0, 1]: the middle violation pools.
        calibrator = IsotonicCalibrator().fit(
            [0.1, 0.4, 0.6, 0.9], [0, 1, 0, 1]
        )
        out = calibrator.transform([0.1, 0.4, 0.6, 0.9])
        assert out[0] == 0.0
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(0.5)
        assert out[3] == 1.0

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            IsotonicCalibrator().transform([0.5])

    @given(prob_label_arrays())
    @settings(max_examples=40, deadline=None)
    def test_fitted_values_are_probabilities(self, data):
        labels, probs = data
        calibrator = IsotonicCalibrator().fit(probs, labels)
        out = calibrator.transform(probs)
        assert np.all((out >= 0.0) & (out <= 1.0))
        assert np.all(np.diff(calibrator.values_) >= -1e-12)
