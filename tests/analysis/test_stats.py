"""Tests for the statistical battery, cross-checked against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.analysis.stats import (
    cliffs_delta,
    dunn_test,
    friedman_test,
    holm_bonferroni,
    kruskal_wallis,
    rankdata,
    shapiro_wilk,
    wilcoxon_signed_rank,
)


class TestRankdata:
    def test_simple(self):
        np.testing.assert_allclose(rankdata([3, 1, 2]), [3, 1, 2])

    def test_ties_share_mean_rank(self):
        np.testing.assert_allclose(rankdata([1, 2, 2, 3]), [1, 2.5, 2.5, 4])

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=100))
    def test_matches_scipy(self, values):
        np.testing.assert_allclose(rankdata(values), sps.rankdata(values))


class TestShapiroWilk:
    def test_normal_data_not_rejected(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=100)
        result = shapiro_wilk(x)
        assert result.p_value > 0.05
        assert 0.9 < result.statistic <= 1.0

    def test_uniform_bimodal_rejected(self):
        x = np.concatenate([np.zeros(50), np.ones(50)]) + np.linspace(0, 0.01, 100)
        result = shapiro_wilk(x)
        assert result.p_value < 0.01

    @pytest.mark.parametrize("n", [10, 30, 80])
    def test_close_to_scipy(self, n):
        rng = np.random.default_rng(3)
        x = rng.exponential(size=n)
        ours = shapiro_wilk(x)
        reference = sps.shapiro(x)
        assert ours.statistic == pytest.approx(reference.statistic, abs=5e-3)
        # p-values agree in order of magnitude / decision.
        assert (ours.p_value < 0.05) == (reference.pvalue < 0.05)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            shapiro_wilk([1.0, 2.0])

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            shapiro_wilk([1.0] * 10)


class TestKruskalWallis:
    def test_identical_groups_high_p(self):
        rng = np.random.default_rng(0)
        groups = [rng.normal(size=30) for __ in range(3)]
        result = kruskal_wallis(groups)
        assert result.p_value > 0.01

    def test_shifted_groups_rejected(self):
        rng = np.random.default_rng(1)
        groups = [rng.normal(loc=i * 2.0, size=30) for i in range(3)]
        result = kruskal_wallis(groups)
        assert result.p_value < 1e-6

    @given(
        st.lists(
            st.lists(st.floats(-100, 100), min_size=3, max_size=20),
            min_size=2, max_size=5,
        )
    )
    @settings(max_examples=30)
    def test_matches_scipy(self, groups):
        arrays = [np.array(g) for g in groups]
        if len(np.unique(np.concatenate(arrays))) < 2:
            return  # degenerate: all values tied
        ours = kruskal_wallis(arrays)
        reference = sps.kruskal(*arrays)
        assert ours.statistic == pytest.approx(reference.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(reference.pvalue, rel=1e-9)

    def test_needs_two_groups(self):
        with pytest.raises(ValueError):
            kruskal_wallis([np.array([1.0])])

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            kruskal_wallis([np.array([1.0]), np.array([])])


class TestHolmBonferroni:
    def test_known_example(self):
        adjusted = holm_bonferroni([0.01, 0.04, 0.03, 0.005])
        np.testing.assert_allclose(adjusted, [0.03, 0.06, 0.06, 0.02])

    def test_monotone_and_clipped(self):
        adjusted = holm_bonferroni([0.5, 0.6, 0.7])
        assert all(0 <= p <= 1 for p in adjusted)
        order = np.argsort([0.5, 0.6, 0.7])
        values = np.array(adjusted)[order]
        assert np.all(np.diff(values) >= 0)

    def test_single_p_untouched(self):
        assert holm_bonferroni([0.03]) == [0.03]

    def test_never_smaller_than_raw(self):
        raw = [0.001, 0.02, 0.3, 0.04]
        adjusted = holm_bonferroni(raw)
        assert all(a >= r for a, r in zip(adjusted, raw))


class TestDunn:
    def _groups(self):
        rng = np.random.default_rng(2)
        return {
            "a": rng.normal(0.90, 0.01, size=30),
            "b": rng.normal(0.90, 0.01, size=30),
            "c": rng.normal(0.70, 0.01, size=30),
        }

    def test_detects_the_different_group(self):
        results = dunn_test(self._groups())
        by_pair = {frozenset((r.group_a, r.group_b)): r for r in results}
        assert not by_pair[frozenset(("a", "b"))].significant()
        assert by_pair[frozenset(("a", "c"))].significant()
        assert by_pair[frozenset(("b", "c"))].significant()

    def test_pair_count(self):
        results = dunn_test(self._groups())
        assert len(results) == 3  # C(3,2)

    def test_adjusted_ge_raw(self):
        for result in dunn_test(self._groups()):
            assert result.p_adjusted >= result.p_value - 1e-15

    def test_z_is_signed(self):
        results = dunn_test(self._groups(), adjust=False)
        by_pair = {(r.group_a, r.group_b): r for r in results}
        assert by_pair[("a", "c")].statistic > 0  # a ranks above c

    def test_needs_two_groups(self):
        with pytest.raises(ValueError):
            dunn_test({"a": np.array([1.0])})


class TestFriedman:
    def test_matches_scipy(self):
        rng = np.random.default_rng(4)
        matrix = rng.normal(size=(12, 4))
        ours = friedman_test(matrix)
        reference = sps.friedmanchisquare(*[matrix[:, j] for j in range(4)])
        assert ours.statistic == pytest.approx(reference.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(reference.pvalue, rel=1e-9)

    def test_consistent_ordering_detected(self):
        base = np.arange(10, dtype=float)
        matrix = np.column_stack([base, base + 1, base + 2])
        result = friedman_test(matrix)
        assert result.p_value < 1e-3

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            friedman_test(np.zeros(5))


class TestWilcoxon:
    def test_no_difference(self):
        a = np.arange(10, dtype=float)
        result = wilcoxon_signed_rank(a, a)
        assert result.p_value == 1.0

    def test_consistent_shift_detected(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=14)
        result = wilcoxon_signed_rank(a, a - 1.0)
        assert result.p_value < 0.01

    def test_exact_matches_scipy_small_n(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=10)
        b = a + rng.normal(scale=0.5, size=10)
        ours = wilcoxon_signed_rank(a, b)
        reference = sps.wilcoxon(a, b, mode="exact")
        assert ours.statistic == pytest.approx(reference.statistic)
        assert ours.p_value == pytest.approx(reference.pvalue, rel=1e-6)

    def test_normal_approximation_large_n(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=40)
        b = a + rng.normal(scale=1.0, size=40)
        ours = wilcoxon_signed_rank(a, b)
        reference = sps.wilcoxon(a, b, mode="approx", correction=False)
        assert ours.p_value == pytest.approx(reference.pvalue, abs=0.02)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0], [1.0, 2.0])


class TestCliffsDelta:
    def test_complete_dominance(self):
        assert cliffs_delta([2, 3, 4], [0, 1]) == 1.0
        assert cliffs_delta([0, 1], [2, 3, 4]) == -1.0

    def test_identical_distributions(self):
        assert cliffs_delta([1, 2, 3], [1, 2, 3]) == 0.0

    def test_known_value(self):
        # a={1,2}, b={1,3}: pairs (1,1)t,(1,3)<,(2,1)>,(2,3)< → (1-2)/4
        assert cliffs_delta([1, 2], [1, 3]) == pytest.approx(-0.25)

    def test_bounds(self):
        rng = np.random.default_rng(8)
        delta = cliffs_delta(rng.normal(size=20), rng.normal(size=25))
        assert -1.0 <= delta <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cliffs_delta([], [1])
