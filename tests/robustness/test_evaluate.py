"""Tests for the evasion/hardening evaluation harness."""

import numpy as np
import pytest

from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.models.hsc import HSCDetector
from repro.robustness.attacks import (
    mimicry_padding,
    opcode_byte_distribution,
)
from repro.robustness.evaluate import (
    AttackSweepResult,
    adversarial_retraining,
    attack_corpus,
    evaluate_under_attack,
)


@pytest.fixture(scope="module")
def split():
    corpus = build_corpus(
        CorpusConfig(n_phishing=90, n_benign=90, seed=21, clone_factor=3.0)
    )
    dataset = Dataset.from_corpus(corpus, seed=2)
    return dataset.train_test_split(0.3, seed=5)


@pytest.fixture(scope="module")
def benign_mimicry_attack(split):
    train, _ = split
    benign_codes = [
        code for code, label in zip(train.bytecodes, train.labels)
        if label == 0
    ]
    distribution = opcode_byte_distribution(benign_codes)

    def attack(bytecode, rng, strength):
        n_bytes = int(strength * len(bytecode))
        return mimicry_padding(bytecode, rng, n_bytes, distribution)

    return attack


def _marker_attack(bytecode, rng, strength):
    """Test double: appends a visible marker scaled by strength."""
    return bytecode + b"\xfe" * int(strength)


class TestAttackCorpus:
    def test_only_phishing_samples_touched(self):
        rng = np.random.default_rng(0)
        codes = [b"\x00\x01", b"\x00\x02", b"\x00\x03"]
        labels = [0, 1, 0]
        attacked = attack_corpus(codes, labels, _marker_attack, rng, 4)
        assert attacked[0] == codes[0]
        assert attacked[2] == codes[2]
        assert attacked[1] == codes[1] + b"\xfe" * 4

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            attack_corpus([b"\x00"], [0, 1], _marker_attack,
                          np.random.default_rng(0), 1)


class TestSweepResult:
    def _result(self):
        from repro.ml.metrics import Metrics
        return AttackSweepResult(
            detector_name="RF",
            attack_name="junk",
            strengths=[0.0, 1.0],
            metrics=[
                Metrics(accuracy=0.9, f1=0.9, precision=0.9, recall=0.95),
                Metrics(accuracy=0.7, f1=0.6, precision=0.9, recall=0.55),
            ],
        )

    def test_recall_accessors(self):
        result = self._result()
        assert result.clean_recall == 0.95
        assert result.recalls == [0.95, 0.55]
        assert result.recall_drop() == pytest.approx(0.40)

    def test_table_renders_every_strength(self):
        table = self._result().table()
        assert "RF under junk" in table
        assert table.count("\n") == 3


class TestEvaluateUnderAttack:
    def test_recall_decays_with_strength(self, split, benign_mimicry_attack):
        train, test = split
        detector = HSCDetector(variant="Random Forest", seed=0)
        detector.set_params(clf__n_estimators=40)
        result = evaluate_under_attack(
            detector,
            train.bytecodes, train.labels,
            test.bytecodes, test.labels,
            benign_mimicry_attack,
            strengths=[0.0, 1.0],
            attack_name="benign-mimicry",
        )
        assert result.strengths == [0.0, 1.0]
        # Mimicry padding of about the contract's own length is the sweet
        # spot against raw-count histograms (heavier padding pushes the
        # counts back outside the benign range); it must hurt recall
        # relative to the clean evaluation.
        assert result.metrics[1].recall < result.clean_recall

    def test_precision_untouched_by_design(self, split, benign_mimicry_attack):
        # Benign samples are never attacked, so the benign half of the
        # confusion matrix is identical across strengths with a fixed
        # detector: false positives cannot increase.
        train, test = split
        detector = HSCDetector(variant="k-NN", seed=0)
        result = evaluate_under_attack(
            detector,
            train.bytecodes, train.labels,
            test.bytecodes, test.labels,
            benign_mimicry_attack,
            strengths=[0.0, 2.0],
        )
        labels = np.asarray(test.labels)
        # Re-derive false-positive counts from precision/recall.
        n_pos = labels.sum()
        for metric in result.metrics:
            if metric.precision > 0:
                predicted_pos = metric.recall * n_pos / metric.precision
                false_pos = predicted_pos - metric.recall * n_pos
                assert false_pos <= (labels == 0).sum()


class TestAdversarialRetraining:
    def test_hardening_recovers_recall(self, split, benign_mimicry_attack):
        train, test = split

        def factory():
            detector = HSCDetector(variant="Random Forest", seed=0)
            detector.set_params(clf__n_estimators=40)
            return detector

        outcome = adversarial_retraining(
            factory,
            train.bytecodes, train.labels,
            test.bytecodes, test.labels,
            benign_mimicry_attack,
            strength=1.0,
        )
        assert set(outcome) == {"clean_model", "hardened_model"}
        assert (
            outcome["hardened_model"].recall
            >= outcome["clean_model"].recall
        )

    def test_fresh_models_per_arm(self, split):
        train, test = split
        created = []

        def factory():
            detector = HSCDetector(variant="Logistic Regression", seed=0)
            created.append(detector)
            return detector

        adversarial_retraining(
            factory,
            train.bytecodes, train.labels,
            test.bytecodes, test.labels,
            _marker_attack,
            strength=2.0,
        )
        assert len(created) == 2
        assert created[0] is not created[1]
