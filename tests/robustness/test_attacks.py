"""Tests for the semantics-preserving evasion attacks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.mutation import is_minimal_proxy, proxy_implementation
from repro.evm.assembler import Label, PushLabel, assemble
from repro.evm.disassembler import disassemble_mnemonics
from repro.evm.machine import EVM, ExecutionContext
from repro.robustness.attacks import (
    AttackError,
    append_unreachable_junk,
    insert_junk_blocks,
    mimicry_padding,
    opcode_byte_distribution,
    semantics_preserved,
    substitute_push0,
    wrap_in_minimal_proxy,
)

#: A small contract with a conditional jump: stores CALLVALUE at slot 1
#: when non-zero, then returns 32 bytes of memory.
JUMPY = assemble([
    "CALLVALUE",
    PushLabel("store"),
    "JUMPI",
    ("PUSH1", 0x2A),
    ("PUSH1", 0x00),
    "MSTORE",
    PushLabel("done"),
    "JUMP",
    Label("store"),
    "CALLVALUE",
    ("PUSH1", 0x01),
    "SSTORE",
    Label("done"),
    ("PUSH1", 0x20),
    ("PUSH1", 0x00),
    "RETURN",
])

STRAIGHT = assemble([
    ("PUSH1", 0x07),
    ("PUSH1", 0x00),
    "SSTORE",
    "STOP",
])


@pytest.fixture(scope="module")
def phishing_bytecodes():
    corpus = build_corpus(
        CorpusConfig(n_phishing=20, n_benign=20, seed=11)
    )
    return [record.bytecode for record in corpus.phishing_records()]


class TestAppendJunk:
    def test_grows_by_exact_amount(self):
        rng = np.random.default_rng(0)
        attacked = append_unreachable_junk(STRAIGHT, rng, 64)
        assert len(attacked) == len(STRAIGHT) + 64
        assert attacked[: len(STRAIGHT)] == STRAIGHT

    def test_zero_bytes_is_identity(self):
        rng = np.random.default_rng(0)
        assert append_unreachable_junk(STRAIGHT, rng, 0) == STRAIGHT

    def test_negative_rejected(self):
        with pytest.raises(AttackError):
            append_unreachable_junk(STRAIGHT, np.random.default_rng(0), -1)

    def test_non_terminated_code_rejected(self):
        dangling = assemble([("PUSH1", 1), ("PUSH1", 2), "ADD"])
        with pytest.raises(AttackError):
            append_unreachable_junk(dangling, np.random.default_rng(0), 8)

    def test_semantics_preserved(self):
        rng = np.random.default_rng(1)
        attacked = append_unreachable_junk(JUMPY, rng, 100)
        assert semantics_preserved(JUMPY, attacked)

    def test_changes_opcode_histogram(self):
        rng = np.random.default_rng(2)
        attacked = append_unreachable_junk(STRAIGHT, rng, 200)
        assert disassemble_mnemonics(attacked) != disassemble_mnemonics(
            STRAIGHT
        )

    @given(st.integers(0, 300), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_always_preserves_prefix(self, n_bytes, seed):
        rng = np.random.default_rng(seed)
        attacked = append_unreachable_junk(JUMPY, rng, n_bytes)
        assert attacked[: len(JUMPY)] == JUMPY
        assert len(attacked) == len(JUMPY) + n_bytes


class TestMimicry:
    def test_distribution_shape(self, phishing_bytecodes):
        distribution = opcode_byte_distribution(phishing_bytecodes)
        assert distribution.shape == (256,)
        assert distribution.sum() == pytest.approx(1.0)
        assert np.all(distribution > 0)  # Laplace smoothing

    def test_padding_follows_distribution(self):
        # Mass concentrated on byte 0x5B: padding must be all JUMPDESTs.
        distribution = np.zeros(256)
        distribution[0x5B] = 1.0
        rng = np.random.default_rng(3)
        attacked = mimicry_padding(STRAIGHT, rng, 50, distribution)
        assert attacked[len(STRAIGHT):] == bytes([0x5B]) * 50

    def test_semantics_preserved(self, phishing_bytecodes):
        distribution = opcode_byte_distribution(phishing_bytecodes)
        rng = np.random.default_rng(4)
        attacked = mimicry_padding(JUMPY, rng, 80, distribution)
        assert semantics_preserved(JUMPY, attacked)

    def test_bad_distribution_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(AttackError):
            mimicry_padding(STRAIGHT, rng, 8, np.ones(10))
        with pytest.raises(AttackError):
            mimicry_padding(STRAIGHT, rng, 8, np.zeros(256))
        negative = np.ones(256)
        negative[0] = -1.0
        with pytest.raises(AttackError):
            mimicry_padding(STRAIGHT, rng, 8, negative)


class TestInsertJunkBlocks:
    def test_straightline_semantics(self):
        rng = np.random.default_rng(5)
        attacked = insert_junk_blocks(STRAIGHT, rng, n_blocks=2,
                                      block_length=6)
        assert len(attacked) > len(STRAIGHT)
        assert semantics_preserved(STRAIGHT, attacked)

    def test_jumpy_semantics_many_seeds(self):
        for seed in range(8):
            rng = np.random.default_rng(seed)
            attacked = insert_junk_blocks(JUMPY, rng, n_blocks=3,
                                          block_length=8)
            assert semantics_preserved(JUMPY, attacked), f"seed {seed}"

    def test_relocated_code_still_executes(self):
        rng = np.random.default_rng(6)
        attacked = insert_junk_blocks(JUMPY, rng)
        result = EVM().execute(
            attacked, context=ExecutionContext(callvalue=5)
        )
        assert result.success
        assert result.storage.get(1) == 5

    def test_synthetic_phishing_corpus_survives(self, phishing_bytecodes):
        rng = np.random.default_rng(7)
        preserved = 0
        for bytecode in phishing_bytecodes[:10]:
            attacked = insert_junk_blocks(bytecode, rng, n_blocks=2,
                                          block_length=6)
            preserved += semantics_preserved(bytecode, attacked)
        assert preserved == 10

    def test_tiny_block_rejected(self):
        with pytest.raises(AttackError):
            insert_junk_blocks(STRAIGHT, np.random.default_rng(0),
                               block_length=1)

    def test_empty_bytecode_rejected(self):
        with pytest.raises(AttackError):
            insert_junk_blocks(b"", np.random.default_rng(0))

    @given(st.integers(1, 5), st.sampled_from([4, 6, 8, 12]),
           st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_jumpy_always_preserved(self, n_blocks, block_length,
                                             seed):
        rng = np.random.default_rng(seed)
        attacked = insert_junk_blocks(JUMPY, rng, n_blocks=n_blocks,
                                      block_length=block_length)
        assert semantics_preserved(JUMPY, attacked)


class TestSubstitutePush0:
    ZEROS = assemble([
        ("PUSH1", 0x00),
        ("PUSH1", 0x00),
        "SSTORE",
        "STOP",
    ])

    def test_full_substitution(self):
        out = substitute_push0(self.ZEROS, np.random.default_rng(0))
        assert len(out) == len(self.ZEROS)
        assert out.hex() == "5f5b5f5b5500"
        assert semantics_preserved(self.ZEROS, out)

    def test_zero_fraction_is_identity(self):
        out = substitute_push0(self.ZEROS, np.random.default_rng(0),
                               fraction=0.0)
        assert out == self.ZEROS

    def test_bad_fraction_rejected(self):
        with pytest.raises(AttackError):
            substitute_push0(self.ZEROS, np.random.default_rng(0),
                             fraction=1.5)

    def test_nonzero_push_untouched(self):
        out = substitute_push0(STRAIGHT, np.random.default_rng(0))
        # STRAIGHT pushes 0x07 and 0x00: only the latter rewrites.
        assert out != STRAIGHT
        assert out[0:2] == STRAIGHT[0:2]
        assert semantics_preserved(STRAIGHT, out)

    def test_push_operand_zero_bytes_not_confused(self):
        # A PUSH2 0x0000 operand contains 0x60-free zeros; a PUSH1 opcode
        # byte inside another PUSH's operand must not be rewritten.
        tricky = assemble([("PUSH2", 0x6000), "POP", "STOP"])
        out = substitute_push0(tricky, np.random.default_rng(0))
        assert out == tricky  # 0x60 0x00 here is operand data, not code

    def test_jumpy_contract_preserved(self):
        out = substitute_push0(JUMPY, np.random.default_rng(1))
        assert semantics_preserved(JUMPY, out)

    def test_corpus_histogram_shift(self, phishing_bytecodes):
        from repro.evm.disassembler import disassemble_mnemonics
        rng = np.random.default_rng(2)
        shifted = 0
        for bytecode in phishing_bytecodes[:10]:
            out = substitute_push0(bytecode, rng)
            before = disassemble_mnemonics(bytecode).count("PUSH1")
            after = disassemble_mnemonics(out).count("PUSH1")
            shifted += after < before
        assert shifted >= 5  # most contracts push at least one zero


class TestProxyWrap:
    def test_produces_canonical_proxy(self):
        proxy = wrap_in_minimal_proxy(0xDEAD)
        assert is_minimal_proxy(proxy)
        assert proxy_implementation(proxy).endswith("dead")

    def test_proxies_of_different_targets_share_opcodes(self):
        first = wrap_in_minimal_proxy(1)
        second = wrap_in_minimal_proxy(2**159)
        assert disassemble_mnemonics(first) == disassemble_mnemonics(second)


class TestSemanticsOracle:
    def test_detects_behaviour_change(self):
        changed = assemble([
            ("PUSH1", 0x08),  # different value stored
            ("PUSH1", 0x00),
            "SSTORE",
            "STOP",
        ])
        assert not semantics_preserved(STRAIGHT, changed)

    def test_identity_is_preserved(self):
        assert semantics_preserved(JUMPY, JUMPY)
