"""Tests for the proxy-resolving defence."""

import numpy as np
import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.rpc import JsonRpcClient, JsonRpcServer
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.models.detector import PhishingDetector
from repro.models.hsc import HSCDetector
from repro.robustness.attacks import wrap_in_minimal_proxy
from repro.robustness.defenses import ProxyResolvingDetector

IMPLEMENTATION = bytes.fromhex("600760005500")  # SSTORE(0, 7); STOP


class RecordingDetector(PhishingDetector):
    """Captures the bytecodes it is fitted/evaluated on."""

    def __init__(self):
        self.name = "recording"
        self.fitted_with: list[bytes] = []
        self.predicted_with: list[bytes] = []

    def fit(self, bytecodes, labels):
        self.fitted_with = list(bytecodes)
        return self

    def predict_proba(self, bytecodes):
        self.predicted_with = list(bytecodes)
        return np.tile([0.5, 0.5], (len(bytecodes), 1))


class TestResolve:
    def _wrapped(self, lookup):
        return ProxyResolvingDetector(RecordingDetector(), lookup)

    def test_non_proxy_passthrough(self):
        detector = self._wrapped(lambda address: b"")
        assert detector.resolve(IMPLEMENTATION) == IMPLEMENTATION

    def test_single_hop(self):
        address_book = {}
        proxy = wrap_in_minimal_proxy(0xAB)
        address_book["0x" + "00" * 19 + "ab"] = IMPLEMENTATION
        detector = self._wrapped(lambda a: address_book.get(a, b""))
        assert detector.resolve(proxy) == IMPLEMENTATION

    def test_proxy_chain_two_hops(self):
        inner = wrap_in_minimal_proxy(0x01)
        outer = wrap_in_minimal_proxy(0x02)
        address_book = {
            "0x" + "00" * 19 + "02": inner,
            "0x" + "00" * 19 + "01": IMPLEMENTATION,
        }
        detector = self._wrapped(lambda a: address_book.get(a, b""))
        assert detector.resolve(outer) == IMPLEMENTATION

    def test_cycle_stops_at_max_hops(self):
        # A proxy pointing to itself must not loop forever.
        address = 0x33
        proxy = wrap_in_minimal_proxy(address)
        lookup_calls = []

        def lookup(a):
            lookup_calls.append(a)
            return proxy

        detector = ProxyResolvingDetector(
            RecordingDetector(), lookup, max_hops=3
        )
        resolved = detector.resolve(proxy)
        assert resolved == proxy
        assert len(lookup_calls) == 3

    def test_lookup_failure_falls_back(self):
        proxy = wrap_in_minimal_proxy(0xCD)

        def lookup(address):
            raise ConnectionError("endpoint down")

        detector = self._wrapped(lookup)
        assert detector.resolve(proxy) == proxy

    def test_empty_code_falls_back(self):
        # Self-destructed implementation: eth_getCode returns empty.
        proxy = wrap_in_minimal_proxy(0xEF)
        detector = self._wrapped(lambda a: b"")
        assert detector.resolve(proxy) == proxy


class TestConstruction:
    def test_rejects_non_detector(self):
        with pytest.raises(TypeError):
            ProxyResolvingDetector(object(), lambda a: b"")

    def test_rejects_bad_hops(self):
        with pytest.raises(ValueError):
            ProxyResolvingDetector(RecordingDetector(), lambda a: b"",
                                   max_hops=0)

    def test_name_includes_base(self):
        detector = ProxyResolvingDetector(RecordingDetector(), lambda a: b"")
        assert "recording" in detector.name


class TestDelegation:
    def test_fit_and_predict_see_resolved_bytes(self):
        proxy = wrap_in_minimal_proxy(0xAB)
        address_book = {"0x" + "00" * 19 + "ab": IMPLEMENTATION}
        base = RecordingDetector()
        detector = ProxyResolvingDetector(
            base, lambda a: address_book.get(a, b"")
        )
        detector.fit([proxy, IMPLEMENTATION], [1, 1])
        assert base.fitted_with == [IMPLEMENTATION, IMPLEMENTATION]
        detector.predict_proba([proxy])
        assert base.predicted_with == [IMPLEMENTATION]


class TestEndToEndWithChain:
    def test_proxy_hiding_defeated_via_rpc(self):
        """The full story: attack blinds the detector, resolution restores it."""
        corpus = build_corpus(
            CorpusConfig(n_phishing=80, n_benign=80, seed=31, clone_factor=3.0)
        )
        dataset = Dataset.from_corpus(corpus, seed=3)
        train, test = dataset.train_test_split(0.3, seed=6)

        # The attacker hides every phishing test contract behind a fresh
        # EIP-1167 proxy deployed on-chain.
        chain = Blockchain()
        client = JsonRpcClient(JsonRpcServer(chain))
        attacked_codes = []
        for index, (code, label) in enumerate(
            zip(test.bytecodes, test.labels)
        ):
            if label != 1:
                attacked_codes.append(code)
                continue
            address = chain.deploy(code, timestamp=1_700_000_000 + index)
            attacked_codes.append(wrap_in_minimal_proxy(address))

        def make_base():
            base = HSCDetector(variant="Random Forest", seed=0)
            base.set_params(clf__n_estimators=40)
            return base

        labels = np.asarray(test.labels)

        naive = make_base().fit(train.bytecodes, train.labels)
        naive_recall = float(
            np.mean(naive.predict(attacked_codes)[labels == 1] == 1)
        )

        defended = ProxyResolvingDetector(make_base(), client.get_code)
        defended.fit(train.bytecodes, train.labels)
        defended_recall = float(
            np.mean(defended.predict(attacked_codes)[labels == 1] == 1)
        )

        # All proxies look alike — the naive detector's recall on hidden
        # phishing collapses to near one class-constant decision, while
        # resolution restores most of it.
        assert defended_recall > naive_recall + 0.3
        assert defended_recall > 0.6

    def test_live_monitor_composition(self):
        """ProxyResolvingDetector plugs into the §VII live monitor."""
        from repro.core.live import LiveDetector

        corpus = build_corpus(
            CorpusConfig(n_phishing=60, n_benign=60, seed=37)
        )
        dataset = Dataset.from_corpus(corpus, seed=4)
        train, test = dataset.train_test_split(0.3, seed=7)

        base = HSCDetector(variant="Random Forest", seed=0)
        base.set_params(clf__n_estimators=40)

        chain = Blockchain()
        client = JsonRpcClient(JsonRpcServer(chain))
        defended = ProxyResolvingDetector(base, client.get_code)
        defended.fit(train.bytecodes, train.labels)

        monitor = LiveDetector(chain, defended, threshold=0.5)
        monitor.mark_existing_as_seen()

        # A phishing implementation lands, hidden behind a fresh proxy.
        # Pick one the fitted model detects directly, so the test isolates
        # the proxy-resolution step from base-model false negatives.
        phishing_code = next(
            code for code, label in zip(test.bytecodes, test.labels)
            if label == 1 and defended.predict_proba([code])[0, 1] >= 0.6
        )
        implementation = chain.deploy(phishing_code, timestamp=1_700_000_000)
        proxy_address = chain.deploy(
            wrap_in_minimal_proxy(implementation), timestamp=1_700_000_060
        )

        alerts = monitor.poll()
        flagged = {alert.address for alert in alerts}
        assert proxy_address in flagged
        assert monitor.stats.scanned == 2
