"""Tests for the CFG-derived structural features."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evm.assembler import Assembler, assemble
from repro.features.structural import (
    STRUCTURAL_FEATURE_NAMES,
    StructuralFeatureExtractor,
)


@pytest.fixture
def extractor():
    return StructuralFeatureExtractor()


def feature(vector, name):
    return vector[STRUCTURAL_FEATURE_NAMES.index(name)]


class TestVectors:
    def test_width_and_names(self, extractor):
        vector = extractor.transform_one(assemble(["STOP"]))
        assert vector.shape == (len(STRUCTURAL_FEATURE_NAMES),)
        assert extractor.feature_names == list(STRUCTURAL_FEATURE_NAMES)

    def test_empty_bytecode_is_zero(self, extractor):
        assert np.all(extractor.transform_one(b"") == 0)

    def test_straight_line(self, extractor):
        vector = extractor.transform_one(
            assemble([("PUSH1", 1), ("PUSH1", 2), "ADD", "STOP"])
        )
        assert feature(vector, "block_count") == 1
        assert feature(vector, "mean_block_length") == 4
        assert feature(vector, "stop_block_share") == 1.0

    def test_branching_increases_structure(self, extractor):
        asm = (
            Assembler()
            .emit("CALLVALUE")
            .push_label("fail")
            .emit("JUMPI")
            .emit("STOP")
            .label("fail")
            .push(0).emit("DUP1").emit("REVERT")
        )
        vector = extractor.transform_one(asm.assemble())
        assert feature(vector, "block_count") == 3
        assert feature(vector, "cyclomatic_complexity") >= 2
        assert feature(vector, "revert_block_share") > 0

    def test_loop_counted(self, extractor):
        asm = (
            Assembler()
            .label("loop").push(1).push_label("loop").emit("JUMPI")
            .emit("STOP")
        )
        vector = extractor.transform_one(asm.assemble())
        assert feature(vector, "loop_count") == 1

    def test_dead_code_share(self, extractor):
        code = assemble(["STOP"]) + bytes.fromhex("60016002")
        vector = extractor.transform_one(code)
        assert feature(vector, "dead_block_share") > 0

    def test_indirect_jump_share(self, extractor):
        code = assemble([("PUSH1", 0), "MLOAD", "JUMP"])
        vector = extractor.transform_one(code)
        assert feature(vector, "indirect_jump_share") > 0

    def test_dispatcher_fanout_tracks_functions(self, extractor):
        from repro.datagen.families import FAMILIES, generate_contract
        from repro.datagen.solidity_like import Environment

        env = Environment(rng=np.random.default_rng(4), tokens=(0xCC << 96,))
        bytecode, __ = generate_contract(FAMILIES["erc20_token"], env, 0)
        vector = extractor.transform_one(bytecode)
        assert feature(vector, "dispatcher_fanout") >= 4

    def test_batch_shape(self, extractor):
        matrix = extractor.transform([assemble(["STOP"]), b"\x00\x00"])
        assert matrix.shape == (2, len(STRUCTURAL_FEATURE_NAMES))

    def test_fit_is_noop(self, extractor):
        assert extractor.fit([b"\x00"]) is extractor

    @given(st.binary(max_size=200))
    def test_total_and_finite(self, code):
        vector = StructuralFeatureExtractor().transform_one(code)
        assert np.all(np.isfinite(vector))
        assert np.all(vector >= 0)
