"""Tests for the HSC opcode-histogram extractor."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.features.histogram import OpcodeHistogramExtractor

PROLOGUE = bytes.fromhex("6080604052")  # PUSH1 PUSH1 MSTORE
STOP_ONLY = b"\x00"


class TestFitTransform:
    def test_vocabulary_from_training_set(self):
        extractor = OpcodeHistogramExtractor().fit([PROLOGUE])
        assert set(extractor.vocabulary_) == {"PUSH1", "MSTORE"}
        assert extractor.feature_names == sorted(["PUSH1", "MSTORE"])

    def test_counts(self):
        extractor = OpcodeHistogramExtractor().fit([PROLOGUE])
        matrix = extractor.transform([PROLOGUE])
        row = dict(zip(extractor.feature_names, matrix[0]))
        assert row["PUSH1"] == 2.0
        assert row["MSTORE"] == 1.0

    def test_unseen_opcodes_ignored(self):
        extractor = OpcodeHistogramExtractor().fit([PROLOGUE])
        matrix = extractor.transform([STOP_ONLY])  # STOP not in vocabulary
        assert matrix.shape == (1, 2)
        assert np.all(matrix == 0.0)

    def test_counts_are_raw_not_normalized(self):
        extractor = OpcodeHistogramExtractor().fit([PROLOGUE * 3])
        matrix = extractor.transform([PROLOGUE * 3])
        assert matrix.max() == 6.0  # raw occurrence counts

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            OpcodeHistogramExtractor().transform([PROLOGUE])
        with pytest.raises(RuntimeError):
            __ = OpcodeHistogramExtractor().feature_names

    def test_fit_transform_equals_fit_then_transform(self):
        codes = [PROLOGUE, STOP_ONLY, PROLOGUE + STOP_ONLY]
        a = OpcodeHistogramExtractor().fit_transform(codes)
        extractor = OpcodeHistogramExtractor().fit(codes)
        b = extractor.transform(codes)
        assert np.array_equal(a, b)

    def test_is_fitted_flag(self):
        extractor = OpcodeHistogramExtractor()
        assert not extractor.is_fitted
        extractor.fit([PROLOGUE])
        assert extractor.is_fitted


class TestSingleDecode:
    def _counting_decoder(self):
        from repro.evm.disassembler import decode_mnemonic_ids

        calls = []

        def decoder(bytecode):
            calls.append(bytecode)
            return decode_mnemonic_ids(bytecode)

        return decoder, calls

    def test_fit_transform_decodes_each_bytecode_once(self):
        # The seed implementation disassembled everything twice (fit, then
        # transform).
        decoder, calls = self._counting_decoder()
        codes = [PROLOGUE, STOP_ONLY, PROLOGUE + STOP_ONLY]
        OpcodeHistogramExtractor(decoder=decoder).fit_transform(codes)
        assert calls == codes

    def test_fit_then_transform_decodes_twice(self):
        decoder, calls = self._counting_decoder()
        codes = [PROLOGUE, STOP_ONLY]
        extractor = OpcodeHistogramExtractor(decoder=decoder).fit(codes)
        extractor.transform(codes)
        assert calls == codes * 2

    def test_cached_decoder_yields_identical_features(self):
        from repro.serve.cache import FeatureCache

        codes = [PROLOGUE, STOP_ONLY, PROLOGUE * 4, bytes(range(64))]
        plain = OpcodeHistogramExtractor().fit_transform(codes)
        cache = FeatureCache()
        cached_extractor = OpcodeHistogramExtractor(
            decoder=cache.mnemonic_ids
        )
        cached = cached_extractor.fit_transform(codes)
        assert np.array_equal(plain, cached)
        # And again, now that every decode is a hit.
        assert np.array_equal(cached_extractor.transform(codes), plain)
        assert cache.stats.hits > 0

    def test_set_decoder_is_clearable(self):
        decoder, calls = self._counting_decoder()
        extractor = OpcodeHistogramExtractor()
        extractor.set_decoder(decoder)
        extractor.fit([PROLOGUE])
        assert len(calls) == 1
        extractor.set_decoder(None)
        extractor.transform([PROLOGUE])
        assert len(calls) == 1  # direct decode, counter untouched


class TestProperties:
    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=8))
    def test_row_sums_bounded_by_instruction_count(self, codes):
        extractor = OpcodeHistogramExtractor().fit(codes)
        matrix = extractor.transform(codes)
        assert matrix.shape[0] == len(codes)
        assert np.all(matrix >= 0)
        # Each instruction contributes at most one count.
        for row, code in zip(matrix, codes):
            assert row.sum() <= len(code)

    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=8))
    def test_self_transform_never_all_zero(self, codes):
        extractor = OpcodeHistogramExtractor().fit(codes)
        matrix = extractor.transform(codes)
        assert np.all(matrix.sum(axis=1) > 0)
