"""Tests for the SCSGuard n-gram encoder and the LM tokenizers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.features.ngrams import PAD_ID, UNK_ID, HexNgramEncoder
from repro.features.tokenizer import (
    BOS_ID,
    EOS_ID,
    OpcodeTokenizer,
)
from repro.features.tokenizer import PAD_ID as TOK_PAD


class TestHexNgrams:
    def test_tokens_are_six_hex_chars(self):
        encoder = HexNgramEncoder()
        tokens = encoder.tokens(bytes.fromhex("aabbccddeeff"))
        assert tokens == ["aabbcc", "ddeeff"]

    def test_short_bytecode_yields_no_full_token(self):
        encoder = HexNgramEncoder()
        assert encoder.tokens(b"\x01") == []

    def test_overlapping_stride(self):
        encoder = HexNgramEncoder(stride=2)
        tokens = encoder.tokens(bytes.fromhex("aabbccdd"))
        assert tokens == ["aabbcc", "bbccdd"]

    def test_fit_transform_shape_and_padding(self):
        codes = [bytes.fromhex("aabbccddeeff"), bytes.fromhex("aabbcc")]
        encoder = HexNgramEncoder(max_length=4)
        matrix = encoder.fit_transform(codes)
        assert matrix.shape == (2, 4)
        assert matrix[1, 1] == PAD_ID  # second sample has one token

    def test_unknown_token_maps_to_unk(self):
        encoder = HexNgramEncoder(max_length=4).fit([bytes.fromhex("aabbcc")])
        matrix = encoder.transform([bytes.fromhex("112233")])
        assert matrix[0, 0] == UNK_ID

    def test_vocab_cap(self):
        rng = np.random.default_rng(0)
        codes = [bytes(rng.integers(0, 256, size=300, dtype=np.uint8))
                 for __ in range(10)]
        encoder = HexNgramEncoder(vocab_size=16).fit(codes)
        assert encoder.effective_vocab_size <= 16
        matrix = encoder.transform(codes)
        assert matrix.max() < 16

    def test_truncation(self):
        encoder = HexNgramEncoder(max_length=2).fit([bytes(range(30))])
        matrix = encoder.transform([bytes(range(30))])
        assert matrix.shape == (1, 2)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            HexNgramEncoder(chars_per_token=5)
        with pytest.raises(ValueError):
            HexNgramEncoder(vocab_size=2)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            HexNgramEncoder().transform([b"\x00"])

    @given(st.binary(min_size=0, max_size=200))
    def test_ids_always_in_vocab_range(self, code):
        encoder = HexNgramEncoder(max_length=16, vocab_size=64).fit([code])
        matrix = encoder.transform([code])
        assert matrix.min() >= 0
        assert matrix.max() < 64

    @given(st.binary(min_size=0, max_size=200),
           st.sampled_from([(6, None), (6, 2), (4, 3), (2, None)]))
    def test_token_codes_match_string_tokens(self, code, params):
        width, stride = params
        encoder = HexNgramEncoder(chars_per_token=width, stride=stride)
        assert encoder.token_codes(code).tolist() == [
            int(token, 16) for token in encoder.tokens(code)
        ]

    def test_vocabulary_matches_counter_reference(self):
        from collections import Counter

        rng = np.random.default_rng(1)
        codes = [bytes(rng.integers(0, 256, size=90, dtype=np.uint8))
                 for __ in range(6)]
        encoder = HexNgramEncoder(vocab_size=32).fit(codes)
        counts = Counter()
        for code in codes:
            counts.update(encoder.tokens(code))
        expected = {
            token: index + 2
            for index, (token, __) in enumerate(counts.most_common(30))
        }
        assert encoder.vocabulary_ == expected

    def test_cache_served_codes_identical(self):
        from repro.serve.cache import FeatureCache

        rng = np.random.default_rng(2)
        codes = [bytes(rng.integers(0, 256, size=60, dtype=np.uint8))
                 for __ in range(5)]
        plain = HexNgramEncoder(max_length=16).fit_transform(codes)
        cache = FeatureCache()
        encoder = HexNgramEncoder(max_length=16).set_cache(cache)
        cached = encoder.fit_transform(codes)
        assert np.array_equal(plain, cached)
        assert np.array_equal(encoder.transform(codes), plain)
        assert cache.stats.hits > 0


class TestOpcodeTokenizer:
    PROLOGUE = bytes.fromhex("6080604052")

    def test_ids_have_bos_eos(self):
        tokenizer = OpcodeTokenizer(max_length=16).fit([self.PROLOGUE])
        ids = tokenizer.ids(self.PROLOGUE)
        assert ids[0] == BOS_ID
        assert ids[-1] == EOS_ID
        assert len(ids) == 5  # BOS + 3 instructions + EOS

    def test_vocab_size(self):
        tokenizer = OpcodeTokenizer().fit([self.PROLOGUE])
        assert tokenizer.vocab_size == 4 + 2  # reserved + PUSH1 + MSTORE

    def test_alpha_truncates(self):
        tokenizer = OpcodeTokenizer(max_length=4).fit([self.PROLOGUE])
        matrix = tokenizer.encode_alpha([self.PROLOGUE])
        assert matrix.shape == (1, 4)
        assert matrix[0, 0] == BOS_ID

    def test_alpha_pads(self):
        tokenizer = OpcodeTokenizer(max_length=10).fit([self.PROLOGUE])
        matrix = tokenizer.encode_alpha([self.PROLOGUE])
        assert matrix[0, 5] == TOK_PAD
        assert matrix[0, 4] == EOS_ID

    def test_beta_covers_full_sequence(self):
        tokenizer = OpcodeTokenizer(max_length=4, window_stride=2).fit(
            [self.PROLOGUE]
        )
        long_code = self.PROLOGUE * 20
        windows = tokenizer.encode_beta(long_code)
        total_ids = len(tokenizer.ids(long_code))
        assert windows.shape[1] == 4
        # Last window must reach the end of the sequence.
        assert windows.shape[0] == int(np.ceil((total_ids - 4) / 2)) + 1

    def test_beta_short_sequence_single_window(self):
        tokenizer = OpcodeTokenizer(max_length=32).fit([self.PROLOGUE])
        windows = tokenizer.encode_beta(self.PROLOGUE)
        assert windows.shape == (1, 32)

    def test_beta_batch_ownership(self):
        tokenizer = OpcodeTokenizer(max_length=8, window_stride=4).fit(
            [self.PROLOGUE]
        )
        windows, owners = tokenizer.encode_beta_batch(
            [self.PROLOGUE, self.PROLOGUE * 10]
        )
        assert windows.shape[0] == len(owners)
        assert set(owners.tolist()) == {0, 1}
        assert (owners == 0).sum() == 1  # short sample has one window

    def test_unseen_mnemonic_is_unk(self):
        tokenizer = OpcodeTokenizer(max_length=8).fit([self.PROLOGUE])
        ids = tokenizer.ids(b"\x01")  # ADD unseen
        assert ids[1] == 1  # UNK

    def test_not_fitted_raises(self):
        with pytest.raises(RuntimeError):
            OpcodeTokenizer().ids(b"\x00")
        with pytest.raises(RuntimeError):
            __ = OpcodeTokenizer().vocab_size

    def test_bad_max_length(self):
        with pytest.raises(ValueError):
            OpcodeTokenizer(max_length=2)
