"""Tests for the R2D2 and frequency image encoders."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.features.image import (
    FrequencyImageEncoder,
    pixels_needed,
    rgb_image,
    rgb_images,
)


class TestRgbImage:
    def test_shape_and_range(self):
        image = rgb_image(bytes(range(256)), size=16)
        assert image.shape == (16, 16, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_byte_to_pixel_mapping(self):
        image = rgb_image(b"\xff\x00\x80", size=4)
        assert image[0, 0, 0] == pytest.approx(1.0)
        assert image[0, 0, 1] == pytest.approx(0.0)
        assert image[0, 0, 2] == pytest.approx(128 / 255)

    def test_zero_padding(self):
        image = rgb_image(b"\xff", size=4)
        assert image[0, 0, 0] == pytest.approx(1.0)
        assert image.sum() == pytest.approx(1.0)  # everything else zero

    def test_truncation_beyond_capacity(self):
        long_code = b"\x01" * 10_000
        image = rgb_image(long_code, size=4)
        assert image.shape == (4, 4, 3)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            rgb_image(b"\x00", size=0)

    def test_batch_stacking(self):
        batch = rgb_images([b"\x01", b"\x02\x03"], size=8)
        assert batch.shape == (2, 8, 8, 3)

    @given(st.binary(max_size=512), st.integers(min_value=1, max_value=16))
    def test_deterministic(self, code, size):
        assert np.array_equal(rgb_image(code, size), rgb_image(code, size))

    def test_pixels_needed(self):
        assert pixels_needed(b"") == 1
        assert pixels_needed(b"\x00" * 3) == 1
        assert pixels_needed(b"\x00" * 48) == 4


class TestFrequencyEncoder:
    PROLOGUE = bytes.fromhex("6080604052")

    def test_fit_then_transform_shape(self):
        encoder = FrequencyImageEncoder(size=8).fit([self.PROLOGUE])
        image = encoder.transform_one(self.PROLOGUE)
        assert image.shape == (8, 8, 3)

    def test_most_frequent_gets_max_intensity(self):
        # PUSH1 occurs twice, MSTORE once → PUSH1 pixels R == 1.0.
        encoder = FrequencyImageEncoder(size=4).fit([self.PROLOGUE])
        image = encoder.transform_one(self.PROLOGUE)
        flat = image.reshape(-1, 3)
        assert flat[0, 0] == pytest.approx(1.0)   # PUSH1 mnemonic channel
        assert flat[2, 0] == pytest.approx(0.5)   # MSTORE is half as frequent

    def test_operand_channel(self):
        encoder = FrequencyImageEncoder(size=4).fit([self.PROLOGUE])
        image = encoder.transform_one(self.PROLOGUE)
        flat = image.reshape(-1, 3)
        # Operands 0x80 and 0x40 appear once each; "NaN" (MSTORE) once too.
        assert flat[0, 1] == pytest.approx(1.0)
        assert flat[1, 1] == pytest.approx(1.0)

    def test_unseen_category_is_zero(self):
        encoder = FrequencyImageEncoder(size=4).fit([self.PROLOGUE])
        image = encoder.transform_one(b"\x01")  # ADD never seen in training
        assert image.reshape(-1, 3)[0, 0] == 0.0

    def test_lookup_table_frozen_after_fit(self):
        encoder = FrequencyImageEncoder(size=4).fit([self.PROLOGUE])
        before = encoder.transform_one(self.PROLOGUE).copy()
        encoder.transform([b"\x01\x02", b"\x03"])
        after = encoder.transform_one(self.PROLOGUE)
        assert np.array_equal(before, after)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FrequencyImageEncoder(size=4).transform_one(b"\x00")

    def test_truncation_at_capacity(self):
        encoder = FrequencyImageEncoder(size=2).fit([b"\x01" * 100])
        image = encoder.transform_one(b"\x01" * 100)
        assert image.shape == (2, 2, 3)
        assert np.all(image[:, :, 0] == 1.0)  # all four pixels filled

    def test_batch(self):
        encoder = FrequencyImageEncoder(size=4).fit([self.PROLOGUE])
        batch = encoder.transform([self.PROLOGUE, b"\x00"])
        assert batch.shape == (2, 4, 4, 3)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            FrequencyImageEncoder(size=0)
