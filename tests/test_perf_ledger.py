"""Perf-ledger gate: parsing, regression detection, committed baseline.

``benchmarks/ledger.py`` has no package on ``PYTHONPATH=src`` runs, so
it is loaded from its file path.
"""

import importlib.util
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "perf_ledger", REPO / "benchmarks" / "ledger.py"
)
ledger = importlib.util.module_from_spec(_spec)
# dataclasses resolves string annotations through sys.modules, so the
# module must be registered before exec.
sys.modules["perf_ledger"] = ledger
_spec.loader.exec_module(ledger)


def test_parse_summaries_extracts_tagged_json_lines():
    text = "\n".join([
        "collected 1 item",
        'COLD_START {"speedup": 40.0, "bit_identical": true}',
        "1 passed in 1.2s",
        'COLD_START {"speedup": 42.5}',  # later line wins
        "NOT_JSON {broken",
        "lower_case {\"ignored\": 1}",
    ])
    summaries = ledger.parse_summaries(text)
    assert summaries == {"COLD_START": {"speedup": 42.5}}


def test_tracked_metrics_cover_the_seven_gate_benches():
    tags = {metric.tag for metric in ledger.TRACKED}
    assert tags == {
        "SCAN_THROUGHPUT", "STREAM_LATENCY", "PREDICT_THROUGHPUT",
        "COLD_START", "SHADOW_ROLLOUT", "FLEET", "LOOP",
    }


def write_logs(tmp_path, **values):
    defaults = {
        "SCAN_THROUGHPUT": {"speedup_warm_vs_seed_loop": 50000.0},
        "STREAM_LATENCY": {"speedup_warm_vs_seed_poll": 70.0},
        "PREDICT_THROUGHPUT": {"speedup": 6.0, "f32": 2.0},
        "COLD_START": {"speedup": 45.0, "mmap": 4.0},
        "SHADOW_ROLLOUT": {"overhead": 1.7},
        "FLEET": {"scaling": 1.8, "recovery": 1.2,
                  "shared_cache_hit": 1.0},
        "LOOP": {"warm_speedup": 7.0, "promotion_latency": 0.2},
    }
    for tag, payload in values.items():
        defaults[tag].update(payload)
    log = tmp_path / "bench.log"
    log.write_text("\n".join(
        f"{tag} {json.dumps(payload)}" for tag, payload in defaults.items()
    ))
    return log


def test_record_then_clean_check(tmp_path, capsys):
    log = write_logs(tmp_path)
    out = tmp_path / "baseline.json"
    assert ledger.main(["record", str(log), "--out", str(out)]) == 0
    assert ledger.main(
        ["check", str(log), "--baseline", str(out)]
    ) == 0
    baseline = json.loads(out.read_text())
    assert len(baseline["metrics"]) == len(ledger.TRACKED)


def test_check_fails_on_speedup_regression(tmp_path, capsys):
    out = tmp_path / "baseline.json"
    ledger.main(["record", str(write_logs(tmp_path)), "--out", str(out)])
    regressed = write_logs(
        tmp_path, COLD_START={"speedup": 45.0 * 0.7}  # -30% vs 20% band
    )
    assert ledger.main(
        ["check", str(regressed), "--baseline", str(out)]
    ) == 1
    assert "COLD_START.speedup" in capsys.readouterr().err


def test_check_fails_on_overhead_increase(tmp_path, capsys):
    out = tmp_path / "baseline.json"
    ledger.main(["record", str(write_logs(tmp_path)), "--out", str(out)])
    regressed = write_logs(
        tmp_path, SHADOW_ROLLOUT={"overhead": 1.7 * 1.3}
    )
    assert ledger.main(
        ["check", str(regressed), "--baseline", str(out)]
    ) == 1


def test_check_fails_when_a_tracked_metric_vanishes(tmp_path, capsys):
    out = tmp_path / "baseline.json"
    ledger.main(["record", str(write_logs(tmp_path)), "--out", str(out)])
    partial = tmp_path / "partial.log"
    partial.write_text('COLD_START {"speedup": 45.0}')
    assert ledger.main(
        ["check", str(partial), "--baseline", str(out)]
    ) == 1


def test_record_refuses_partial_logs_by_default(tmp_path, capsys):
    partial = tmp_path / "partial.log"
    partial.write_text('COLD_START {"speedup": 45.0}')
    out = tmp_path / "baseline.json"
    assert ledger.main(["record", str(partial), "--out", str(out)]) == 1
    assert ledger.main(
        ["record", str(partial), "--out", str(out), "--allow-missing"]
    ) == 0


def test_collect_merges_shared_tags_per_key(tmp_path):
    """bench_fleet and bench_fault_recovery both print ``FLEET {...}``
    (different keys, different logs); neither may clobber the other."""
    scaling = tmp_path / "fleet.log"
    scaling.write_text('FLEET {"scaling": 1.8, "clients": 4}')
    recovery = tmp_path / "fault.log"
    recovery.write_text('FLEET {"recovery": 1.2, "clients": 2}')
    merged = ledger.collect([str(scaling), str(recovery)])
    assert merged == {
        "FLEET": {"scaling": 1.8, "recovery": 1.2, "clients": 2},
    }


def test_committed_baseline_tracks_every_metric():
    baseline = json.loads((REPO / "BENCH_10.json").read_text())
    names = {metric.name for metric in ledger.TRACKED}
    assert set(baseline["metrics"]) == names
    for entry in baseline["metrics"].values():
        assert entry["value"] > 0
        assert entry["direction"] in ("higher", "lower")
