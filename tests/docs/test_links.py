"""Docs link checker: every relative link and anchor must resolve.

Covers ``README.md`` and ``docs/**/*.md``. External (http/https/mailto)
targets are out of scope — this gate is about the repo not breaking its
own references.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
DOC_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("**/*.md")],
    key=lambda p: p.as_posix(),
)

#: ``[text](target)`` and ``![alt](target)`` inline links.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
FENCE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (basic rules, no dedup)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # code spans keep text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def extract_links(path: pathlib.Path) -> list[str]:
    """Inline link targets, ignoring fenced code blocks."""
    links, in_fence = [], False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            links.extend(LINK.findall(line))
    return links


def anchors_of(path: pathlib.Path) -> set[str]:
    slugs, in_fence = set(), False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match:
            slugs.add(github_slug(match.group(1)))
    return slugs


def test_docs_exist_and_are_linked_from_readme():
    for name in ("architecture.md", "model-store.md", "operations.md"):
        assert (REPO / "docs" / name).is_file(), f"docs/{name} is missing"
        assert f"docs/{name}" in (REPO / "README.md").read_text(), (
            f"README.md does not link docs/{name}"
        )


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[p.relative_to(REPO).as_posix() for p in DOC_FILES]
)
def test_relative_links_resolve(doc):
    problems = []
    for target in extract_links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        dest = doc if not path_part else (doc.parent / path_part).resolve()
        if not dest.exists():
            problems.append(f"{target}: file {path_part!r} not found")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in anchors_of(dest):
                problems.append(
                    f"{target}: no heading for anchor #{fragment} "
                    f"in {dest.name}"
                )
    assert not problems, (
        f"{doc.relative_to(REPO)} has broken links:\n  "
        + "\n  ".join(problems)
    )
