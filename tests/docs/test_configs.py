"""Every shipped deployment config must verify clean — strictly.

Mirrors the CI ``check-config`` job in-process so `pytest` alone
catches a drifting example, and pins the guarantees the docs claim:
zero violations (WARNs included) on everything under
``examples/deploy/``, and machine-readable JSON output.
"""

import json
import pathlib

import pytest

import repro.cli
from repro.deploy import check_config, load_config

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
SHIPPED = sorted(
    [
        *(REPO / "examples" / "deploy").glob("*.toml"),
        *(REPO / "examples" / "deploy").glob("*.json"),
    ],
    key=lambda p: p.name,
)


def test_examples_exist_in_both_formats():
    suffixes = {path.suffix for path in SHIPPED}
    assert ".toml" in suffixes and ".json" in suffixes
    assert len(SHIPPED) >= 3


@pytest.mark.parametrize(
    "path", SHIPPED, ids=[p.name for p in SHIPPED]
)
def test_shipped_config_is_strictly_clean(path):
    report = check_config(load_config(path))
    assert report.violations == (), (
        f"{path.name} ships with violations: "
        + ", ".join(v.rule_id for v in report.violations)
    )


@pytest.mark.parametrize(
    "path", SHIPPED, ids=[p.name for p in SHIPPED]
)
def test_cli_strict_exit_zero(path, capsys):
    exit_code = repro.cli.main(
        ["check-config", "--strict", "--json", str(path)]
    )
    report = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert report["ok"] is True
    assert report["violations"] == []


def test_bucket_example_demonstrates_cache_dir():
    config = load_config(REPO / "examples" / "deploy" / "bucket-fleet.toml")
    assert config.store.scheme == "bucket"
    assert config.store.cache_dir, (
        "the bucket example exists to demonstrate cache_dir (rule D006)"
    )
