"""Execute every fenced ``bash`` block of docs/operations.md, in order.

The runbook promises that a fresh machine can follow it top to bottom;
this test *is* that machine: one scratch directory, the documented
commands verbatim, every block must exit 0. Transcript blocks (fenced as
``text``) are illustrative and not compared — counts and timings vary
with scale — but a command that errors or disappears from the CLI fails
the docs job immediately.
"""

import pathlib
import re
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
RUNBOOK = REPO / "docs" / "operations.md"

BASH_BLOCK = re.compile(r"```bash\n(.*?)```", re.DOTALL)


def bash_blocks() -> list[str]:
    return BASH_BLOCK.findall(RUNBOOK.read_text(encoding="utf-8"))


def test_runbook_has_commands():
    blocks = bash_blocks()
    assert len(blocks) >= 8, "the runbook lost its command blocks"
    assert any("rollout" in block for block in blocks)
    assert any("train" in block for block in blocks)


def test_runbook_runs_end_to_end(tmp_path):
    workdir = tmp_path / "runbook"
    workdir.mkdir()
    # The docs say ``python``; guarantee it means this interpreter.
    bindir = tmp_path / "bin"
    bindir.mkdir()
    (bindir / "python").symlink_to(sys.executable)
    env = {
        "PATH": f"{bindir}:/usr/bin:/bin",
        "PYTHONPATH": str(REPO / "src"),
        "HOME": str(tmp_path),
    }
    for index, block in enumerate(bash_blocks(), start=1):
        result = subprocess.run(
            ["bash", "-euo", "pipefail", "-c", block],
            cwd=workdir,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, (
            f"runbook block {index} failed "
            f"(exit {result.returncode}):\n{block}\n"
            f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
        )


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
