"""Tests for the mini EVM interpreter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evm.assembler import Assembler, assemble
from repro.evm.machine import EVM, CallOutcome, ExecutionContext, Halt

WORD = 1 << 256


def run(program, **kwargs):
    return EVM().execute(assemble(program), **kwargs)


def returned_word(result):
    assert result.halt == Halt.RETURN, result.error
    return int.from_bytes(result.return_data, "big")


def return_top(program):
    """Wrap a program so the top of stack is returned as one word."""
    return program + [
        ("PUSH1", 0),
        "MSTORE",
        ("PUSH1", 32),
        ("PUSH1", 0),
        "RETURN",
    ]


class TestArithmetic:
    @pytest.mark.parametrize(
        "op, a, b, expected",
        [
            ("ADD", 2, 3, 5),
            ("ADD", WORD - 1, 1, 0),  # wraps mod 2^256
            ("MUL", 7, 6, 42),
            ("SUB", 10, 4, 6),
            ("SUB", 0, 1, WORD - 1),  # two's complement wrap
            ("DIV", 7, 2, 3),
            ("DIV", 7, 0, 0),  # EVM defines x/0 = 0
            ("MOD", 7, 3, 1),
            ("MOD", 7, 0, 0),
            ("EXP", 2, 10, 1024),
        ],
    )
    def test_binary_ops(self, op, a, b, expected):
        # Stack order: second operand pushed first.
        program = return_top([("PUSH32", b), ("PUSH32", a), op])
        assert returned_word(run(program)) == expected

    def test_sdiv_negative(self):
        minus_ten = WORD - 10
        program = return_top([("PUSH32", 3), ("PUSH32", minus_ten), "SDIV"])
        assert returned_word(run(program)) == WORD - 3  # -10 // 3 → -3 (trunc)

    def test_smod_negative(self):
        minus_ten = WORD - 10
        program = return_top([("PUSH32", 3), ("PUSH32", minus_ten), "SMOD"])
        assert returned_word(run(program)) == WORD - 1  # sign follows dividend

    def test_addmod_mulmod(self):
        program = return_top(
            [("PUSH1", 8), ("PUSH1", 10), ("PUSH1", 10), "ADDMOD"]
        )
        assert returned_word(run(program)) == 4
        program = return_top(
            [("PUSH1", 8), ("PUSH1", 10), ("PUSH1", 10), "MULMOD"]
        )
        assert returned_word(run(program)) == 4

    def test_signextend(self):
        program = return_top([("PUSH1", 0xFF), ("PUSH1", 0), "SIGNEXTEND"])
        assert returned_word(run(program)) == WORD - 1


class TestComparisonBitwise:
    @pytest.mark.parametrize(
        "op, a, b, expected",
        [
            ("LT", 1, 2, 1),
            ("LT", 2, 1, 0),
            ("GT", 2, 1, 1),
            ("EQ", 5, 5, 1),
            ("AND", 0b1100, 0b1010, 0b1000),
            ("OR", 0b1100, 0b1010, 0b1110),
            ("XOR", 0b1100, 0b1010, 0b0110),
            ("SHL", 1, 4, 1 << 4),  # a=shift? careful below
        ],
    )
    def test_binary(self, op, a, b, expected):
        if op == "SHL":
            # SHL pops shift then value.
            program = return_top([("PUSH1", 1), ("PUSH1", 4), op])
            assert returned_word(run(program)) == 16
            return
        program = return_top([("PUSH32", b), ("PUSH32", a), op])
        assert returned_word(run(program)) == expected

    def test_iszero_and_not(self):
        assert returned_word(run(return_top([("PUSH1", 0), "ISZERO"]))) == 1
        assert returned_word(run(return_top([("PUSH1", 7), "ISZERO"]))) == 0
        assert returned_word(run(return_top([("PUSH1", 0), "NOT"]))) == WORD - 1

    def test_byte(self):
        # BYTE(31, x) is the least significant byte.
        program = return_top([("PUSH2", 0xABCD), ("PUSH1", 31), "BYTE"])
        assert returned_word(run(program)) == 0xCD

    def test_sar_preserves_sign(self):
        minus_four = WORD - 4
        program = return_top([("PUSH32", minus_four), ("PUSH1", 1), "SAR"])
        assert returned_word(run(program)) == WORD - 2

    def test_slt_sgt(self):
        minus_one = WORD - 1
        program = return_top([("PUSH1", 1), ("PUSH32", minus_one), "SLT"])
        assert returned_word(run(program)) == 1  # -1 < 1


class TestStackOps:
    def test_dup_swap(self):
        program = return_top(
            [("PUSH1", 1), ("PUSH1", 2), "DUP2", "ADD", "SWAP1", "POP"]
        )
        assert returned_word(run(program)) == 3  # (2 + dup of 1), swap, pop 1

    def test_push0(self):
        program = return_top([("PUSH0", None)])
        # PUSH0 has no operand; emit via mnemonic string.
        assert returned_word(run(return_top(["PUSH0"]))) == 0

    def test_stack_underflow_halts(self):
        result = run(["POP"])
        assert result.halt == Halt.STACK_UNDERFLOW
        assert not result.success

    def test_stack_overflow_halts(self):
        asm = Assembler().push(1)
        for __ in range(1100):
            asm.emit("DUP1")
        result = EVM(gas_limit=10**9).execute(asm.assemble())
        assert result.halt == Halt.STACK_OVERFLOW


class TestMemoryStorage:
    def test_mstore_mload_roundtrip(self):
        program = return_top(
            [("PUSH2", 0xBEEF), ("PUSH1", 0x20), "MSTORE", ("PUSH1", 0x20), "MLOAD"]
        )
        assert returned_word(run(program)) == 0xBEEF

    def test_mstore8(self):
        program = return_top(
            [("PUSH2", 0x1234), ("PUSH1", 31), "MSTORE8", ("PUSH1", 0), "MLOAD"]
        )
        assert returned_word(run(program)) == 0x34  # low byte only

    def test_msize_grows_in_words(self):
        program = return_top(
            [("PUSH1", 1), ("PUSH1", 33), "MSTORE", "MSIZE"]
        )
        assert returned_word(run(program)) == 96  # 33+32 → 3 words

    def test_sstore_sload(self):
        result = run(
            [("PUSH1", 42), ("PUSH1", 7), "SSTORE", "STOP"]
        )
        assert result.halt == Halt.STOP
        assert result.storage == {7: 42}

    def test_sload_of_unset_key_is_zero(self):
        program = return_top([("PUSH1", 99), "SLOAD"])
        assert returned_word(run(program)) == 0

    def test_initial_storage_visible(self):
        program = return_top([("PUSH1", 5), "SLOAD"])
        result = EVM().execute(assemble(program), storage={5: 123})
        assert returned_word(result) == 123


class TestControlFlow:
    def test_jump_over_invalid(self):
        program = [
            "PUSH0",  # placeholder so offsets are stable
            ("PUSH1", 5),
            "JUMP",
            "INVALID",
            None,  # replaced below
        ]
        asm = (
            Assembler()
            .push_label("end")
            .emit("JUMP")
            .emit("INVALID")
            .label("end")
            .emit("STOP")
        )
        result = EVM().execute(asm.assemble())
        assert result.halt == Halt.STOP

    def test_jumpi_taken_and_not_taken(self):
        def branch(condition):
            # JUMPI pops the target first, then the condition.
            asm = (
                Assembler()
                .push(condition)
                .push_label("yes")
                .emit("JUMPI")
                .push(0)
                .push(0)
                .emit("RETURN")
                .label("yes")
                .push(1)
            )
            asm.extend(
                [("PUSH1", 0), "MSTORE", ("PUSH1", 32), ("PUSH1", 0), "RETURN"]
            )
            return EVM().execute(asm.assemble())

        taken = branch(1)
        assert int.from_bytes(taken.return_data, "big") == 1
        not_taken = branch(0)
        assert not_taken.return_data == b""

    def test_jump_to_non_jumpdest_fails(self):
        result = run([("PUSH1", 0), "JUMP"])
        assert result.halt == Halt.BAD_JUMP

    def test_jump_into_push_immediate_fails(self):
        # Offset 1 is inside the PUSH2 immediate even though byte is 0x5B.
        code = bytes.fromhex("615b5b600156")  # PUSH2 0x5b5b PUSH1 0x01 JUMP
        result = EVM().execute(code + b"\x00")
        assert result.halt == Halt.BAD_JUMP

    def test_loop_terminates_with_counter(self):
        # for i in range(3): ... then return 3
        asm = (
            Assembler()
            .push(0)                      # counter
            .label("loop")
            .push(1).emit("ADD")
            .emit("DUP1").push(3).emit("GT")  # condition: 3 > counter
            .push_label("loop")
            .emit("JUMPI")
        )
        asm.extend([("PUSH1", 0), "MSTORE", ("PUSH1", 32), ("PUSH1", 0), "RETURN"])
        result = EVM().execute(asm.assemble())
        assert returned_word(result) == 3

    def test_infinite_loop_hits_step_limit(self):
        asm = Assembler().label("loop").push_label("loop").emit("JUMP")
        result = EVM(gas_limit=10**12, max_steps=1000).execute(asm.assemble())
        assert result.halt == Halt.OUT_OF_GAS

    def test_gas_exhaustion(self):
        result = EVM(gas_limit=4).execute(assemble([("PUSH1", 1), ("PUSH1", 2), "ADD", "STOP"]))
        assert result.halt == Halt.OUT_OF_GAS


class TestHalts:
    def test_stop(self):
        assert run(["STOP"]).halt == Halt.STOP

    def test_end_of_code(self):
        assert run([("PUSH1", 1)]).halt == Halt.END_OF_CODE

    def test_revert_carries_data(self):
        program = [
            ("PUSH1", 0xAA),
            ("PUSH1", 0),
            "MSTORE",
            ("PUSH1", 32),
            ("PUSH1", 0),
            "REVERT",
        ]
        result = run(program)
        assert result.halt == Halt.REVERT
        assert not result.success
        assert int.from_bytes(result.return_data, "big") == 0xAA

    def test_invalid_opcode(self):
        assert run(["INVALID"]).halt == Halt.INVALID

    def test_undefined_byte(self):
        result = EVM().execute(b"\x0c")
        assert result.halt == Halt.INVALID

    def test_selfdestruct(self):
        result = run([("PUSH1", 0), "SELFDESTRUCT"])
        assert result.halt == Halt.SELFDESTRUCT
        assert result.success


class TestEnvironment:
    def test_caller_callvalue_calldata(self):
        context = ExecutionContext(
            caller=0xABC, callvalue=7, calldata=bytes.fromhex("23b872dd") + b"\x00" * 32
        )
        program = return_top(["CALLER"])
        assert returned_word(run(program, context=context)) == 0xABC
        program = return_top(["CALLVALUE"])
        assert returned_word(run(program, context=context)) == 7
        program = return_top([("PUSH1", 0), "CALLDATALOAD"])
        selector = returned_word(run(program, context=context)) >> (8 * 28)
        assert selector == 0x23B872DD
        program = return_top(["CALLDATASIZE"])
        assert returned_word(run(program, context=context)) == 36

    def test_block_context(self):
        context = ExecutionContext(block_number=123, timestamp=456, chainid=5)
        assert returned_word(run(return_top(["NUMBER"]), context=context)) == 123
        assert returned_word(run(return_top(["TIMESTAMP"]), context=context)) == 456
        assert returned_word(run(return_top(["CHAINID"]), context=context)) == 5

    def test_calldatacopy(self):
        context = ExecutionContext(calldata=b"\x11" * 8)
        program = [
            ("PUSH1", 8), ("PUSH1", 0), ("PUSH1", 0), "CALLDATACOPY",
            ("PUSH1", 0), "MLOAD",
        ] + [("PUSH1", 0), "MSTORE", ("PUSH1", 32), ("PUSH1", 0), "RETURN"]
        value = returned_word(run(program, context=context))
        assert value >> (8 * 24) == int.from_bytes(b"\x11" * 8, "big")

    def test_codecopy_codesize(self):
        code = assemble(return_top(["CODESIZE"]))
        result = EVM().execute(code)
        assert returned_word(result) == len(code)


class TestCallsAndLogs:
    def test_host_answers_call(self):
        calls = []

        def host(mnemonic, args):
            calls.append(mnemonic)
            return CallOutcome(success=True, return_data=b"\x01" * 32)

        program = return_top(
            [
                ("PUSH1", 32),  # retLength
                ("PUSH1", 0),   # retOffset
                ("PUSH1", 0),   # argsLength
                ("PUSH1", 0),   # argsOffset
                ("PUSH1", 0),   # value
                ("PUSH20", 0xDEAD),  # address
                ("PUSH2", 0xFFFF),   # gas
                "CALL",
            ]
        )
        result = EVM(host=host).execute(assemble(program))
        assert returned_word(result) == 1
        assert calls == ["CALL"]

    def test_failed_call_pushes_zero(self):
        host = lambda m, a: CallOutcome(success=False)
        program = return_top(
            [("PUSH1", 0)] * 5 + [("PUSH20", 1), ("PUSH1", 0), "CALL"]
        )
        result = EVM(host=host).execute(assemble(program))
        assert returned_word(result) == 0

    def test_returndatasize_after_call(self):
        host = lambda m, a: CallOutcome(success=True, return_data=b"\xaa" * 7)
        program = return_top(
            [("PUSH1", 0)] * 4 + [("PUSH20", 1), ("PUSH1", 0), "STATICCALL",
             "POP", "RETURNDATASIZE"]
        )
        result = EVM(host=host).execute(assemble(program))
        assert returned_word(result) == 7

    def test_log_records_topics_and_data(self):
        program = [
            ("PUSH1", 0xAB), ("PUSH1", 0), "MSTORE",
            ("PUSH4", 0xDDF252AD),  # topic
            ("PUSH1", 32), ("PUSH1", 0),  # length, offset
            "SWAP2", "SWAP1",
        ]
        # Simpler: topics pushed after offset/length per LOG stack order:
        program = [
            ("PUSH1", 0xAB), ("PUSH1", 0), "MSTORE",
            ("PUSH4", 0xDDF252AD),
            ("PUSH1", 32),
            ("PUSH1", 0),
            "LOG1",
            "STOP",
        ]
        result = run(program)
        assert result.halt == Halt.STOP
        assert len(result.logs) == 1
        topics, data = result.logs[0]
        assert topics == [0xDDF252AD]
        assert int.from_bytes(data, "big") == 0xAB

    def test_create_pushes_address(self):
        program = return_top(
            [("PUSH1", 0), ("PUSH1", 0), ("PUSH1", 0), "CREATE"]
        )
        result = EVM().execute(assemble(program))
        assert result.halt == Halt.RETURN
        assert returned_word(result) > 0


class TestGasAccounting:
    def test_gas_used_is_positive_and_bounded(self):
        result = run(return_top([("PUSH1", 1), ("PUSH1", 2), "ADD"]))
        assert 0 < result.gas_used < 100

    def test_memory_expansion_costs_gas(self):
        small = run(return_top([("PUSH1", 1), ("PUSH1", 0), "MSTORE", ("PUSH1", 0), "MLOAD"]))
        big = run(return_top([("PUSH1", 1), ("PUSH2", 0x2000), "MSTORE", ("PUSH1", 0), "MLOAD"]))
        assert big.gas_used > small.gas_used

    def test_gas_opcode_reports_remaining(self):
        value = returned_word(run(return_top(["GAS"])))
        assert 0 < value <= 10_000_000


class TestProperties:
    @given(st.binary(max_size=128))
    def test_interpreter_is_total(self, code):
        """Any byte soup halts with a well-defined reason (never raises)."""
        result = EVM(gas_limit=50_000, max_steps=5_000).execute(code)
        assert isinstance(result.halt, Halt)

    @given(st.integers(min_value=0, max_value=WORD - 1),
           st.integers(min_value=0, max_value=WORD - 1))
    def test_add_matches_python_mod_2_256(self, a, b):
        program = return_top([("PUSH32", b), ("PUSH32", a), "ADD"])
        assert returned_word(run(program)) == (a + b) % WORD
