"""Tests for the Shanghai opcode registry."""

import math

import pytest

from repro.evm.opcodes import (
    OPCODES,
    OPCODES_BY_NAME,
    SHANGHAI_OPCODE_COUNT,
    dup_opcode,
    is_push,
    is_terminator,
    log_opcode,
    opcode_by_name,
    opcode_by_value,
    push_opcode,
    swap_opcode,
    total_static_gas,
)


class TestRegistryShape:
    def test_shanghai_opcode_count(self):
        assert len(OPCODES) == SHANGHAI_OPCODE_COUNT == 144

    def test_values_are_unique_and_in_byte_range(self):
        assert all(0 <= value <= 0xFF for value in OPCODES)
        assert len({op.mnemonic for op in OPCODES.values()}) == 144

    def test_push_family_is_33_wide(self):
        pushes = [op for op in OPCODES.values() if op.is_push]
        assert len(pushes) == 33
        assert {op.immediate_size for op in pushes} == set(range(33))

    def test_dup_swap_log_families(self):
        assert sum(op.category == "dup" for op in OPCODES.values()) == 16
        assert sum(op.category == "swap" for op in OPCODES.values()) == 16
        assert sum(op.category == "log" for op in OPCODES.values()) == 5

    def test_undefined_gaps_stay_undefined(self):
        # 0x0C-0x0F, 0x1E-0x1F, 0x21-0x2F, 0x49-0x4F, 0xA5-0xEF, 0xF6-0xF9, 0xFB-0xFC
        for value in (0x0C, 0x1E, 0x21, 0x49, 0xA5, 0xF6, 0xFB):
            assert opcode_by_value(value) is None


class TestPaperTableI:
    """Spot-check the rows printed in Table I of the paper."""

    @pytest.mark.parametrize(
        "value, name, gas",
        [
            (0x00, "STOP", 0),
            (0x01, "ADD", 3),
            (0x02, "MUL", 5),
            (0xFD, "REVERT", 0),
            (0xFF, "SELFDESTRUCT", 5000),
        ],
    )
    def test_static_rows(self, value, name, gas):
        opcode = OPCODES[value]
        assert opcode.mnemonic == name
        assert opcode.gas == gas

    def test_invalid_gas_is_nan(self):
        invalid = OPCODES[0xFE]
        assert invalid.mnemonic == "INVALID"
        assert invalid.gas is None
        assert math.isnan(invalid.gas_or_nan)

    def test_push0_is_shanghai_addition(self):
        push0 = OPCODES[0x5F]
        assert push0.mnemonic == "PUSH0"
        assert push0.immediate_size == 0
        assert push0.pushes == 1


class TestLookups:
    def test_by_name_roundtrip(self):
        for opcode in OPCODES.values():
            assert opcode_by_name(opcode.mnemonic) is opcode

    def test_by_name_is_case_insensitive(self):
        assert opcode_by_name("mstore").mnemonic == "MSTORE"

    def test_legacy_aliases(self):
        assert opcode_by_name("KECCAK256").mnemonic == "SHA3"
        assert opcode_by_name("DIFFICULTY").mnemonic == "PREVRANDAO"
        assert opcode_by_name("SUICIDE").mnemonic == "SELFDESTRUCT"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            opcode_by_name("NOTANOPCODE")

    @pytest.mark.parametrize("width", [0, 1, 16, 32])
    def test_push_opcode_widths(self, width):
        opcode = push_opcode(width)
        assert opcode.immediate_size == width
        assert opcode.value == 0x5F + width

    @pytest.mark.parametrize("bad", [-1, 33])
    def test_push_opcode_rejects_bad_width(self, bad):
        with pytest.raises(ValueError):
            push_opcode(bad)

    def test_dup_swap_log_helpers(self):
        assert dup_opcode(1).mnemonic == "DUP1"
        assert dup_opcode(16).mnemonic == "DUP16"
        assert swap_opcode(3).mnemonic == "SWAP3"
        assert log_opcode(3).mnemonic == "LOG3"
        assert log_opcode(3).gas == 1500
        with pytest.raises(ValueError):
            dup_opcode(17)
        with pytest.raises(ValueError):
            swap_opcode(0)
        with pytest.raises(ValueError):
            log_opcode(5)


class TestStackEffects:
    def test_dup_grows_stack_by_one(self):
        for n in range(1, 17):
            opcode = dup_opcode(n)
            assert opcode.pushes - opcode.pops == 1

    def test_swap_is_stack_neutral(self):
        for n in range(1, 17):
            opcode = swap_opcode(n)
            assert opcode.pushes == opcode.pops

    def test_call_pops_seven(self):
        assert opcode_by_name("CALL").pops == 7
        assert opcode_by_name("DELEGATECALL").pops == 6
        assert opcode_by_name("STATICCALL").pops == 6


class TestPredicates:
    def test_is_push_range(self):
        assert is_push(0x5F) and is_push(0x7F)
        assert not is_push(0x5E) and not is_push(0x80)

    def test_terminators(self):
        for name in ("STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT", "JUMP"):
            assert is_terminator(opcode_by_name(name).value)
        assert not is_terminator(opcode_by_name("JUMPI").value)

    def test_total_static_gas(self):
        # PUSH1 PUSH1 MSTORE = 3 + 3 + 3
        assert total_static_gas([0x60, 0x60, 0x52]) == 9

    def test_total_static_gas_nan_propagates(self):
        assert math.isnan(total_static_gas([0x60, 0xFE]))
        assert math.isnan(total_static_gas([0x0C]))  # undefined byte
