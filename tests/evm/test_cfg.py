"""Tests for control-flow-graph recovery."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evm.assembler import Assembler, assemble
from repro.evm.cfg import build_cfg


def simple_branch() -> bytes:
    """CALLVALUE ? revert : stop — two-way branch."""
    asm = (
        Assembler()
        .emit("CALLVALUE")
        .push_label("fail")
        .emit("JUMPI")
        .emit("STOP")
        .label("fail")
        .push(0)
        .emit("DUP1")
        .emit("REVERT")
    )
    return asm.assemble()


class TestBlocks:
    def test_straight_line_is_one_block(self):
        cfg = build_cfg(assemble([("PUSH1", 1), ("PUSH1", 2), "ADD", "STOP"]))
        assert cfg.block_count() == 1
        assert cfg.blocks[0].terminator == "STOP"

    def test_branch_splits_blocks(self):
        cfg = build_cfg(simple_branch())
        assert cfg.block_count() == 3  # entry, stop, revert
        assert cfg.edge_count() == 2   # jump + fallthrough

    def test_jumpdest_starts_block(self):
        cfg = build_cfg(simple_branch())
        jumpdest_blocks = [
            b for b in cfg.blocks.values()
            if b.instructions[0].mnemonic == "JUMPDEST"
        ]
        assert len(jumpdest_blocks) == 1

    def test_block_bounds(self):
        code = assemble([("PUSH1", 1), "STOP"])
        cfg = build_cfg(code)
        block = cfg.blocks[0]
        assert block.start == 0
        assert block.end == len(code)
        assert len(block) == 2

    def test_empty_bytecode(self):
        cfg = build_cfg(b"")
        assert cfg.block_count() == 0
        assert cfg.reachable_blocks() == set()


class TestEdges:
    def test_direct_jump_edge(self):
        asm = (
            Assembler()
            .push_label("end")
            .emit("JUMP")
            .emit("INVALID")
            .label("end")
            .emit("STOP")
        )
        cfg = build_cfg(asm.assemble())
        kinds = {d["kind"] for __, __, d in cfg.graph.edges(data=True)}
        assert kinds == {"jump"}
        # INVALID block is unreachable.
        assert len(cfg.dead_blocks()) == 1

    def test_jumpi_has_two_successors(self):
        cfg = build_cfg(simple_branch())
        assert cfg.graph.out_degree(0) == 2

    def test_indirect_jump_flagged(self):
        # MLOAD result as jump target: not statically resolvable.
        code = assemble([("PUSH1", 0), "MLOAD", "JUMP"])
        cfg = build_cfg(code)
        assert cfg.blocks[0].has_indirect_jump

    def test_terminal_blocks_have_no_successors(self):
        cfg = build_cfg(simple_branch())
        for block in cfg.blocks.values():
            if block.terminator in ("STOP", "REVERT"):
                assert cfg.graph.out_degree(block.start) == 0


class TestAnalyses:
    def test_reachability(self):
        cfg = build_cfg(simple_branch())
        assert cfg.reachable_blocks() == set(cfg.blocks)

    def test_dead_metadata_section(self):
        code = assemble(["STOP"]) + bytes.fromhex("a264697066735822aabb")
        cfg = build_cfg(code)
        assert cfg.dead_blocks()  # the trailer decodes to unreachable code

    def test_loop_detected(self):
        asm = (
            Assembler()
            .label("loop")
            .push(1)
            .push_label("loop")
            .emit("JUMPI")
            .emit("STOP")
        )
        cfg = build_cfg(asm.assemble())
        assert len(cfg.loops()) == 1

    def test_cyclomatic_complexity_grows_with_branches(self):
        straight = build_cfg(assemble(["STOP"]))
        branched = build_cfg(simple_branch())
        assert branched.cyclomatic_complexity() > straight.cyclomatic_complexity()

    def test_dispatcher_fanout_counts_functions(self):
        from repro.datagen.families import FAMILIES, generate_contract
        from repro.datagen.solidity_like import Environment
        import numpy as np

        env = Environment(rng=np.random.default_rng(0), tokens=(0xAA << 96,))
        bytecode, __ = generate_contract(FAMILIES["erc20_token"], env, 0)
        cfg = build_cfg(bytecode)
        # The ERC-20 family generates 4-7 functions; the dispatcher chain
        # contributes at least that many JUMPI decisions (plus guards).
        assert cfg.dispatcher_fanout() >= 4

    @given(st.binary(max_size=256))
    def test_cfg_is_total(self, code):
        cfg = build_cfg(code)
        # Every instruction belongs to exactly one block.
        total = sum(len(b) for b in cfg.blocks.values())
        from repro.evm.disassembler import disassemble

        assert total == len(disassemble(code))
