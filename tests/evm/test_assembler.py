"""Tests for the assembler, including round-trips through the disassembler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evm.assembler import Assembler, assemble
from repro.evm.disassembler import disassemble
from repro.evm.errors import AssemblerError


class TestBasicEmission:
    def test_paper_prologue(self):
        code = assemble([("PUSH1", 0x80), ("PUSH1", 0x40), "MSTORE"])
        assert code.hex() == "6080604052"

    def test_push_widths_inferred(self):
        asm = Assembler()
        asm.push(0x1234)
        assert asm.assemble().hex() == "611234"

    def test_push_zero_uses_push0(self):
        assert Assembler().push(0).assemble() == b"\x5f"

    def test_push_zero_with_forced_width(self):
        assert Assembler().push(0, width=1).assemble() == b"\x60\x00"

    def test_push_hex_string_operand(self):
        code = assemble([("PUSH4", "0x23b872dd")])
        assert code.hex() == "6323b872dd"

    def test_push_bytes_operand(self):
        code = assemble([("PUSH2", b"\xab\xcd")])
        assert code.hex() == "61abcd"

    def test_operand_left_padded(self):
        code = assemble([("PUSH4", 0x01)])
        assert code.hex() == "6300000001"

    def test_raw_bytes(self):
        code = Assembler().raw(b"\xde\xad").assemble()
        assert code == b"\xde\xad"


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble(["NOTREAL"])

    def test_operand_on_non_push(self):
        with pytest.raises(AssemblerError):
            assemble([("ADD", 1)])

    def test_push_missing_operand(self):
        with pytest.raises(AssemblerError):
            assemble([("PUSH1", None)])

    def test_operand_too_wide(self):
        with pytest.raises(AssemblerError):
            assemble([("PUSH1", 0x1234)])

    def test_negative_operand(self):
        with pytest.raises(AssemblerError):
            Assembler().push(-1)

    def test_duplicate_label(self):
        asm = Assembler().label("a").label("a")
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_undefined_label(self):
        asm = Assembler().push_label("missing")
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_bad_program_item(self):
        with pytest.raises(AssemblerError):
            assemble([42])


class TestLabels:
    def test_forward_jump(self):
        asm = (
            Assembler()
            .push_label("end")
            .emit("JUMP")
            .emit("INVALID")
            .label("end")
            .emit("STOP")
        )
        code = asm.assemble()
        # PUSH2 0x0005 JUMP INVALID JUMPDEST STOP
        assert code.hex() == "61000556fe5b00"

    def test_backward_jump(self):
        asm = (
            Assembler()
            .label("loop")
            .push_label("loop")
            .emit("JUMP")
        )
        code = asm.assemble()
        assert code.hex() == "5b61000056"

    def test_label_offsets_match_jumpdests(self):
        from repro.evm.disassembler import Disassembler

        asm = (
            Assembler()
            .push(1)
            .label("a")
            .push(2)
            .label("b")
            .emit("STOP")
        )
        code = asm.assemble()
        dests = Disassembler(code).jump_destinations()
        assert len(dests) == 2


class TestRoundTrip:
    def test_assemble_disassemble_roundtrip(self):
        program = [
            ("PUSH1", 0x80),
            ("PUSH1", 0x40),
            "MSTORE",
            "CALLVALUE",
            "ISZERO",
            ("PUSH2", 0x0010),
            "JUMPI",
            ("PUSH1", 0),
            "DUP1",
            "REVERT",
        ]
        code = assemble(program)
        mnemonics = [i.mnemonic for i in disassemble(code)]
        assert mnemonics == [
            "PUSH1", "PUSH1", "MSTORE", "CALLVALUE", "ISZERO",
            "PUSH2", "JUMPI", "PUSH1", "DUP1", "REVERT",
        ]

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=24))
    def test_pushed_values_survive_roundtrip(self, values):
        asm = Assembler()
        for value in values:
            asm.push(value)
        instructions = disassemble(asm.assemble())
        decoded = [i.operand_int if i.operand else 0 for i in instructions]
        assert decoded == values
