"""Tests for the bytecode disassembler (the BDM's core)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

import numpy as np

from repro.evm.disassembler import (
    MNEMONIC_IDS,
    MNEMONIC_TABLE,
    Disassembler,
    decode_mnemonic_ids,
    disassemble,
    disassemble_mnemonics,
    ids_to_mnemonics,
    normalize_bytecode,
)
from repro.evm.errors import DisassemblyError


class TestNormalize:
    def test_bytes_pass_through(self):
        assert normalize_bytecode(b"\x60\x80") == b"\x60\x80"

    def test_hex_with_prefix(self):
        assert normalize_bytecode("0x6080") == b"\x60\x80"

    def test_hex_without_prefix(self):
        assert normalize_bytecode("6080") == b"\x60\x80"

    def test_whitespace_tolerated(self):
        assert normalize_bytecode("  0x6080\n") == b"\x60\x80"

    def test_internal_whitespace_tolerated(self):
        # bytes.fromhex accepts spaced hex; the nibble count must be taken
        # after whitespace removal, not before.
        assert normalize_bytecode("60 80") == b"\x60\x80"
        assert normalize_bytecode("0x60 80 60 40 52") == bytes.fromhex(
            "6080604052"
        )
        assert normalize_bytecode("60\t80\n60 40 52") == bytes.fromhex(
            "6080604052"
        )

    def test_odd_length_rejected(self):
        with pytest.raises(DisassemblyError):
            normalize_bytecode("0x608")

    def test_odd_nibbles_with_internal_whitespace_reported(self):
        # "6 08" is 3 nibbles — odd — even though its raw length is even.
        with pytest.raises(DisassemblyError, match="3 nibbles"):
            normalize_bytecode("0x6 08")

    def test_non_hex_rejected(self):
        with pytest.raises(DisassemblyError):
            normalize_bytecode("0xzz")

    def test_empty_ok(self):
        assert normalize_bytecode("0x") == b""
        assert disassemble("0x") == []


class TestPaperExample:
    """§III: 0x6080604052 → (PUSH1,0x80,3), (PUSH1,0x40,3), (MSTORE,NaN,3)."""

    def test_instruction_sequence(self):
        instructions = disassemble("0x6080604052")
        assert [str(i) for i in instructions] == [
            "PUSH1 0x80",
            "PUSH1 0x40",
            "MSTORE",
        ]

    def test_triples(self):
        triples = [i.as_triple() for i in disassemble("0x6080604052")]
        assert triples[0] == ("PUSH1", "0x80", 3.0)
        assert triples[1] == ("PUSH1", "0x40", 3.0)
        assert triples[2][0] == "MSTORE"
        assert triples[2][1] == "NaN"
        assert triples[2][2] == 3.0

    def test_offsets(self):
        offsets = [i.offset for i in disassemble("0x6080604052")]
        assert offsets == [0, 2, 4]


class TestImmediates:
    def test_push32_consumes_32_bytes(self):
        code = bytes([0x7F]) + bytes(range(32)) + b"\x00"
        instructions = disassemble(code)
        assert instructions[0].mnemonic == "PUSH32"
        assert instructions[0].operand == bytes(range(32))
        assert instructions[1].mnemonic == "STOP"

    def test_push0_has_no_immediate(self):
        instructions = disassemble(b"\x5f\x00")
        assert instructions[0].mnemonic == "PUSH0"
        assert instructions[0].operand == b""
        assert instructions[1].mnemonic == "STOP"

    def test_truncated_push_is_flagged(self):
        instructions = disassemble(b"\x61\xab")  # PUSH2 with 1 byte left
        assert len(instructions) == 1
        assert instructions[0].is_truncated
        assert instructions[0].operand == b"\xab"

    def test_operand_int_and_hex(self):
        instruction = disassemble(b"\x61\x01\x02")[0]
        assert instruction.operand_int == 0x0102
        assert instruction.operand_hex == "0x0102"

    def test_jumpdest_inside_push_immediate_is_not_a_destination(self):
        # PUSH2 0x5B5B STOP — the 0x5B bytes are data, not JUMPDESTs.
        dests = Disassembler(b"\x61\x5b\x5b\x00").jump_destinations()
        assert dests == frozenset()

    def test_real_jumpdest_found(self):
        dests = Disassembler(b"\x00\x5b\x00").jump_destinations()
        assert dests == frozenset({1})


class TestUndefinedBytes:
    def test_undefined_maps_to_invalid(self):
        instructions = disassemble(b"\x0c")
        assert instructions[0].mnemonic == "INVALID"
        assert instructions[0].is_undefined_byte
        assert instructions[0].raw_byte == 0x0C

    def test_designated_invalid_is_not_flagged_undefined(self):
        instructions = disassemble(b"\xfe")
        assert instructions[0].mnemonic == "INVALID"
        assert not instructions[0].is_undefined_byte

    def test_metadata_trailer_disassembles(self):
        # Typical solc CBOR metadata bytes decode without raising.
        trailer = bytes.fromhex("a264697066735822")
        assert len(disassemble(trailer)) > 0


class TestCsv:
    def test_header_and_rows(self):
        csv = Disassembler("0x6080604052").to_csv()
        lines = csv.strip().split("\n")
        assert lines[0] == "offset,mnemonic,operand,gas"
        assert lines[1] == "0,PUSH1,0x80,3"
        assert lines[3] == "4,MSTORE,NaN,3"

    def test_invalid_gas_serializes_as_nan(self):
        csv = Disassembler(b"\xfe").to_csv()
        assert csv.strip().split("\n")[1] == "0,INVALID,NaN,NaN"


class TestMnemonicIds:
    def test_id_table_is_stable_and_complete(self):
        assert len(MNEMONIC_TABLE) == 144
        assert list(MNEMONIC_TABLE) == sorted(MNEMONIC_TABLE)
        assert all(
            MNEMONIC_TABLE[i] == name for name, i in MNEMONIC_IDS.items()
        )

    def test_paper_example_ids(self):
        ids = decode_mnemonic_ids("0x6080604052")
        assert ids.dtype == np.uint8
        assert ids_to_mnemonics(ids) == ["PUSH1", "PUSH1", "MSTORE"]

    def test_undefined_byte_decodes_to_invalid_id(self):
        assert ids_to_mnemonics(decode_mnemonic_ids(b"\x0c")) == ["INVALID"]

    def test_empty_bytecode(self):
        assert decode_mnemonic_ids(b"").size == 0

    @given(st.binary(max_size=512))
    def test_single_pass_ids_match_instruction_walk(self, code):
        assert ids_to_mnemonics(decode_mnemonic_ids(code)) == [
            i.mnemonic for i in disassemble(code)
        ]


class TestProperties:
    @given(st.binary(max_size=512))
    def test_decoding_is_total_and_covers_every_byte(self, code):
        instructions = disassemble(code)
        consumed = sum(i.size for i in instructions)
        assert consumed == len(code)

    @given(st.binary(max_size=512))
    def test_offsets_are_strictly_increasing_and_consistent(self, code):
        instructions = disassemble(code)
        cursor = 0
        for instruction in instructions:
            assert instruction.offset == cursor
            cursor = instruction.next_offset

    @given(st.binary(max_size=256))
    def test_mnemonics_match_instructions(self, code):
        assert disassemble_mnemonics(code) == [
            i.mnemonic for i in disassemble(code)
        ]

    @given(st.binary(max_size=256))
    def test_gas_is_number_or_nan(self, code):
        for instruction in disassemble(code):
            gas = instruction.gas
            assert math.isnan(gas) or gas >= 0
