"""Unit coverage for the fault-injection plan machinery.

Everything here is pure in-process behaviour: matching, count-based
triggers, seeded probability, JSON round-trips, and the install /
environment-propagation contract the fleet chaos suite depends on.
"""

import os
import subprocess
import sys

import pytest

from repro import faults
from repro.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    active_plan,
    clear_plan,
    install_plan,
)


@pytest.fixture(autouse=True)
def no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


class TestTriggering:
    def test_unmatched_site_never_fires(self):
        plan = FaultPlan([FaultSpec("store.get", "error")])
        assert plan.fire("worker.scan") is None
        assert plan.fire("store.get") is not None

    def test_after_skips_the_first_n_hits(self):
        plan = FaultPlan([FaultSpec("worker.scan", "kill", after=2)])
        assert plan.fire("worker.scan") is None
        assert plan.fire("worker.scan") is None
        spec = plan.fire("worker.scan")
        assert spec is not None and spec.action == "kill"
        # Unbounded count: keeps firing from then on.
        assert plan.fire("worker.scan") is spec

    def test_count_bounds_total_firings(self):
        plan = FaultPlan([FaultSpec("store.get", "error", count=2)])
        assert plan.fire("store.get") is not None
        assert plan.fire("store.get") is not None
        assert plan.fire("store.get") is None

    def test_match_is_a_context_substring(self):
        plan = FaultPlan([FaultSpec("store.get", "error",
                                    match="production")])
        assert plan.fire("store.get", context="tags.json") is None
        assert plan.fire("store.get", context="production-v3.npz")

    def test_worker_filter(self):
        plan = FaultPlan([FaultSpec("worker.scan", "kill", worker=1)])
        assert plan.fire("worker.scan", worker=0) is None
        assert plan.fire("worker.scan", worker=1) is not None

    def test_first_matching_spec_wins(self):
        plan = FaultPlan([
            FaultSpec("store.get", "error", match="a", status=500),
            FaultSpec("store.get", "error", status=503),
        ])
        assert plan.fire("store.get", context="xyz").status == 503
        assert plan.fire("store.get", context="abc").status == 500

    def test_seeded_probability_is_reproducible(self):
        def draws(seed):
            plan = FaultPlan(
                [FaultSpec("sink.emit", "error", probability=0.5)],
                seed=seed,
            )
            return [plan.fire("sink.emit") is not None
                    for _ in range(64)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)
        assert any(draws(7)) and not all(draws(7))

    def test_unknown_site_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan([FaultSpec("no.such.site", "error")])


class TestSerialization:
    def test_json_round_trip_preserves_specs_and_seed(self):
        plan = FaultPlan(
            [
                FaultSpec("worker.scan", "kill", worker=1, after=3),
                FaultSpec("store.get", "error", match="prod", count=4,
                          status=503),
                FaultSpec("sink.emit", "stall", delay=0.25),
            ],
            seed=42,
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == 42
        assert clone.specs == plan.specs

    def test_counters_do_not_serialize(self):
        plan = FaultPlan([FaultSpec("store.get", "error")])
        plan.fire("store.get")
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.specs[0].hits == 0
        assert clone.specs[0].fired == 0
        # And counters never break spec equality.
        assert clone.specs == plan.specs


class TestInstallation:
    def test_install_exports_to_environment(self):
        plan = install_plan(FaultPlan([FaultSpec("store.get", "error")]))
        assert active_plan() is plan
        assert FAULT_PLAN_ENV in os.environ
        clear_plan()
        assert active_plan() is None
        assert FAULT_PLAN_ENV not in os.environ

    def test_installed_context_manager_clears(self):
        plan = FaultPlan([FaultSpec("store.get", "error")])
        with plan.installed():
            assert active_plan() is plan
        assert active_plan() is None

    def test_module_fire_fast_path_without_plan(self):
        assert faults.fire("store.get", context="anything") is None

    def test_module_fire_sleeps_for_delay_actions(self):
        naps = []
        with FaultPlan([FaultSpec("sink.emit", "stall",
                                  delay=1.5)]).installed():
            spec = faults.fire("sink.emit", sleep=naps.append)
        assert spec.action == "stall"
        assert naps == [1.5]

    def test_child_process_loads_plan_from_environment(self):
        """The spawn-propagation contract: env var alone is enough."""
        plan = FaultPlan([FaultSpec("store.get", "error", status=503)])
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        env[FAULT_PLAN_ENV] = plan.to_json()
        probe = (
            "from repro import faults\n"
            "spec = faults.fire('store.get', context='production')\n"
            "print(spec.status if spec else 'none')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", probe], env=env,
            capture_output=True, text=True, timeout=60,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "503"
