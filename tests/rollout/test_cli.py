"""The ``phishinghook rollout`` workflow across CLI process boundaries."""

import json

import pytest

from repro.artifacts import ModelStore
from repro.cli import main


@pytest.fixture(scope="module")
def stocked(tmp_path_factory):
    """Three real ``train`` runs: production, a parity candidate (same
    corpus, smaller holdout), and a distribution-shifted regression
    candidate (different corpus seed)."""
    root = tmp_path_factory.mktemp("rollout-cli") / "store"
    url = str(root)
    runs = (
        (["--seed", "0"], "production"),
        (["--seed", "0", "--holdout", "0.15"], "parity"),
        (["--seed", "1"], "shifted"),
    )
    for extra, tag in runs:
        code = main([
            "train", "--model", "Random Forest", "--contracts", "80",
            "--tag", tag, "--store", url, *extra,
        ])
        assert code == 0
    store = ModelStore(url)
    tags = store.tags()
    return url, tags["production"], tags["parity"], tags["shifted"]


def reset_tags(url, production, candidate):
    store = ModelStore(url)
    store.tag("production", production)
    store.tag("candidate", candidate)


def test_start_with_manual_policy_holds(stocked, capsys):
    url, production, parity, __ = stocked
    reset_tags(url, production, parity)
    code = main([
        "rollout", "--store", url, "start",
        "--contracts", "80", "--shards", "2", "--policy", "manual",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "shadow-scored" in out
    assert "0 dropped" in out
    assert "state      shadowing" in out
    assert "holding" in out
    assert ModelStore(url).tags()["production"] == production


def test_status_reads_persisted_record(stocked, capsys):
    url, production, parity, __ = stocked
    reset_tags(url, production, parity)
    main([
        "rollout", "--store", url, "start",
        "--contracts", "80", "--policy", "manual",
    ])
    capsys.readouterr()
    code = main(["rollout", "--store", url, "status", "--json"])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["state"] == "shadowing"
    assert record["candidate_version"] == parity
    assert record["comparison"]["events"] > 0
    assert record["policy"]["policy"] == "ManualHoldPolicy"


def test_operator_promote_retags_production(stocked, capsys):
    url, production, parity, __ = stocked
    reset_tags(url, production, parity)
    main([
        "rollout", "--store", url, "start",
        "--contracts", "80", "--policy", "manual",
    ])
    capsys.readouterr()
    code = main(["rollout", "--store", url, "promote"])
    out = capsys.readouterr().out
    assert code == 0
    assert "production ->" in out
    assert ModelStore(url).tags()["production"] == parity
    # A decided rollout cannot be decided again.
    assert main(["rollout", "--store", url, "abort"]) == 2


def test_parity_policy_auto_promotes_with_defaults(stocked, capsys):
    url, production, parity, __ = stocked
    reset_tags(url, production, parity)
    code = main(["rollout", "--store", url, "start", "--contracts", "80"])
    out = capsys.readouterr().out
    assert code == 0
    assert "promoted: tag 'production'" in out
    assert "zero dropped batches" in out
    assert ModelStore(url).tags()["production"] == parity


def test_regressed_candidate_auto_aborts(stocked, capsys):
    url, production, __, shifted = stocked
    reset_tags(url, production, shifted)
    code = main(["rollout", "--store", url, "start", "--contracts", "80"])
    out = capsys.readouterr().out
    assert code == 0
    assert "state      aborted" in out
    assert "regression" in out
    assert "production serving untouched" in out
    assert ModelStore(url).tags()["production"] == production


def test_start_resumes_evidence_for_same_pair(stocked, capsys):
    url, production, parity, __ = stocked
    reset_tags(url, production, parity)
    main([
        "rollout", "--store", url, "start",
        "--contracts", "80", "--policy", "manual",
    ])
    capsys.readouterr()
    main(["rollout", "--store", url, "status", "--json"])
    first = json.loads(capsys.readouterr().out)["comparison"]["events"]
    code = main([
        "rollout", "--store", url, "start",
        "--contracts", "80", "--policy", "manual",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert f"resuming shadow evidence: {first} events" in out
    main(["rollout", "--store", url, "status", "--json"])
    second = json.loads(capsys.readouterr().out)["comparison"]["events"]
    assert second == 2 * first  # the reruns accumulate, not restart


def test_abort_leaves_production_untouched(stocked, capsys):
    url, production, parity, __ = stocked
    reset_tags(url, production, parity)
    main([
        "rollout", "--store", url, "start",
        "--contracts", "80", "--policy", "manual",
    ])
    capsys.readouterr()
    assert main(["rollout", "--store", url, "abort"]) == 0
    assert "aborted" in capsys.readouterr().out
    assert ModelStore(url).tags()["production"] == production


def test_status_without_rollout_fails(tmp_path, capsys):
    empty = tmp_path / "empty-store"
    assert main(["rollout", "--store", str(empty), "status"]) == 1
    assert "no rollout" in capsys.readouterr().err
