"""Rollout policies: the promote/abort/hold rules, written as tests."""

import pytest

from repro.rollout import (
    ABORT,
    HOLD,
    PROMOTE,
    AdaptivePromotionPolicy,
    Decision,
    ManualHoldPolicy,
    MetricParityPolicy,
    ShadowComparison,
)


def comparison_with(events, agreements, divergence_total=0.0):
    comparison = ShadowComparison()
    comparison.events = events
    comparison.agreements = agreements
    comparison.divergence_total = divergence_total
    return comparison


@pytest.fixture
def policy():
    return MetricParityPolicy(
        min_events=100,
        promote_agreement=0.98,
        abort_agreement=0.90,
        max_mean_divergence=0.05,
    )


class TestMetricParityPolicy:
    def test_holds_below_evidence_floor(self, policy):
        # Even perfect agreement cannot promote on thin evidence …
        decision = policy.decide(comparison_with(99, 99))
        assert decision.action == HOLD
        # … and even terrible agreement cannot abort on thin evidence.
        decision = policy.decide(comparison_with(99, 10))
        assert decision.action == HOLD

    def test_promotes_on_parity(self, policy):
        decision = policy.decide(
            comparison_with(200, 199, divergence_total=200 * 0.01)
        )
        assert decision.action == PROMOTE
        assert "parity" in decision.reason

    def test_aborts_on_regression(self, policy):
        decision = policy.decide(comparison_with(200, 150))
        assert decision.action == ABORT
        assert "regression" in decision.reason

    def test_holds_in_gray_band(self, policy):
        # Agreement between the abort floor and the promote bar.
        decision = policy.decide(comparison_with(200, 190))
        assert decision.action == HOLD

    def test_divergence_blocks_promotion(self, policy):
        # Perfect verdict agreement, but probabilities drifted.
        decision = policy.decide(
            comparison_with(200, 200, divergence_total=200 * 0.2)
        )
        assert decision.action == HOLD
        assert "divergence" in decision.reason

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MetricParityPolicy(min_events=0)
        with pytest.raises(ValueError):
            MetricParityPolicy(promote_agreement=0.8, abort_agreement=0.9)
        with pytest.raises(ValueError):
            MetricParityPolicy(max_mean_divergence=-0.1)

    def test_describe_records_parameters(self, policy):
        description = policy.describe()
        assert description["policy"] == "MetricParityPolicy"
        assert description["min_events"] == 100
        assert description["promote_agreement"] == 0.98


def drift_comparison(events, production_only, candidate_only=0):
    comparison = ShadowComparison()
    comparison.events = events
    comparison.production_only = production_only
    comparison.candidate_only = candidate_only
    comparison.agreements = events - production_only - candidate_only
    return comparison


class TestAdaptivePromotionPolicy:
    """The loop's gate: loss-averse, not symmetric — a candidate
    retrained *for* drifted traffic may raise new alerts freely but
    must not drop production's."""

    @pytest.fixture
    def adaptive(self):
        return AdaptivePromotionPolicy(min_events=100, max_lost_rate=0.02)

    def test_holds_below_evidence_floor(self, adaptive):
        decision = adaptive.decide(drift_comparison(99, 0))
        assert decision.action == HOLD
        assert "99/100" in decision.reason

    def test_new_alerts_do_not_block_promotion(self, adaptive):
        # 40 % candidate-only flags would abort any parity policy; here
        # they are the adaptation the loop exists for.
        decision = adaptive.decide(drift_comparison(200, 0,
                                                    candidate_only=80))
        assert decision.action == PROMOTE
        assert "adaptation" in decision.reason

    def test_lost_alerts_abort(self, adaptive):
        # 5 dropped alerts over 200 events = 2.5 % > the 2 % cap.
        decision = adaptive.decide(drift_comparison(200, 5))
        assert decision.action == ABORT
        assert "lost-alert rate" in decision.reason

    def test_lost_rate_exactly_at_cap_promotes(self, adaptive):
        decision = adaptive.decide(drift_comparison(200, 4))
        assert decision.action == PROMOTE

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdaptivePromotionPolicy(min_events=0)
        with pytest.raises(ValueError):
            AdaptivePromotionPolicy(max_lost_rate=1.5)
        with pytest.raises(ValueError):
            AdaptivePromotionPolicy(max_lost_rate=-0.1)

    def test_describe_records_parameters(self, adaptive):
        description = adaptive.describe()
        assert description["policy"] == "AdaptivePromotionPolicy"
        assert description["min_events"] == 100
        assert description["max_lost_rate"] == 0.02


class TestManualHoldPolicy:
    def test_never_decides(self):
        policy = ManualHoldPolicy()
        assert policy.decide(comparison_with(10_000, 10_000)).action == HOLD
        assert policy.decide(comparison_with(10_000, 0)).action == HOLD


class TestDecision:
    def test_truthiness_means_action_needed(self):
        assert not Decision(HOLD, "wait")
        assert Decision(PROMOTE, "go")
        assert Decision(ABORT, "stop")
