"""Rollout policies: the promote/abort/hold rules, written as tests."""

import pytest

from repro.rollout import (
    ABORT,
    HOLD,
    PROMOTE,
    Decision,
    ManualHoldPolicy,
    MetricParityPolicy,
    ShadowComparison,
)


def comparison_with(events, agreements, divergence_total=0.0):
    comparison = ShadowComparison()
    comparison.events = events
    comparison.agreements = agreements
    comparison.divergence_total = divergence_total
    return comparison


@pytest.fixture
def policy():
    return MetricParityPolicy(
        min_events=100,
        promote_agreement=0.98,
        abort_agreement=0.90,
        max_mean_divergence=0.05,
    )


class TestMetricParityPolicy:
    def test_holds_below_evidence_floor(self, policy):
        # Even perfect agreement cannot promote on thin evidence …
        decision = policy.decide(comparison_with(99, 99))
        assert decision.action == HOLD
        # … and even terrible agreement cannot abort on thin evidence.
        decision = policy.decide(comparison_with(99, 10))
        assert decision.action == HOLD

    def test_promotes_on_parity(self, policy):
        decision = policy.decide(
            comparison_with(200, 199, divergence_total=200 * 0.01)
        )
        assert decision.action == PROMOTE
        assert "parity" in decision.reason

    def test_aborts_on_regression(self, policy):
        decision = policy.decide(comparison_with(200, 150))
        assert decision.action == ABORT
        assert "regression" in decision.reason

    def test_holds_in_gray_band(self, policy):
        # Agreement between the abort floor and the promote bar.
        decision = policy.decide(comparison_with(200, 190))
        assert decision.action == HOLD

    def test_divergence_blocks_promotion(self, policy):
        # Perfect verdict agreement, but probabilities drifted.
        decision = policy.decide(
            comparison_with(200, 200, divergence_total=200 * 0.2)
        )
        assert decision.action == HOLD
        assert "divergence" in decision.reason

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MetricParityPolicy(min_events=0)
        with pytest.raises(ValueError):
            MetricParityPolicy(promote_agreement=0.8, abort_agreement=0.9)
        with pytest.raises(ValueError):
            MetricParityPolicy(max_mean_divergence=-0.1)

    def test_describe_records_parameters(self, policy):
        description = policy.describe()
        assert description["policy"] == "MetricParityPolicy"
        assert description["min_events"] == 100
        assert description["promote_agreement"] == 0.98


class TestManualHoldPolicy:
    def test_never_decides(self):
        policy = ManualHoldPolicy()
        assert policy.decide(comparison_with(10_000, 10_000)).action == HOLD
        assert policy.decide(comparison_with(10_000, 0)).action == HOLD


class TestDecision:
    def test_truthiness_means_action_needed(self):
        assert not Decision(HOLD, "wait")
        assert Decision(PROMOTE, "go")
        assert Decision(ABORT, "stop")
