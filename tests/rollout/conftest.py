"""Shared fixtures for shadow-rollout tests."""

import numpy as np
import pytest

from repro.artifacts import ModelStore
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.models.hsc import HSCDetector
from repro.stream.events import ContractEvent
from repro.stream.scanner import StreamScanner


@pytest.fixture(scope="session")
def rollout_corpus():
    return build_corpus(
        CorpusConfig(n_phishing=30, n_benign=30, seed=23, clone_factor=3.0)
    )


@pytest.fixture(scope="session")
def rollout_dataset(rollout_corpus):
    return Dataset.from_corpus(rollout_corpus, seed=0)


def _forest(dataset, seed):
    model = HSCDetector(variant="Random Forest", seed=seed)
    model.set_params(clf__n_estimators=10)
    model.fit(dataset.bytecodes, dataset.labels)
    return model


@pytest.fixture(scope="session")
def production_model(rollout_dataset):
    return _forest(rollout_dataset, seed=0)


@pytest.fixture(scope="session")
def parity_model(rollout_dataset):
    """Same data, different seed: near-identical verdicts."""
    return _forest(rollout_dataset, seed=1)


@pytest.fixture()
def stocked_store(tmp_path, production_model, parity_model):
    """production + candidate tags over a fresh local store."""
    store = ModelStore(tmp_path / "store")
    prod = store.put(
        production_model, model_name="Random Forest", tags=("production",)
    )
    cand = store.put(
        parity_model, model_name="Random Forest", tags=("candidate",)
    )
    return store, prod, cand


@pytest.fixture()
def scanner(stocked_store):
    """Two-shard scanner serving the production artifact."""
    store, __, __ = stocked_store
    return StreamScanner.from_artifact(
        "production", store=store, shards=2, max_batch=8, threshold=0.5
    )


class InvertedModel:
    """A catastrophically regressed candidate: 1 − p of a reference."""

    name = "Inverted"

    def __init__(self, reference):
        self._reference = reference

    def predict_proba(self, bytecodes):
        probs = self._reference.predict_proba(bytecodes)
        return probs[:, ::-1]


class ExplodingModel:
    """A candidate whose scoring path always raises."""

    name = "Exploding"

    def predict_proba(self, bytecodes):
        raise RuntimeError("candidate scoring is broken")


def make_event(index: int, code: bytes) -> ContractEvent:
    return ContractEvent(
        address=f"0x{index:040x}",
        code=code,
        block_number=index,
        timestamp=1_700_000_000 + index,
        tx_hash=f"0x{index:064x}",
        sequence=index,
    )


def feed(scanner, codes, start: int = 0) -> None:
    """Push one event per bytecode and drain the queue."""
    for offset, code in enumerate(codes):
        scanner.on_event(make_event(start + offset, code))
    scanner.flush()


def expected_probs(model, codes) -> dict:
    return {
        code: float(p)
        for code, p in zip(codes, np.asarray(model.predict_proba(codes))[:, 1])
    }
