"""ShadowComparison: online paired-score accounting."""

import pytest

from repro.rollout import ShadowComparison


class TestRecordBatch:
    def test_agreement_and_disagreement_classes(self):
        comparison = ShadowComparison()
        comparison.record_batch(
            [0.9, 0.8, 0.2, 0.1],   # production
            [0.95, 0.3, 0.7, 0.05],  # candidate
            0.5,
        )
        assert comparison.events == 4
        # 0.9/0.95 both flag; 0.1/0.05 both pass → 2 agreements.
        assert comparison.agreements == 2
        assert comparison.agreement_rate == 0.5
        # 0.8 vs 0.3: production flags, candidate passes.
        assert comparison.production_only == 1
        # 0.2 vs 0.7: candidate flags, production passes.
        assert comparison.candidate_only == 1
        assert comparison.disagreements == 2

    def test_divergence_tracking(self):
        comparison = ShadowComparison()
        comparison.record_batch([0.5, 0.9], [0.6, 0.5], 0.5)
        assert comparison.mean_divergence == pytest.approx(0.25)
        assert comparison.max_divergence == pytest.approx(0.4)
        comparison.record_batch([0.1], [0.1], 0.5)
        assert comparison.max_divergence == pytest.approx(0.4)
        assert comparison.mean_divergence == pytest.approx(0.5 / 3)

    def test_latency_overhead(self):
        comparison = ShadowComparison()
        comparison.record_batch(
            [0.1], [0.1], 0.5, primary_seconds=0.2, shadow_seconds=0.1
        )
        assert comparison.latency_overhead == pytest.approx(0.5)

    def test_idle_defaults(self):
        comparison = ShadowComparison()
        assert comparison.agreement_rate == 1.0
        assert comparison.mean_divergence == 0.0
        assert comparison.latency_overhead == 0.0

    def test_empty_batch_counts_batch_only(self):
        comparison = ShadowComparison()
        comparison.record_batch([], [], 0.5, primary_seconds=0.01)
        assert comparison.batches == 1
        assert comparison.events == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ShadowComparison().record_batch([0.1, 0.2], [0.1], 0.5)


class TestSerialization:
    def test_dict_round_trip(self):
        comparison = ShadowComparison()
        comparison.record_batch(
            [0.9, 0.2, 0.6], [0.8, 0.4, 0.1], 0.5,
            primary_seconds=0.3, shadow_seconds=0.2,
        )
        restored = ShadowComparison.from_dict(comparison.as_dict())
        assert restored.as_dict() == pytest.approx(comparison.as_dict())

    def test_from_dict_tolerates_missing_fields(self):
        restored = ShadowComparison.from_dict({})
        assert restored.events == 0
        assert restored.agreement_rate == 1.0
