"""ShadowRollout end to end: parity promotes, regression aborts, safely."""

import pytest

from repro.rollout import (
    ManualHoldPolicy,
    MetricParityPolicy,
    ShadowRollout,
    load_rollout_state,
    save_rollout_state,
)
from tests.rollout.conftest import (
    ExplodingModel,
    InvertedModel,
    expected_probs,
    feed,
)

LOOSE_PARITY = dict(
    min_events=40, promote_agreement=0.95, abort_agreement=0.5,
    max_mean_divergence=0.25,
)


class TestParityPromotion:
    def test_parity_candidate_is_promoted(self, scanner, stocked_store,
                                          rollout_dataset, parity_model):
        store, prod_version, cand_version = stocked_store
        rollout = ShadowRollout(
            scanner, "candidate", store=store,
            policy=MetricParityPolicy(**LOOSE_PARITY),
        )
        assert rollout.production_version == prod_version

        codes = rollout_dataset.bytecodes
        feed(scanner, codes)

        assert rollout.state == "promoted"
        assert rollout.last_decision.action == "promote"
        # The store tag moved atomically …
        assert store.tags()["production"] == cand_version
        # … and every shard worker serves the candidate now.
        assert scanner.service.artifact_digest == cand_version
        namespaces = {w._serving[1] for w in scanner.workers}
        assert namespaces == {f"pred:artifact:{cand_version}"}
        # The rollout detached itself once decided.
        assert rollout not in scanner.observers

    def test_zero_dropped_and_no_misscoring(self, scanner, stocked_store,
                                            rollout_dataset,
                                            production_model, parity_model):
        store, __, __ = stocked_store
        rollout = ShadowRollout(
            scanner, "candidate", store=store,
            policy=MetricParityPolicy(**LOOSE_PARITY),
        )
        codes = rollout_dataset.bytecodes
        by_production = expected_probs(production_model, codes)
        by_candidate = expected_probs(parity_model, codes)

        feed(scanner, codes, start=0)
        assert rollout.state == "promoted"
        first_pass_scanned = scanner.stats.scanned
        assert first_pass_scanned == len(codes)
        assert scanner.stats.dropped == 0

        # Every event was scored exactly once, by whichever model was
        # production *at that moment* — never a mixture, never neither.
        for alert in scanner.alerts:
            assert alert.probability in (
                pytest.approx(by_production[codes[int(alert.address, 16)]]),
                pytest.approx(by_candidate[codes[int(alert.address, 16)]]),
            )

        # Traffic after promotion scores as the candidate, bit-for-bit.
        scanner.alerts.clear()
        scanner._seen.clear()
        feed(scanner, codes, start=len(codes))
        assert scanner.stats.dropped == 0
        assert scanner.stats.scanned == first_pass_scanned + len(codes)
        for alert in scanner.alerts:
            index = int(alert.address, 16) - len(codes)
            assert alert.probability == pytest.approx(
                by_candidate[codes[index]]
            )

    def test_features_extracted_once(self, scanner, stocked_store,
                                     rollout_dataset):
        store, __, __ = stocked_store
        rollout = ShadowRollout(
            scanner, "candidate", store=store, policy=ManualHoldPolicy(),
        )
        # Candidate workers share the scanner's FeatureCache object.
        assert rollout._candidate_service.cache is scanner.service.cache
        assert all(
            worker.cache is scanner.service.cache
            for worker in rollout._workers
        )
        codes = rollout_dataset.bytecodes[:16]
        feed(scanner, codes)
        stats = scanner.service.cache.stats.as_dict()["by_namespace"]
        # Decoded mnemonic IDs were computed once per unique bytecode —
        # the shadow pass produced zero additional feature misses.
        assert stats["ids"]["misses"] == len(set(codes))
        assert stats["ids"]["hits"] > 0


class TestRegressionAbort:
    def test_regressed_candidate_is_aborted(self, scanner, stocked_store,
                                            rollout_dataset,
                                            production_model):
        store, prod_version, __ = stocked_store
        rollout = ShadowRollout(
            scanner, model=InvertedModel(production_model),
            policy=MetricParityPolicy(**LOOSE_PARITY),
        )
        codes = rollout_dataset.bytecodes
        by_production = expected_probs(production_model, codes)
        feed(scanner, codes)

        assert rollout.state == "aborted"
        assert "regression" in rollout.last_decision.reason
        # Production serving is completely untouched.
        assert store.tags()["production"] == prod_version
        assert scanner.service.artifact_digest == prod_version
        assert scanner.stats.dropped == 0
        assert scanner.stats.scanned == len(codes)
        for alert in scanner.alerts:
            assert alert.probability == pytest.approx(
                by_production[codes[int(alert.address, 16)]]
            )
        assert rollout not in scanner.observers

    def test_broken_candidate_never_breaks_production(self, scanner,
                                                      stocked_store,
                                                      rollout_dataset):
        rollout = ShadowRollout(
            scanner, model=ExplodingModel(), policy=ManualHoldPolicy(),
        )
        codes = rollout_dataset.bytecodes[:20]
        feed(scanner, codes)
        assert scanner.stats.scanned == len(codes)
        assert rollout.shadow_errors > 0
        assert rollout.comparison.events == 0
        assert rollout.state == "shadowing"

    def test_raising_observer_never_breaks_production(self, scanner,
                                                      rollout_dataset):
        class BrokenObserver:
            def observe(self, **kwargs):
                raise OSError("observer exploded outside any guard")

        scanner.add_observer(BrokenObserver())
        codes = rollout_dataset.bytecodes[:20]
        feed(scanner, codes)
        # Every shard still scored and alerted; the failures are counted.
        assert scanner.stats.scanned == len(codes)
        assert scanner.stats.dropped == 0
        assert scanner.stats.observer_errors > 0
        assert scanner.summary()["observer_errors"] > 0


class TestManualFlow:
    def test_manual_hold_then_operator_promote(self, scanner, stocked_store,
                                               rollout_dataset):
        store, __, cand_version = stocked_store
        rollout = ShadowRollout(
            scanner, "candidate", store=store, policy=ManualHoldPolicy(),
        )
        feed(scanner, rollout_dataset.bytecodes)
        assert rollout.state == "shadowing"
        assert rollout.comparison.events == len(rollout_dataset.bytecodes)

        rollout.promote()
        assert rollout.state == "promoted"
        assert store.tags()["production"] == cand_version
        assert scanner.service.artifact_digest == cand_version

    def test_actions_require_shadowing_state(self, scanner, stocked_store):
        store, __, __ = stocked_store
        rollout = ShadowRollout(
            scanner, "candidate", store=store, policy=ManualHoldPolicy(),
        )
        rollout.abort("operator changed their mind")
        with pytest.raises(RuntimeError):
            rollout.promote()
        with pytest.raises(RuntimeError):
            rollout.abort()

    def test_needs_source_xor_model(self, scanner, stocked_store,
                                    production_model):
        store, __, __ = stocked_store
        with pytest.raises(ValueError):
            ShadowRollout(scanner, store=store)
        with pytest.raises(ValueError):
            ShadowRollout(
                scanner, "candidate", model=production_model, store=store
            )


class TestStatusAndState:
    def test_status_record(self, scanner, stocked_store, rollout_dataset):
        store, prod_version, cand_version = stocked_store
        rollout = ShadowRollout(
            scanner, "candidate", store=store, policy=ManualHoldPolicy(),
        )
        feed(scanner, rollout_dataset.bytecodes[:16])
        status = rollout.status()
        assert status["state"] == "shadowing"
        assert status["production_version"] == prod_version
        assert status["candidate_version"] == cand_version
        assert status["decision"] == "hold"
        assert status["comparison"]["events"] == 16
        assert status["policy"]["policy"] == "ManualHoldPolicy"

    def test_state_round_trip_through_store(self, scanner, stocked_store,
                                            rollout_dataset):
        store, __, __ = stocked_store
        rollout = ShadowRollout(
            scanner, "candidate", store=store, policy=ManualHoldPolicy(),
        )
        feed(scanner, rollout_dataset.bytecodes[:16])
        saved = save_rollout_state(store, rollout.status())
        loaded = load_rollout_state(store)
        assert loaded == saved
        assert loaded["comparison"]["events"] == 16
        assert "updated_at" in loaded
