"""Tests for attention, transformer blocks and the GRU."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention, RelativePositionBias
from repro.nn.recurrent import GRU
from repro.nn.tensor import Tensor
from repro.nn.transformer import TransformerBlock

from tests.nn.gradcheck import assert_grad_matches


def sequence(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape),
                  requires_grad=True)


class TestMultiHeadAttention:
    def test_shape_preserved(self):
        attention = MultiHeadAttention(dim=8, n_heads=2)
        out = attention(sequence((3, 5, 8)))
        assert out.shape == (3, 5, 8)

    def test_dim_must_divide(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(dim=7, n_heads=2)

    def test_causal_mask_blocks_future(self):
        attention = MultiHeadAttention(dim=4, n_heads=1, causal=True)
        x = np.zeros((1, 4, 4))
        x[0, 2] = 5.0  # a loud token at position 2
        base = attention(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 3] = -7.0  # changing position 3 must not affect positions ≤ 2
        out = attention(Tensor(x2)).data
        np.testing.assert_allclose(out[0, :3], base[0, :3], atol=1e-12)

    def test_bidirectional_sees_future(self):
        attention = MultiHeadAttention(dim=4, n_heads=1, causal=False)
        x = np.zeros((1, 4, 4))
        base = attention(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 3] = 5.0
        out = attention(Tensor(x2)).data
        assert not np.allclose(out[0, 0], base[0, 0])

    def test_padding_mask_blocks_positions(self):
        attention = MultiHeadAttention(dim=4, n_heads=2)
        x = np.random.default_rng(0).normal(size=(1, 5, 4))
        mask = np.array([[False, False, False, True, True]])
        base = attention(Tensor(x), key_padding_mask=mask).data.copy()
        x2 = x.copy()
        x2[0, 4] = 100.0  # padded position content is irrelevant
        out = attention(Tensor(x2), key_padding_mask=mask).data
        np.testing.assert_allclose(out[0, :3], base[0, :3], atol=1e-9)

    def test_gradients_flow_to_all_projections(self):
        attention = MultiHeadAttention(dim=4, n_heads=2)
        x = sequence((2, 3, 4), seed=1)
        (attention(x) ** 2).sum().backward()
        for layer in (attention.q_proj, attention.k_proj,
                      attention.v_proj, attention.out_proj):
            assert layer.weight.grad is not None
            assert np.any(layer.weight.grad != 0)

    def test_gradcheck_small(self):
        attention = MultiHeadAttention(dim=4, n_heads=1)
        x = sequence((1, 3, 4), seed=2)
        assert_grad_matches(lambda: (attention(x) ** 2).sum(), [x], rtol=1e-3)


class TestRelativePositionBias:
    def test_shape(self):
        bias = RelativePositionBias(n_heads=3, n_buckets=8, max_distance=16)
        out = bias(5)
        assert out.shape == (3, 5, 5)

    def test_translation_invariance(self):
        bias = RelativePositionBias(n_heads=1, n_buckets=8, max_distance=16)
        out = bias(6).data[0]
        # Same relative offset → same bias value.
        assert out[1, 3] == pytest.approx(out[2, 4])
        assert out[3, 1] == pytest.approx(out[4, 2])

    def test_direction_sensitivity(self):
        bias = RelativePositionBias(n_heads=1, n_buckets=8, max_distance=16)
        out = bias(6).data[0]
        # Forward and backward offsets use different buckets (usually).
        assert out[0, 3] != pytest.approx(out[3, 0])

    def test_trainable(self):
        bias = RelativePositionBias(n_heads=2)
        bias(4).sum().backward()
        assert bias.weight.grad is not None


class TestTransformerBlock:
    def test_shape_preserved(self):
        block = TransformerBlock(dim=8, n_heads=2)
        out = block(sequence((2, 4, 8)))
        assert out.shape == (2, 4, 8)

    def test_residual_path_exists(self):
        block = TransformerBlock(dim=8, n_heads=2)
        x = sequence((1, 3, 8), seed=3)
        out = block(x)
        # With random init the block output stays correlated with input.
        correlation = np.corrcoef(out.data.ravel(), x.data.ravel())[0, 1]
        assert correlation > 0.5

    def test_end_to_end_gradient(self):
        block = TransformerBlock(dim=8, n_heads=2)
        x = sequence((2, 3, 8), seed=4)
        (block(x) ** 2).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in block.parameters())


class TestGRU:
    def test_output_shapes(self):
        gru = GRU(input_dim=5, hidden_dim=7)
        outputs, last = gru(sequence((3, 4, 5)))
        assert outputs.shape == (3, 4, 7)
        assert last.shape == (3, 7)

    def test_last_hidden_equals_final_step(self):
        gru = GRU(4, 6)
        outputs, last = gru(sequence((2, 5, 4), seed=5))
        np.testing.assert_allclose(outputs.data[:, -1, :], last.data)

    def test_state_depends_on_history(self):
        gru = GRU(2, 3)
        x1 = np.zeros((1, 3, 2))
        x2 = np.zeros((1, 3, 2))
        x2[0, 0] = 1.0  # differ only at the first step
        __, last1 = gru(Tensor(x1))
        __, last2 = gru(Tensor(x2))
        assert not np.allclose(last1.data, last2.data)

    def test_padding_mask_freezes_state(self):
        gru = GRU(2, 3)
        x = np.random.default_rng(0).normal(size=(1, 4, 2))
        mask = np.array([[False, False, True, True]])  # last two are PAD
        __, masked_last = gru(Tensor(x), mask=mask)
        __, short_last = gru(Tensor(x[:, :2]))
        np.testing.assert_allclose(masked_last.data, short_last.data)

    def test_gradients_flow(self):
        gru = GRU(3, 4)
        x = sequence((2, 3, 3), seed=6)
        __, last = gru(x)
        (last ** 2).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in gru.parameters())

    def test_gradcheck_tiny(self):
        gru = GRU(2, 2, seed=1)
        x = sequence((1, 2, 2), seed=7)
        assert_grad_matches(lambda: (gru(x)[1] ** 2).sum(), [x], rtol=1e-3)
