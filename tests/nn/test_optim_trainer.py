"""Tests for optimizers and the training loop."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import Linear, Module, Parameter
from repro.nn.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.nn.trainer import Trainer, TrainingConfig


def quadratic_parameter():
    return Parameter(np.array([5.0, -3.0]))


class TestOptimizers:
    @pytest.mark.parametrize(
        "make",
        [
            lambda p: SGD([p], lr=0.1),
            lambda p: SGD([p], lr=0.05, momentum=0.9),
            lambda p: Adam([p], lr=0.2),
            lambda p: AdamW([p], lr=0.2, weight_decay=0.01),
        ],
        ids=["sgd", "sgd-momentum", "adam", "adamw"],
    )
    def test_minimizes_quadratic(self, make):
        parameter = quadratic_parameter()
        optimizer = make(parameter)
        for __ in range(200):
            optimizer.zero_grad()
            loss = (parameter * parameter).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, 0.0, atol=1e-2)

    def test_none_grads_skipped(self):
        parameter = quadratic_parameter()
        before = parameter.data.copy()
        SGD([parameter], lr=0.1).step()
        np.testing.assert_allclose(parameter.data, before)

    def test_adamw_decays_even_without_loss_gradient(self):
        parameter = Parameter(np.array([10.0]))
        parameter.grad = np.array([0.0])
        AdamW([parameter], lr=0.1, weight_decay=0.5).step()
        assert parameter.data[0] < 10.0

    def test_zero_grad(self):
        parameter = quadratic_parameter()
        (parameter * 2).sum().backward()
        optimizer = SGD([parameter], lr=0.1)
        optimizer.zero_grad()
        assert parameter.grad is None


class TestClipGradNorm:
    def test_large_gradients_scaled(self):
        parameter = Parameter(np.zeros(4))
        parameter.grad = np.full(4, 10.0)
        norm = clip_grad_norm([parameter], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0)

    def test_small_gradients_untouched(self):
        parameter = Parameter(np.zeros(4))
        parameter.grad = np.full(4, 0.01)
        clip_grad_norm([parameter], max_norm=1.0)
        np.testing.assert_allclose(parameter.grad, 0.01)


class _TinyLogistic(Module):
    """Minimal model exposing the trainer protocol."""

    def __init__(self):
        super().__init__()
        self.linear = Linear(2, 1, rng=np.random.default_rng(0))

    def loss(self, X, y):
        logits = self.linear(Tensor(np.asarray(X))).reshape(len(X))
        return F.binary_cross_entropy_with_logits(logits, y)

    def predict(self, X):
        logits = self.linear(Tensor(np.asarray(X))).data.reshape(len(X))
        return (logits > 0).astype(int)


class TestTrainer:
    def _data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        return X, y

    def test_loss_decreases(self):
        X, y = self._data()
        trainer = Trainer(_TinyLogistic(), TrainingConfig(epochs=20, lr=0.05))
        trainer.fit(X, y)
        assert trainer.history[-1] < trainer.history[0]
        assert (trainer.model.predict(X) == y).mean() > 0.9

    def test_early_stopping(self):
        X, y = self._data()
        config = TrainingConfig(epochs=500, lr=0.1, patience=3)
        trainer = Trainer(_TinyLogistic(), config).fit(X, y)
        assert len(trainer.history) < 500

    def test_records_train_time(self):
        X, y = self._data()
        trainer = Trainer(_TinyLogistic(), TrainingConfig(epochs=2)).fit(X, y)
        assert trainer.train_seconds > 0

    def test_model_left_in_eval_mode(self):
        X, y = self._data()
        trainer = Trainer(_TinyLogistic(), TrainingConfig(epochs=1)).fit(X, y)
        assert not trainer.model.training

    def test_deterministic_given_seed(self):
        X, y = self._data()
        a = Trainer(_TinyLogistic(), TrainingConfig(epochs=3, seed=1)).fit(X, y)
        b = Trainer(_TinyLogistic(), TrainingConfig(epochs=3, seed=1)).fit(X, y)
        assert a.history == b.history

    def test_list_inputs_supported(self):
        X, y = self._data()
        trainer = Trainer(_TinyLogistic(), TrainingConfig(epochs=1))
        trainer.fit([row for row in X], y)
        assert len(trainer.history) == 1

    def test_unsupported_container_rejected(self):
        X, y = self._data()
        trainer = Trainer(_TinyLogistic(), TrainingConfig(epochs=1))
        with pytest.raises(TypeError):
            trainer.fit({"a": 1}, y)
