"""Tests for Conv2d, BatchNorm2d and pooling."""

import numpy as np
import pytest

from repro.nn.conv import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    MaxPool2d,
)
from repro.nn.tensor import Tensor

from tests.nn.gradcheck import assert_grad_matches


def image(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape),
                  requires_grad=True)


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(3, 8, kernel_size=3, stride=1, padding=1)
        out = conv(image((2, 3, 8, 8)))
        assert out.shape == (2, 8, 8, 8)

    def test_stride_and_no_padding(self):
        conv = Conv2d(1, 4, kernel_size=3, stride=2)
        out = conv(image((1, 1, 9, 9)))
        assert out.shape == (1, 4, 4, 4)

    def test_identity_kernel(self):
        conv = Conv2d(1, 1, kernel_size=1, bias=False)
        conv.weight.data[:] = 1.0
        x = image((1, 1, 4, 4), seed=3)
        out = conv(x)
        np.testing.assert_allclose(out.data, x.data)

    def test_known_convolution(self):
        conv = Conv2d(1, 1, kernel_size=2, bias=False)
        conv.weight.data[:] = 1.0  # summing kernel
        x = Tensor(np.arange(9, dtype=float).reshape(1, 1, 3, 3))
        out = conv(x)
        np.testing.assert_allclose(
            out.data[0, 0], [[0 + 1 + 3 + 4, 1 + 2 + 4 + 5],
                             [3 + 4 + 6 + 7, 4 + 5 + 7 + 8]]
        )

    def test_gradcheck_dense(self):
        conv = Conv2d(2, 3, kernel_size=2)
        x = image((2, 2, 4, 4), seed=1)
        assert_grad_matches(
            lambda: (conv(x) ** 2).sum(), [x, conv.weight, conv.bias]
        )

    def test_gradcheck_padded_strided(self):
        conv = Conv2d(1, 2, kernel_size=3, stride=2, padding=1)
        x = image((1, 1, 5, 5), seed=2)
        assert_grad_matches(lambda: (conv(x) ** 2).sum(), [x, conv.weight])

    def test_depthwise_groups(self):
        conv = Conv2d(4, 4, kernel_size=3, padding=1, groups=4)
        out = conv(image((1, 4, 6, 6)))
        assert out.shape == (1, 4, 6, 6)
        # Depthwise weight has one input channel per filter.
        assert conv.weight.shape == (4, 1, 3, 3)

    def test_gradcheck_depthwise(self):
        conv = Conv2d(2, 2, kernel_size=2, groups=2, bias=False)
        x = image((1, 2, 4, 4), seed=4)
        assert_grad_matches(lambda: (conv(x) ** 2).sum(), [x, conv.weight])

    def test_grouped_channels_isolated(self):
        conv = Conv2d(2, 2, kernel_size=1, groups=2, bias=False)
        conv.weight.data[:] = 1.0
        x = np.zeros((1, 2, 2, 2))
        x[0, 0] = 5.0  # only group 0 carries signal
        out = conv(Tensor(x))
        assert np.all(out.data[0, 0] == 5.0)
        assert np.all(out.data[0, 1] == 0.0)

    def test_bad_groups_rejected(self):
        with pytest.raises(ValueError):
            Conv2d(3, 4, kernel_size=1, groups=2)

    def test_non_nchw_rejected(self):
        conv = Conv2d(1, 1, kernel_size=1)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((3, 3))))


class TestBatchNorm2d:
    def test_normalizes_in_train_mode(self):
        bn = BatchNorm2d(3)
        x = image((8, 3, 4, 4), seed=0)
        out = bn(x)
        mean = out.data.mean(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, 0.0, atol=1e-9)

    def test_running_stats_updated(self):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.full((4, 2, 2, 2), 10.0))
        bn(x)
        assert np.all(bn.running_mean > 0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(1, momentum=1.0)
        bn(Tensor(np.full((4, 1, 2, 2), 4.0)))  # running_mean := 4
        bn.eval()
        out = bn(Tensor(np.full((1, 1, 2, 2), 4.0)))
        np.testing.assert_allclose(out.data, 0.0, atol=1e-6)

    def test_gradcheck_params(self):
        bn = BatchNorm2d(2)
        x = image((3, 2, 2, 2), seed=5)
        # Note: batch statistics are treated as constants (standard
        # inference-style BN backward), so only check gamma/beta exactly.
        assert_grad_matches(lambda: (bn(x) ** 2).sum(), [bn.gamma, bn.beta])


class TestPooling:
    def test_maxpool_values(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4),
                   requires_grad=True)
        out = MaxPool2d(2)(x)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradient_routes_to_max(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4),
                   requires_grad=True)
        MaxPool2d(2)(x).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_avgpool_values(self):
        x = Tensor(np.ones((1, 2, 4, 4)))
        out = AvgPool2d(2)(x)
        np.testing.assert_allclose(out.data, 1.0)

    def test_avgpool_gradcheck(self):
        x = image((1, 1, 4, 4), seed=6)
        assert_grad_matches(lambda: (AvgPool2d(2)(x) ** 2).sum(), [x])

    def test_global_avg_pool(self):
        x = Tensor(np.arange(8, dtype=float).reshape(1, 2, 2, 2))
        out = GlobalAvgPool2d()(x)
        np.testing.assert_allclose(out.data, [[1.5, 5.5]])
        assert out.shape == (1, 2)
