"""Tests for Module/Linear/Embedding/LayerNorm and friends."""

import numpy as np
import pytest

from repro.nn.layers import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from repro.nn.tensor import Tensor

from tests.nn.gradcheck import assert_grad_matches


class TestModule:
    def test_parameters_recursion(self):
        model = Sequential(Linear(3, 4), ReLU(), Linear(4, 2))
        parameters = model.parameters()
        assert len(parameters) == 4  # two weights + two biases
        assert model.n_parameters() == 3 * 4 + 4 + 4 * 2 + 2

    def test_parameters_deduplicated(self):
        shared = Linear(2, 2)

        class Tied(Module):
            def __init__(self):
                super().__init__()
                self.a = shared
                self.b = shared

        assert len(Tied().parameters()) == 2

    def test_parameters_in_dicts_and_lists(self):
        class Container(Module):
            def __init__(self):
                super().__init__()
                self.blocks = [Linear(2, 2, bias=False)]
                self.by_name = {"head": Linear(2, 1, bias=False)}

        assert len(Container().parameters()) == 2

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Sequential(Dropout(0.5)))
        model.eval()
        assert not model[0].training
        assert not model[1][0].training
        model.train()
        assert model[0].training

    def test_zero_grad(self):
        layer = Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(5, 3)
        out = layer(Tensor(np.zeros((7, 5))))
        assert out.shape == (7, 3)

    def test_matches_manual_affine(self):
        layer = Linear(3, 2)
        x = np.random.default_rng(0).normal(size=(4, 3))
        out = layer(Tensor(x))
        np.testing.assert_allclose(
            out.data, x @ layer.weight.data + layer.bias.data
        )

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False)
        assert layer.bias is None
        assert len([p for p in [layer.weight]]) == 1

    def test_gradcheck(self):
        layer = Linear(3, 2)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)), requires_grad=True)
        assert_grad_matches(
            lambda: (layer(x) ** 2).sum(), [x, layer.weight, layer.bias]
        )

    def test_3d_input(self):
        layer = Linear(4, 2)
        out = layer(Tensor(np.zeros((2, 5, 4))))
        assert out.shape == (2, 5, 2)


class TestEmbedding:
    def test_lookup_shape(self):
        table = Embedding(10, 4)
        out = table(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_lookup_values(self):
        table = Embedding(5, 3)
        out = table(np.array([2]))
        np.testing.assert_allclose(out.data[0], table.weight.data[2])

    def test_out_of_range_rejected(self):
        table = Embedding(5, 3)
        with pytest.raises(ValueError):
            table(np.array([5]))
        with pytest.raises(ValueError):
            table(np.array([-1]))

    def test_gradient_accumulates_for_repeated_ids(self):
        table = Embedding(4, 2)
        out = table(np.array([1, 1, 1]))
        out.sum().backward()
        np.testing.assert_allclose(table.weight.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(table.weight.grad[0], [0.0, 0.0])


class TestLayerNorm:
    def test_output_is_normalized(self):
        layer = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(loc=5, scale=3, size=(4, 8)))
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_gradcheck(self):
        layer = LayerNorm(5)
        x = Tensor(np.random.default_rng(2).normal(size=(3, 5)), requires_grad=True)
        assert_grad_matches(
            lambda: (layer(x) ** 2).sum(), [x, layer.gamma, layer.beta]
        )

    def test_gamma_beta_applied(self):
        layer = LayerNorm(4)
        layer.gamma.data[:] = 2.0
        layer.beta.data[:] = 1.0
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4)))
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 1.0, atol=1e-9)


class TestActivationsDropout:
    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_gelu_module(self):
        out = GELU()(Tensor(np.array([0.0])))
        assert out.data[0] == pytest.approx(0.0)

    def test_dropout_train_vs_eval(self):
        layer = Dropout(0.5, seed=0)
        x = Tensor(np.ones((100,)))
        layer.train()
        assert (layer(x).data == 0).any()
        layer.eval()
        np.testing.assert_allclose(layer(x).data, 1.0)


class TestSequential:
    def test_applies_in_order(self):
        model = Sequential(Linear(2, 3), ReLU(), Linear(3, 1))
        out = model(Tensor(np.zeros((4, 2))))
        assert out.shape == (4, 1)

    def test_len_getitem(self):
        model = Sequential(ReLU(), GELU())
        assert len(model) == 2
        assert isinstance(model[1], GELU)
