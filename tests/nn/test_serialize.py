"""Tests for NN weight persistence."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Module, Sequential, ReLU
from repro.nn.serialize import (
    load_module,
    load_state_dict,
    save_module,
    state_dict,
)
from repro.nn.tensor import Tensor


class _Net(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.body = Sequential(Linear(4, 8, rng=rng), ReLU(),
                               Linear(8, 2, rng=rng))
        self.heads = {"aux": Linear(8, 1, rng=rng)}
        self.blocks = [Linear(2, 2, rng=rng)]

    def forward(self, x):
        return self.blocks[0](self.body(x))


class TestStateDict:
    def test_covers_all_parameters(self):
        net = _Net()
        weights = state_dict(net)
        assert len(weights) == len(net.parameters())

    def test_names_are_hierarchical(self):
        names = set(state_dict(_Net()))
        assert any(name.startswith("body.modules.0.") for name in names)
        assert any(name.startswith("heads.aux.") for name in names)
        assert any(name.startswith("blocks.0.") for name in names)

    def test_arrays_are_copies(self):
        net = _Net()
        weights = state_dict(net)
        # Pick a weight matrix (biases are zero-initialized).
        name = next(n for n, v in weights.items() if v.ndim == 2)
        weights[name][:] = 0.0
        assert not np.all(state_dict(net)[name] == 0.0)


class TestLoad:
    def test_roundtrip_restores_outputs(self):
        source = _Net(seed=1)
        target = _Net(seed=2)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        assert not np.allclose(source.forward(x).data, target.forward(x).data)
        load_state_dict(target, state_dict(source))
        np.testing.assert_allclose(
            source.forward(x).data, target.forward(x).data
        )

    def test_missing_key_rejected(self):
        net = _Net()
        weights = state_dict(net)
        weights.pop(next(iter(weights)))
        with pytest.raises(KeyError, match="missing"):
            load_state_dict(net, weights)

    def test_unexpected_key_rejected(self):
        net = _Net()
        weights = state_dict(net)
        weights["bogus"] = np.zeros(3)
        with pytest.raises(KeyError, match="unexpected"):
            load_state_dict(net, weights)

    def test_shape_mismatch_rejected(self):
        net = _Net()
        weights = state_dict(net)
        first = next(iter(weights))
        weights[first] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape"):
            load_state_dict(net, weights)


class TestFiles:
    def test_save_load_file(self, tmp_path):
        source = _Net(seed=3)
        path = tmp_path / "weights.npz"
        save_module(source, path)
        target = load_module(_Net(seed=4), path)
        x = Tensor(np.ones((2, 4)))
        np.testing.assert_allclose(
            source.forward(x).data, target.forward(x).data
        )

    def test_trained_model_survives_roundtrip(self, tmp_path):
        """An end-to-end check with a real detector network."""
        from repro.models.scsguard import SCSGuardClassifier
        from repro.datagen.corpus import CorpusConfig, build_corpus
        from repro.datagen.dataset import Dataset

        corpus = build_corpus(
            CorpusConfig(n_phishing=12, n_benign=12, seed=9, clone_factor=2.0)
        )
        dataset = Dataset.from_corpus(corpus, seed=0)
        model = SCSGuardClassifier(max_length=32, epochs=2, seed=0)
        model.fit(dataset.bytecodes, dataset.labels)
        before = model.predict_proba(dataset.bytecodes)

        path = save_module(model.network_, tmp_path / "scsguard.npz")
        fresh = SCSGuardClassifier(max_length=32, epochs=0, seed=1)
        # Rebuild architecture (epochs=0 keeps random weights), then load.
        fresh.fit(dataset.bytecodes, dataset.labels)
        load_module(fresh.network_, path)
        fresh.encoder_ = model.encoder_  # vocabulary travels with the release
        after = fresh.predict_proba(dataset.bytecodes)
        np.testing.assert_allclose(before, after, atol=1e-12)
