"""Central-finite-difference gradient checking utilities."""

import numpy as np

from repro.nn.tensor import Tensor


def numerical_gradient(fn, tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    """∂fn()/∂tensor by central differences (fn returns a scalar Tensor)."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = fn().item()
        flat[index] = original - eps
        minus = fn().item()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def assert_grad_matches(fn, tensors, rtol=1e-4, atol=1e-6):
    """Backprop fn() and compare every tensor's grad to finite differences."""
    for tensor in tensors:
        tensor.zero_grad()
    out = fn()
    out.backward()
    for i, tensor in enumerate(tensors):
        expected = numerical_gradient(fn, tensor)
        actual = tensor.grad
        assert actual is not None, f"tensor {i} received no gradient"
        np.testing.assert_allclose(
            actual, expected, rtol=rtol, atol=atol,
            err_msg=f"gradient mismatch for tensor {i}",
        )
