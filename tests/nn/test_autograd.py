"""Gradient checks for every Tensor op against finite differences."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concat, no_grad, where
from repro.nn import functional as F

from tests.nn.gradcheck import assert_grad_matches


def leaf(shape, seed=0, scale=1.0, offset=0.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) * scale + offset, requires_grad=True)


class TestArithmetic:
    def test_add(self):
        a, b = leaf((3, 4), 0), leaf((3, 4), 1)
        assert_grad_matches(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast(self):
        a, b = leaf((3, 4), 0), leaf((4,), 1)
        assert_grad_matches(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast_keepdim(self):
        a, b = leaf((3, 4), 0), leaf((3, 1), 1)
        assert_grad_matches(lambda: (a + b).sum(), [a, b])

    def test_sub_neg(self):
        a, b = leaf((2, 3), 0), leaf((2, 3), 1)
        assert_grad_matches(lambda: (a - b).sum(), [a, b])
        assert_grad_matches(lambda: (-a).sum(), [a])

    def test_rsub_radd(self):
        a = leaf((4,), 2)
        assert_grad_matches(lambda: (3.0 - a).sum(), [a])
        assert_grad_matches(lambda: (3.0 + a).sum(), [a])

    def test_mul(self):
        a, b = leaf((3, 2), 0), leaf((3, 2), 1)
        assert_grad_matches(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast_scalar_tensor(self):
        a = leaf((3, 2), 0)
        assert_grad_matches(lambda: (a * 2.5).sum(), [a])

    def test_div(self):
        a = leaf((3, 2), 0)
        b = leaf((3, 2), 1, scale=0.2, offset=2.0)  # away from zero
        assert_grad_matches(lambda: (a / b).sum(), [a, b])

    def test_rdiv(self):
        a = leaf((4,), 1, scale=0.2, offset=2.0)
        assert_grad_matches(lambda: (1.0 / a).sum(), [a])

    def test_pow(self):
        a = leaf((5,), 3, scale=0.3, offset=2.0)
        assert_grad_matches(lambda: (a**3).sum(), [a])
        with pytest.raises(TypeError):
            __ = a ** a  # tensor exponents unsupported

    def test_matmul_2d(self):
        a, b = leaf((3, 4), 0), leaf((4, 2), 1)
        assert_grad_matches(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched(self):
        a, b = leaf((2, 3, 4), 0), leaf((2, 4, 5), 1)
        assert_grad_matches(lambda: (a @ b).sum(), [a, b])

    def test_matmul_broadcast_weight(self):
        a, b = leaf((2, 3, 4), 0), leaf((4, 5), 1)
        assert_grad_matches(lambda: (a @ b).sum(), [a, b])


class TestElementwise:
    def test_exp(self):
        a = leaf((3, 3), 0, scale=0.5)
        assert_grad_matches(lambda: a.exp().sum(), [a])

    def test_log(self):
        a = leaf((3, 3), 0, scale=0.2, offset=2.0)
        assert_grad_matches(lambda: a.log().sum(), [a])

    def test_sqrt(self):
        a = leaf((3, 3), 0, scale=0.2, offset=2.0)
        assert_grad_matches(lambda: a.sqrt().sum(), [a])

    def test_tanh(self):
        a = leaf((3, 3), 0)
        assert_grad_matches(lambda: a.tanh().sum(), [a])

    def test_sigmoid(self):
        a = leaf((3, 3), 0)
        assert_grad_matches(lambda: a.sigmoid().sum(), [a])

    def test_relu(self):
        a = leaf((4, 4), 0, offset=0.3)  # keep away from the kink
        assert_grad_matches(lambda: a.relu().sum(), [a])

    def test_gelu(self):
        a = leaf((4, 4), 0)
        assert_grad_matches(lambda: a.gelu().sum(), [a])


class TestReductionsAndShape:
    def test_sum_all(self):
        a = leaf((3, 4), 0)
        assert_grad_matches(lambda: (a * a).sum(), [a])

    def test_sum_axis(self):
        a = leaf((3, 4), 0)
        assert_grad_matches(lambda: (a.sum(axis=0) ** 2).sum(), [a])

    def test_sum_keepdims(self):
        a = leaf((3, 4), 0)
        assert_grad_matches(
            lambda: (a.sum(axis=1, keepdims=True) * a).sum(), [a]
        )

    def test_mean(self):
        a = leaf((3, 4), 0)
        assert_grad_matches(lambda: (a.mean(axis=1) ** 2).sum(), [a])

    def test_mean_multi_axis(self):
        a = leaf((2, 3, 4), 0)
        assert_grad_matches(lambda: (a.mean(axis=(1, 2)) ** 2).sum(), [a])

    def test_reshape(self):
        a = leaf((3, 4), 0)
        assert_grad_matches(lambda: (a.reshape(2, 6) ** 2).sum(), [a])

    def test_transpose(self):
        a = leaf((2, 3, 4), 0)
        assert_grad_matches(
            lambda: (a.transpose(2, 0, 1) ** 2).sum(), [a]
        )

    def test_swapaxes(self):
        a = leaf((2, 3, 4), 0)
        assert_grad_matches(lambda: (a.swapaxes(-1, -2) ** 2).sum(), [a])

    def test_getitem_slice(self):
        a = leaf((4, 5), 0)
        assert_grad_matches(lambda: (a[1:3, ::2] ** 2).sum(), [a])

    def test_getitem_fancy(self):
        a = leaf((6, 3), 0)
        rows = np.array([0, 2, 2, 5])  # repeated index accumulates
        assert_grad_matches(lambda: (a[rows] ** 2).sum(), [a])

    def test_take_rows(self):
        table = leaf((7, 4), 0)
        ids = np.array([[1, 2], [2, 6]])
        assert_grad_matches(lambda: (table.take_rows(ids) ** 2).sum(), [table])

    def test_pad2d(self):
        a = leaf((1, 2, 3, 3), 0)
        assert_grad_matches(lambda: (a.pad2d(1) ** 2).sum(), [a])

    def test_concat(self):
        a, b = leaf((2, 3), 0), leaf((2, 2), 1)
        assert_grad_matches(lambda: (concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_where(self):
        a, b = leaf((3, 3), 0), leaf((3, 3), 1)
        condition = np.eye(3, dtype=bool)
        assert_grad_matches(lambda: (where(condition, a, b) ** 2).sum(), [a, b])


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        logits = leaf((4, 6), 0)
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.data.sum(axis=-1), 1.0)

    def test_softmax_gradient(self):
        logits = leaf((3, 4), 0)
        weights = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        assert_grad_matches(lambda: (F.softmax(logits) * weights).sum(), [logits])

    def test_log_softmax_gradient(self):
        logits = leaf((3, 4), 0)
        assert_grad_matches(
            lambda: (F.log_softmax(logits)[np.arange(3), [0, 1, 2]]).sum(),
            [logits],
        )

    def test_cross_entropy_matches_manual(self):
        logits = leaf((4, 3), 0)
        targets = np.array([0, 2, 1, 1])
        loss = F.cross_entropy(logits, targets)
        shifted = logits.data - logits.data.max(axis=1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        expected = -np.mean(np.log(probs[np.arange(4), targets]))
        assert loss.item() == pytest.approx(expected)

    def test_cross_entropy_gradient(self):
        logits = leaf((5, 3), 2)
        targets = np.array([0, 1, 2, 1, 0])
        assert_grad_matches(lambda: F.cross_entropy(logits, targets), [logits])

    def test_bce_with_logits_gradient(self):
        logits = leaf((8,), 3)
        targets = np.array([0, 1, 0, 1, 1, 0, 1, 0], dtype=float)
        assert_grad_matches(
            lambda: F.binary_cross_entropy_with_logits(logits, targets), [logits]
        )

    def test_bce_matches_stable_formula(self):
        logits = Tensor(np.array([100.0, -100.0]), requires_grad=True)
        targets = np.array([1.0, 0.0])
        loss = F.binary_cross_entropy_with_logits(logits, targets)
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_dropout_scales_and_masks(self):
        x = Tensor(np.ones((1000,)), requires_grad=True)
        rng = np.random.default_rng(0)
        dropped = F.dropout(x, 0.5, rng, training=True)
        kept = dropped.data != 0
        assert 0.35 < kept.mean() < 0.65
        np.testing.assert_allclose(dropped.data[kept], 2.0)

    def test_dropout_identity_in_eval(self):
        x = Tensor(np.ones(10))
        out = F.dropout(x, 0.9, np.random.default_rng(0), training=False)
        assert out is x

    def test_masked_fill(self):
        x = Tensor(np.zeros((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        filled = F.masked_fill(x, mask, -1e9)
        assert filled.data[0, 0] == -1e9
        assert filled.data[0, 1] == 0.0


class TestGraphMechanics:
    def test_gradient_accumulates_over_reuse(self):
        a = leaf((3,), 0)
        out = (a * a + a).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data + 1)

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_no_grad_blocks_graph(self):
        a = leaf((3,), 0)
        with no_grad():
            out = (a * 2).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        a = leaf((3,), 0)
        (a * 2).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_detach_breaks_graph(self):
        a = leaf((3,), 0)
        detached = a.detach()
        assert not detached.requires_grad

    def test_deep_chain_does_not_recurse(self):
        a = leaf((2,), 0)
        x = a
        for __ in range(3000):  # deeper than CPython's recursion limit
            x = x + 1.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(2))

    def test_diamond_graph(self):
        a = leaf((2,), 0)
        b = a * 2
        c = a * 3
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(2, 5.0))
