"""JSON-RPC error-path and subscription-plane coverage.

The JSON-RPC 2.0 spec pins one error code per failure class; these tests
pin the server to them — including the subscription methods the streaming
pipeline tails (``eth_subscribe`` / ``eth_unsubscribe`` /
``eth_getFilterChanges``).
"""

import json

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.rpc import JsonRpcClient, JsonRpcError, JsonRpcServer
from repro.chain.timeline import month_to_timestamp


@pytest.fixture
def chain():
    chain = Blockchain()
    for k in range(3):
        chain.deploy(
            bytes([0x60, k]),
            timestamp=month_to_timestamp(0, fraction=0.1 * (k + 1)),
        )
    return chain


@pytest.fixture
def server(chain):
    return JsonRpcServer(chain)


@pytest.fixture
def client(server):
    return JsonRpcClient(server)


def send(server, body) -> dict:
    return json.loads(server.handle(json.dumps(body)))


class TestErrorEnvelope:
    def test_parse_error_has_null_id(self, server):
        response = json.loads(server.handle("{truncated"))
        assert response["error"]["code"] == -32700
        assert response["id"] is None

    def test_non_object_request_is_invalid(self, server):
        response = send(server, [1, 2, 3])
        assert response["error"]["code"] == -32600

    def test_missing_jsonrpc_version_is_invalid(self, server):
        response = send(server, {"method": "eth_blockNumber", "id": 4})
        assert response["error"]["code"] == -32600

    def test_non_string_method_is_invalid_but_echoes_id(self, server):
        response = send(server, {"jsonrpc": "2.0", "id": 9, "method": 42})
        assert response["error"]["code"] == -32600
        assert response["id"] == 9

    def test_unknown_method_code_and_id_echo(self, server):
        response = send(
            server,
            {"jsonrpc": "2.0", "id": 11, "method": "eth_call", "params": []},
        )
        assert response["error"]["code"] == -32601
        assert response["id"] == 11

    def test_missing_params_are_invalid_params(self, server):
        for method in (
            "eth_getCode",
            "eth_getTransactionByHash",
            "eth_subscribe",
            "eth_unsubscribe",
            "eth_getFilterChanges",
        ):
            response = send(
                server,
                {"jsonrpc": "2.0", "id": 1, "method": method, "params": []},
            )
            assert response["error"]["code"] == -32602, method

    def test_malformed_address_is_invalid_params(self, server):
        response = send(
            server,
            {
                "jsonrpc": "2.0",
                "id": 2,
                "method": "eth_getCode",
                "params": ["0x123", "latest"],
            },
        )
        assert response["error"]["code"] == -32602


class TestSubscriptionErrors:
    def test_unknown_kind_is_invalid_params(self, client):
        with pytest.raises(JsonRpcError) as excinfo:
            client.subscribe("newLogs")
        assert excinfo.value.code == -32602

    def test_non_string_kind_is_invalid_params(self, client):
        with pytest.raises(JsonRpcError) as excinfo:
            client.call("eth_subscribe", [7])
        assert excinfo.value.code == -32602

    def test_unknown_filter_id_is_filter_not_found(self, client):
        with pytest.raises(JsonRpcError) as excinfo:
            client.filter_changes("0xdead")
        assert excinfo.value.code == -32001

    def test_drained_after_unsubscribe_is_filter_not_found(self, client):
        subscription_id = client.subscribe("newContracts")
        assert client.unsubscribe(subscription_id)
        with pytest.raises(JsonRpcError) as excinfo:
            client.filter_changes(subscription_id)
        assert excinfo.value.code == -32001

    def test_unsubscribe_unknown_id_returns_false(self, client):
        assert client.unsubscribe("0xbeef") is False

    def test_filter_count_is_bounded(self, chain):
        server = JsonRpcServer(chain, max_filters=2)
        client = JsonRpcClient(server)
        client.subscribe("newHeads")
        kept = client.subscribe("newContracts")
        with pytest.raises(JsonRpcError) as excinfo:
            client.subscribe("newHeads")
        assert excinfo.value.code == -32000
        # Unsubscribing frees a slot.
        assert client.unsubscribe(kept)
        client.subscribe("newHeads")


class TestSubscriptionFlow:
    def test_new_contracts_filter_sees_deploys(self, chain, client):
        subscription_id = client.subscribe("newContracts")
        address = chain.deploy(
            b"\x60\x0a\x00", timestamp=month_to_timestamp(1, 0.5)
        )
        events, dropped = client.filter_changes(subscription_id)
        assert dropped == 0
        (event,) = events
        assert event["address"] == address
        assert bytes.fromhex(event["code"][2:]) == chain.get_code(address)
        assert int(event["blockNumber"], 16) > 0
        # Drained: a second poll is empty.
        assert client.filter_changes(subscription_id) == ([], 0)

    def test_new_heads_filter_reports_each_block_once(self, chain, client):
        subscription_id = client.subscribe("newHeads")
        same = month_to_timestamp(2, 0.5)
        chain.deploy(b"\x60\x01", timestamp=same)
        chain.deploy(b"\x60\x02", timestamp=same)  # same block
        chain.deploy(b"\x60\x03", timestamp=month_to_timestamp(2, 0.9))
        events, __ = client.filter_changes(subscription_id)
        assert len(events) == 2
        numbers = [int(e["number"], 16) for e in events]
        assert numbers == sorted(numbers)

    def test_independent_filters_have_independent_cursors(
        self, chain, client
    ):
        first = client.subscribe("newContracts")
        chain.deploy(b"\x60\x01", timestamp=month_to_timestamp(3, 0.2))
        second = client.subscribe("newContracts")
        chain.deploy(b"\x60\x02", timestamp=month_to_timestamp(3, 0.4))
        first_events, __ = client.filter_changes(first)
        second_events, __ = client.filter_changes(second)
        assert len(first_events) == 2
        assert len(second_events) == 1  # opened after the first deploy

    def test_bounded_filter_drops_oldest_and_reports(self, chain):
        server = JsonRpcServer(chain, max_pending_per_filter=2)
        client = JsonRpcClient(server)
        subscription_id = client.subscribe("newContracts")
        for k in range(5):
            chain.deploy(
                bytes([0x61, k]), timestamp=month_to_timestamp(4, 0.1 * (k + 1))
            )
        events, dropped = client.filter_changes(subscription_id)
        assert len(events) == 2
        assert dropped == 3
        # Drop counter resets once reported.
        assert client.filter_changes(subscription_id) == ([], 0)

    def test_unsubscribing_last_filter_detaches_listener(self, chain, client):
        subscription_id = client.subscribe("newContracts")
        assert client.unsubscribe(subscription_id)
        # No filters left: deploys must not error or accumulate anywhere.
        chain.deploy(b"\x60\x0b", timestamp=month_to_timestamp(5, 0.5))
        fresh = client.subscribe("newContracts")
        assert client.filter_changes(fresh) == ([], 0)
