"""Tests for the study-window timeline helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chain.timeline import (
    MONTHS,
    N_MONTHS,
    block_number_at,
    month_index,
    month_label,
    month_to_timestamp,
    timestamp_in_month,
    timestamp_to_month,
)


class TestWindowShape:
    def test_thirteen_months(self):
        assert N_MONTHS == 13
        assert len(MONTHS) == 13

    def test_boundary_labels(self):
        assert MONTHS[0] == "2023-10"
        assert MONTHS[-1] == "2024-10"

    def test_labels_are_month_sequence(self):
        assert MONTHS[3] == "2024-01"  # year rollover
        assert MONTHS[12] == "2024-10"

    def test_month_index_roundtrip(self):
        for index, label in enumerate(MONTHS):
            assert month_index(label) == index

    def test_month_index_rejects_outside(self):
        with pytest.raises(ValueError):
            month_index("2023-09")
        with pytest.raises(ValueError):
            month_index("2024-11")

    def test_month_label_rejects_outside(self):
        with pytest.raises(ValueError):
            month_label(13)
        with pytest.raises(ValueError):
            month_label(-1)


class TestTimestamps:
    @given(st.integers(min_value=0, max_value=12),
           st.floats(min_value=0.0, max_value=0.999))
    def test_timestamp_roundtrips_to_month(self, index, fraction):
        timestamp = month_to_timestamp(index, fraction)
        assert timestamp_to_month(timestamp) == index

    def test_month_starts_are_increasing(self):
        starts = [month_to_timestamp(i) for i in range(N_MONTHS)]
        assert starts == sorted(starts)
        assert all(later - earlier > 27 * 86400
                   for earlier, later in zip(starts, starts[1:]))

    def test_outside_window_rejected(self):
        before = month_to_timestamp(0) - 1
        with pytest.raises(ValueError):
            timestamp_to_month(before)
        assert not timestamp_in_month(before)
        assert timestamp_in_month(month_to_timestamp(5))

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            month_to_timestamp(0, fraction=1.5)


class TestBlockNumbers:
    def test_window_is_after_shanghai(self):
        assert block_number_at(month_to_timestamp(0)) > 17_034_870

    def test_monotone_in_time(self):
        t0 = month_to_timestamp(0)
        assert block_number_at(t0 + 120) == block_number_at(t0) + 10

    def test_pre_shanghai_rejected(self):
        with pytest.raises(ValueError):
            block_number_at(1_600_000_000)
