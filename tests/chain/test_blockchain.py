"""Tests for the simulated ledger."""

import pytest

from repro.chain.blockchain import Blockchain, ChainError, derive_address
from repro.chain.timeline import month_to_timestamp

T0 = month_to_timestamp(0)


class TestDeployment:
    def test_deploy_returns_address_with_code(self):
        chain = Blockchain()
        address = chain.deploy(b"\x60\x01", timestamp=T0)
        assert address.startswith("0x") and len(address) == 42
        assert chain.get_code(address) == b"\x60\x01"

    def test_hex_string_code_accepted(self):
        chain = Blockchain()
        address = chain.deploy("0x6001", timestamp=T0)
        assert chain.get_code(address) == b"\x60\x01"

    def test_identical_code_gets_distinct_addresses(self):
        chain = Blockchain()
        a = chain.deploy(b"\x00", timestamp=T0)
        b = chain.deploy(b"\x00", timestamp=T0)
        assert a != b
        assert chain.get_code(a) == chain.get_code(b)

    def test_explicit_address(self):
        chain = Blockchain()
        address = "0x" + "ab" * 20
        assert chain.deploy(b"\x00", timestamp=T0, address=address) == address

    def test_duplicate_address_rejected(self):
        chain = Blockchain()
        address = chain.deploy(b"\x00", timestamp=T0)
        with pytest.raises(ChainError):
            chain.deploy(b"\x01", timestamp=T0, address=address)

    def test_malformed_address_rejected(self):
        chain = Blockchain()
        with pytest.raises(ChainError):
            chain.deploy(b"\x00", timestamp=T0, address="0x1234")
        with pytest.raises(ChainError):
            chain.deploy(b"\x00", timestamp=T0, address="0x" + "zz" * 20)

    def test_addresses_normalized_to_lowercase(self):
        chain = Blockchain()
        upper = "0x" + "AB" * 20
        address = chain.deploy(b"\x00", timestamp=T0, address=upper)
        assert address == upper.lower()
        assert chain.get_code(upper) == b"\x00"
        assert upper in chain


class TestQueries:
    def test_eoa_code_is_empty(self):
        chain = Blockchain()
        assert chain.get_code("0x" + "00" * 20) == b""
        assert chain.get_account("0x" + "00" * 20) is None

    def test_transaction_recorded(self):
        chain = Blockchain()
        address = chain.deploy(b"\x00", timestamp=T0)
        transactions = chain.transactions()
        assert len(transactions) == 1
        assert transactions[0].contract_address == address
        assert chain.get_transaction(transactions[0].tx_hash) is transactions[0]

    def test_unknown_transaction_raises(self):
        with pytest.raises(ChainError):
            Blockchain().get_transaction("0xdead")

    def test_block_metadata(self):
        chain = Blockchain()
        chain.deploy(b"\x00", timestamp=T0)
        block = chain.get_block(chain.head_block)
        assert block is not None
        assert block.timestamp == T0
        assert len(block.transactions) == 1

    def test_accounts_sorted_by_time(self):
        chain = Blockchain()
        late = chain.deploy(b"\x01", timestamp=T0 + 1000)
        early = chain.deploy(b"\x02", timestamp=T0)
        ordered = [account.address for account in chain.accounts()]
        assert ordered == [early, late]

    def test_len_and_count(self):
        chain = Blockchain()
        assert len(chain) == 0
        chain.deploy(b"\x00", timestamp=T0)
        assert len(chain) == chain.contract_count == 1

    def test_contains_rejects_garbage_silently(self):
        assert "not-an-address" not in Blockchain()


class TestDeriveAddress:
    def test_deterministic(self):
        assert derive_address("seed") == derive_address("seed")
        assert derive_address("a") != derive_address("b")

    def test_shape(self):
        address = derive_address(b"\x01\x02")
        assert address.startswith("0x") and len(address) == 42
