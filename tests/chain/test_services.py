"""Tests for the BigQuery stand-in, the explorer and the JSON-RPC plane."""

import json

import pytest

from repro.chain.bigquery import BigQueryClient
from repro.chain.blockchain import Blockchain
from repro.chain.explorer import PHISH_HACK_LABEL, Explorer
from repro.chain.rpc import JsonRpcClient, JsonRpcError, JsonRpcServer
from repro.chain.timeline import month_to_timestamp


@pytest.fixture
def populated_chain():
    chain = Blockchain()
    addresses = []
    for month in range(4):
        for k in range(3):
            addresses.append(
                chain.deploy(
                    bytes([month, k]),
                    timestamp=month_to_timestamp(month, fraction=0.1 * (k + 1)),
                )
            )
    return chain, addresses


class TestBigQuery:
    def test_total_count(self, populated_chain):
        chain, addresses = populated_chain
        assert BigQueryClient(chain).total_contract_count() == len(addresses)

    def test_window_filter(self, populated_chain):
        chain, __ = populated_chain
        client = BigQueryClient(chain)
        job = client.list_contracts(
            start_timestamp=month_to_timestamp(1),
            end_timestamp=month_to_timestamp(3),
        )
        assert job.total_rows == 6  # months 1 and 2
        assert all(
            month_to_timestamp(1) <= row.block_timestamp < month_to_timestamp(3)
            for row in job
        )

    def test_pagination_is_stable(self, populated_chain):
        chain, __ = populated_chain
        client = BigQueryClient(chain)
        all_rows = client.list_contracts().rows
        paged = (
            client.list_contracts(limit=5).rows
            + client.list_contracts(limit=5, offset=5).rows
            + client.list_contracts(limit=5, offset=10).rows
        )
        assert [r.address for r in paged] == [r.address for r in all_rows]

    def test_negative_offset_rejected(self, populated_chain):
        chain, __ = populated_chain
        with pytest.raises(ValueError):
            BigQueryClient(chain).list_contracts(offset=-1)

    def test_dry_run_estimates_bytes(self, populated_chain):
        chain, __ = populated_chain
        client = BigQueryClient(chain)
        assert client.dry_run() == client.total_contract_count() * 128


class TestExplorer:
    def test_flag_and_lookup(self, populated_chain):
        chain, addresses = populated_chain
        explorer = Explorer(chain)
        explorer.flag_phishing(addresses[0])
        assert explorer.is_phishing(addresses[0])
        assert explorer.get_label(addresses[0]) == PHISH_HACK_LABEL
        assert not explorer.is_phishing(addresses[1])
        assert explorer.get_label(addresses[1]) is None

    def test_scrape_batch(self, populated_chain):
        chain, addresses = populated_chain
        explorer = Explorer(chain)
        explorer.flag_phishing(addresses[2])
        flags = explorer.scrape(addresses[:4])
        assert flags[addresses[2]] is True
        assert sum(flags.values()) == 1

    def test_flagged_addresses_ground_truth(self, populated_chain):
        chain, addresses = populated_chain
        explorer = Explorer(chain)
        for address in addresses[:3]:
            explorer.flag_phishing(address)
        explorer.set_label(addresses[3], "Token Contract")
        assert sorted(addresses[:3]) == explorer.flagged_addresses()

    def test_label_lag_hides_recent_flags(self, populated_chain):
        chain, addresses = populated_chain
        explorer = Explorer(chain, label_lag_seconds=86400)
        explorer.flag_phishing(addresses[0])
        deployed = chain.get_account(addresses[0]).deployed_at
        assert not explorer.is_phishing(addresses[0], at_timestamp=deployed + 10)
        assert explorer.is_phishing(addresses[0], at_timestamp=deployed + 90000)
        # Without a timestamp the flag is visible (offline snapshot).
        assert explorer.is_phishing(addresses[0])

    def test_false_negatives_hide_a_fraction(self, populated_chain):
        chain, addresses = populated_chain
        explorer = Explorer(chain, false_negative_rate=1.0)
        explorer.flag_phishing(addresses[0])
        assert not explorer.is_phishing(addresses[0])

    def test_false_positives_add_flags(self, populated_chain):
        chain, addresses = populated_chain
        explorer = Explorer(chain, false_positive_rate=1.0)
        assert explorer.is_phishing(addresses[1])

    def test_noise_is_deterministic(self, populated_chain):
        chain, addresses = populated_chain
        explorer = Explorer(chain, false_negative_rate=0.5)
        for address in addresses:
            explorer.flag_phishing(address)
        first = [explorer.is_phishing(a) for a in addresses]
        second = [explorer.is_phishing(a) for a in addresses]
        assert first == second

    def test_bad_rates_rejected(self, populated_chain):
        chain, __ = populated_chain
        with pytest.raises(ValueError):
            Explorer(chain, false_negative_rate=1.5)


class TestJsonRpc:
    def test_get_code_roundtrip(self, populated_chain):
        chain, addresses = populated_chain
        client = JsonRpcClient(JsonRpcServer(chain))
        assert client.get_code(addresses[0]) == chain.get_code(addresses[0])

    def test_get_code_for_eoa_is_empty(self, populated_chain):
        chain, __ = populated_chain
        client = JsonRpcClient(JsonRpcServer(chain))
        assert client.get_code("0x" + "00" * 20) == b""

    def test_block_number_and_chain_id(self, populated_chain):
        chain, __ = populated_chain
        client = JsonRpcClient(JsonRpcServer(chain, chain_id=1))
        assert client.block_number() == chain.head_block
        assert client.chain_id() == 1

    def test_client_version(self, populated_chain):
        chain, __ = populated_chain
        client = JsonRpcClient(JsonRpcServer(chain))
        assert "PhishingHookSim" in client.client_version()

    def test_get_transaction(self, populated_chain):
        chain, addresses = populated_chain
        client = JsonRpcClient(JsonRpcServer(chain))
        tx = chain.transactions()[0]
        body = client.get_transaction(tx.tx_hash)
        assert body["creates"] == tx.contract_address
        assert int(body["blockNumber"], 16) == tx.block_number
        assert client.get_transaction("0xmissing") is None

    def test_unknown_method_raises(self, populated_chain):
        chain, __ = populated_chain
        client = JsonRpcClient(JsonRpcServer(chain))
        with pytest.raises(JsonRpcError) as excinfo:
            client.call("eth_sendRawTransaction", ["0x00"])
        assert excinfo.value.code == -32601

    def test_missing_params_raise(self, populated_chain):
        chain, __ = populated_chain
        client = JsonRpcClient(JsonRpcServer(chain))
        with pytest.raises(JsonRpcError) as excinfo:
            client.call("eth_getCode")
        assert excinfo.value.code == -32602

    def test_server_rejects_malformed_json(self, populated_chain):
        chain, __ = populated_chain
        server = JsonRpcServer(chain)
        response = json.loads(server.handle("{not json"))
        assert response["error"]["code"] == -32700

    def test_server_rejects_wrong_envelope(self, populated_chain):
        chain, __ = populated_chain
        server = JsonRpcServer(chain)
        response = json.loads(server.handle(json.dumps({"jsonrpc": "1.0"})))
        assert response["error"]["code"] == -32600

    def test_client_requires_exactly_one_backend(self, populated_chain):
        chain, __ = populated_chain
        server = JsonRpcServer(chain)
        with pytest.raises(ValueError):
            JsonRpcClient(server, transport=server.handle)
        with pytest.raises(ValueError):
            JsonRpcClient()

    def test_custom_transport_fault_injection(self, populated_chain):
        chain, __ = populated_chain
        server = JsonRpcServer(chain)

        def flaky(request):
            return json.dumps(
                {"jsonrpc": "2.0", "id": 1,
                 "error": {"code": -32000, "message": "boom"}}
            )

        client = JsonRpcClient(transport=flaky)
        with pytest.raises(JsonRpcError):
            client.block_number()
