"""Shared fixtures: a tiny fitted detector + bytecode batch."""

import pytest

from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.models.hsc import HSCDetector


@pytest.fixture(scope="session")
def artifact_dataset():
    corpus = build_corpus(
        CorpusConfig(n_phishing=24, n_benign=24, seed=11)
    )
    return Dataset.from_corpus(corpus, seed=11)


@pytest.fixture(scope="session")
def fitted_forest(artifact_dataset):
    detector = HSCDetector(variant="Random Forest", seed=0)
    detector.set_params(clf__n_estimators=12)
    detector.fit(artifact_dataset.bytecodes, artifact_dataset.labels)
    return detector


@pytest.fixture(scope="session")
def probe_batch(artifact_dataset):
    return artifact_dataset.bytecodes[:10]
