"""Artifact format: round trips, and every error path stays typed.

The load path must never hand back garbage: truncation, corruption,
foreign schemas, and wrong-dataset artifacts each raise their own typed
error (satellite: artifact error-path coverage).
"""

import json
import zipfile

import numpy as np
import pytest

from repro.artifacts import (
    CorruptArtifactError,
    FingerprintMismatchError,
    IntegrityError,
    SchemaVersionError,
    UnknownModelClassError,
    artifact_digest,
    load_artifact,
    read_manifest,
    save_artifact,
)
from repro.artifacts.format import _MANIFEST_KEY
from repro.models.hsc import HSCDetector


@pytest.fixture()
def artifact(fitted_forest, artifact_dataset, tmp_path):
    info = save_artifact(
        fitted_forest,
        tmp_path / "forest.npz",
        model_name="Random Forest",
        dataset_fingerprint=artifact_dataset.fingerprint(),
        metrics={"accuracy": 0.9},
    )
    return info


class TestRoundTrip:
    def test_bit_identical_probabilities(self, artifact, fitted_forest,
                                         probe_batch):
        model, manifest = load_artifact(artifact.path)
        assert isinstance(model, HSCDetector)
        assert np.array_equal(
            model.predict_proba(probe_batch),
            fitted_forest.predict_proba(probe_batch),
        )

    def test_params_round_trip(self, artifact, fitted_forest):
        model, __ = load_artifact(artifact.path)
        assert model.get_params() == fitted_forest.get_params()

    def test_manifest_carries_metadata(self, artifact, artifact_dataset):
        manifest = read_manifest(artifact.path)
        assert manifest["model_name"] == "Random Forest"
        assert manifest["dataset_fingerprint"] == artifact_dataset.fingerprint()
        assert manifest["metrics"] == {"accuracy": 0.9}
        assert manifest["digest"] == artifact.digest
        assert manifest["arrays"]  # stacked forest arrays present

    def test_content_addressing_is_stable(self, artifact, fitted_forest,
                                          artifact_dataset, tmp_path):
        again = save_artifact(
            fitted_forest,
            tmp_path / "again.npz",
            model_name="Random Forest",
            dataset_fingerprint=artifact_dataset.fingerprint(),
            metrics={"accuracy": 0.9},
        )
        assert again.digest == artifact.digest

    def test_loaded_forest_is_precompiled(self, artifact):
        model, __ = load_artifact(artifact.path)
        # Serve-ready without recompilation: the flat ensemble arrives
        # installed, not rebuilt on first predict.
        assert model.classifier_._flat is not None

    def test_fingerprint_gate_passes_on_match(self, artifact,
                                              artifact_dataset):
        model, __ = load_artifact(
            artifact.path,
            expected_fingerprint=artifact_dataset.fingerprint(),
        )
        assert model is not None


class TestErrorPaths:
    def test_truncated_file(self, artifact, tmp_path):
        clipped = tmp_path / "clipped.npz"
        clipped.write_bytes(artifact.path.read_bytes()[:200])
        with pytest.raises(CorruptArtifactError):
            load_artifact(clipped)

    def test_not_a_zip(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"definitely not a zip archive")
        with pytest.raises(CorruptArtifactError):
            load_artifact(bogus)

    def test_flipped_payload_bytes_fail_integrity(self, artifact, tmp_path):
        # Rewrite one payload array with altered bytes but intact zip
        # structure: only the digest check can catch this.
        with np.load(artifact.path, allow_pickle=False) as archive:
            members = {name: archive[name] for name in archive.files}
        victim = next(name for name in members if name != _MANIFEST_KEY)
        members[victim] = members[victim].copy()
        flat = members[victim].reshape(-1)
        flat[0] = flat[0] + 1
        tampered = tmp_path / "tampered.npz"
        with open(tampered, "wb") as handle:
            np.savez_compressed(handle, **members)
        with pytest.raises(IntegrityError):
            load_artifact(tampered)

    def test_schema_version_mismatch(self, artifact, tmp_path):
        with np.load(artifact.path, allow_pickle=False) as archive:
            members = {name: archive[name] for name in archive.files}
        manifest = json.loads(bytes(members[_MANIFEST_KEY].tobytes()))
        manifest["schema_version"] = 999
        members[_MANIFEST_KEY] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8
        )
        future = tmp_path / "future.npz"
        with open(future, "wb") as handle:
            np.savez_compressed(handle, **members)
        with pytest.raises(SchemaVersionError):
            load_artifact(future)
        with pytest.raises(SchemaVersionError):
            read_manifest(future)

    def test_fingerprint_mismatch(self, artifact):
        with pytest.raises(FingerprintMismatchError):
            load_artifact(artifact.path, expected_fingerprint="deadbeef")

    def test_foreign_class_refused(self, artifact, tmp_path):
        with np.load(artifact.path, allow_pickle=False) as archive:
            members = {name: archive[name] for name in archive.files}
        manifest = json.loads(bytes(members[_MANIFEST_KEY].tobytes()))
        manifest["model"]["class"] = "os.path:join"
        manifest["digest"] = artifact_digest(manifest)
        members[_MANIFEST_KEY] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8
        )
        hostile = tmp_path / "hostile.npz"
        with open(hostile, "wb") as handle:
            np.savez_compressed(handle, **members)
        with pytest.raises(UnknownModelClassError):
            load_artifact(hostile)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_artifact(tmp_path / "absent.npz")

    def test_malformed_array_name_stays_typed(self, artifact, tmp_path):
        # A tampered manifest declaring a non-"aN" member must raise the
        # typed error, not a bare ValueError from int().
        with np.load(artifact.path, allow_pickle=False) as archive:
            members = {name: archive[name] for name in archive.files}
        manifest = json.loads(bytes(members[_MANIFEST_KEY].tobytes()))
        victim = next(iter(manifest["arrays"]))
        manifest["arrays"]["zz"] = manifest["arrays"].pop(victim)
        members["zz"] = members.pop(victim)
        members[_MANIFEST_KEY] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8
        )
        renamed = tmp_path / "renamed.npz"
        with open(renamed, "wb") as handle:
            np.savez_compressed(handle, **members)
        with pytest.raises(CorruptArtifactError):
            load_artifact(renamed)

    def test_wrong_format_marker(self, tmp_path):
        impostor = tmp_path / "impostor.npz"
        with open(impostor, "wb") as handle:
            np.savez_compressed(
                handle,
                **{_MANIFEST_KEY: np.frombuffer(
                    json.dumps({"format": "something-else"}).encode(),
                    dtype=np.uint8,
                )},
            )
        with pytest.raises(CorruptArtifactError):
            load_artifact(impostor)

    def test_errors_share_a_catchable_base(self):
        from repro.artifacts import ArtifactError

        for error in (CorruptArtifactError, IntegrityError,
                      SchemaVersionError, FingerprintMismatchError,
                      UnknownModelClassError):
            assert issubclass(error, ArtifactError)
