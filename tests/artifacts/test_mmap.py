"""Zero-copy mmap loads: correctness, sharing, and re-spool safety.

``load_artifact(mmap_mode="r")`` must serve bit-identical predictions
while backing the model's node arrays with read-only maps of the file
(no heap copies), survive a concurrent re-spool of the same path
(mkstemp + rename replaces the directory entry, never the mapped
inode), and wire through ``ModelStore.load`` / ``mmap_path_of`` and
``ScanService.from_artifact``.
"""

import os

import numpy as np
import pytest

from repro.artifacts import (
    ModelStore,
    is_stored_layout,
    load_artifact,
    repack_artifact,
    save_artifact,
)
from repro.serve.service import ScanService


@pytest.fixture()
def stored_artifact(fitted_forest, tmp_path):
    return save_artifact(
        fitted_forest, tmp_path / "m.npz", compression="stored"
    )


def _leaf_arrays(node):
    """Every ndarray reachable through a model's state tree."""
    stack, found = [node], []
    while stack:
        current = stack.pop()
        if isinstance(current, np.ndarray):
            found.append(current)
        elif isinstance(current, dict):
            stack.extend(current.values())
        elif isinstance(current, (list, tuple)):
            stack.extend(current)
    return found


class TestMappedLoad:
    def test_bit_identical(self, stored_artifact, fitted_forest,
                           probe_batch):
        model, manifest = load_artifact(stored_artifact.path, mmap_mode="r")
        assert manifest["digest"] == stored_artifact.digest
        assert np.array_equal(
            model.predict_proba(probe_batch),
            fitted_forest.predict_proba(probe_batch),
        )

    def test_arrays_are_memory_mapped(self, stored_artifact, fitted_forest):
        model, __ = load_artifact(stored_artifact.path, mmap_mode="r")
        mapped = [
            a for a in _leaf_arrays(model.state_dict())
            if isinstance(a, np.memmap)
            or isinstance(getattr(a, "base", None), np.memmap)
        ]
        assert mapped, "no state array is backed by a memory map"

    def test_deflated_artifact_falls_back_to_copy(self, fitted_forest,
                                                  probe_batch, tmp_path):
        info = save_artifact(fitted_forest, tmp_path / "m.npz")
        model, __ = load_artifact(info.path, mmap_mode="r")
        assert np.array_equal(
            model.predict_proba(probe_batch),
            fitted_forest.predict_proba(probe_batch),
        )

    def test_writable_modes_rejected(self, stored_artifact):
        with pytest.raises(ValueError, match="read-only"):
            load_artifact(stored_artifact.path, mmap_mode="r+")

    def test_fingerprint_gate_still_runs(self, stored_artifact):
        from repro.artifacts import FingerprintMismatchError

        with pytest.raises(FingerprintMismatchError):
            load_artifact(
                stored_artifact.path,
                mmap_mode="r",
                expected_fingerprint="deadbeef",
            )


class TestConcurrentRespool:
    def test_open_maps_survive_respool(self, stored_artifact,
                                       fitted_forest, probe_batch,
                                       tmp_path):
        # Two "workers" map the spooled artifact; a third re-spools the
        # same path (mkstemp + rename, exactly like ModelStore.path_of
        # and repack_artifact). The old inode must stay alive under the
        # open maps, so both workers keep serving bit-identical scores,
        # while a fresh load maps the new directory entry.
        reference = fitted_forest.predict_proba(probe_batch)
        worker_a, __ = load_artifact(stored_artifact.path, mmap_mode="r")
        worker_b, __ = load_artifact(stored_artifact.path, mmap_mode="r")
        inode_before = os.stat(stored_artifact.path).st_ino

        # Third party re-derives the spool file in place.
        repack_artifact(
            stored_artifact.path, stored_artifact.path,
            compression="stored",
        )
        inode_after = os.stat(stored_artifact.path).st_ino
        assert inode_before != inode_after, (
            "re-spool rewrote in place instead of mkstemp+rename"
        )

        assert np.array_equal(worker_a.predict_proba(probe_batch),
                              reference)
        assert np.array_equal(worker_b.predict_proba(probe_batch),
                              reference)
        fresh, __ = load_artifact(stored_artifact.path, mmap_mode="r")
        assert np.array_equal(fresh.predict_proba(probe_batch), reference)


class TestStoreWiring:
    def test_store_mmap_load(self, fitted_forest, probe_batch, tmp_path):
        store = ModelStore(tmp_path / "store")
        store.put(fitted_forest, tags=("production",))
        model, __ = store.load("production", mmap_mode="r")
        assert np.array_equal(
            model.predict_proba(probe_batch),
            fitted_forest.predict_proba(probe_batch),
        )

    def test_derived_stored_spool_is_cached(self, fitted_forest, tmp_path):
        from repro.artifacts.backends import MemoryBucket, ObjectStoreBackend

        store = ModelStore(
            backend=ObjectStoreBackend(MemoryBucket()),
            cache_dir=tmp_path / "spool",
        )
        version = store.put(fitted_forest, tags=("production",))
        derived = store.mmap_path_of("production")
        assert derived.name == f"{version}.stored.npz"
        assert is_stored_layout(derived)
        stamp = derived.stat().st_mtime_ns
        # Second resolution reuses the immutable derived file.
        assert store.mmap_path_of("production") == derived
        assert derived.stat().st_mtime_ns == stamp

    def test_already_stored_artifact_maps_directly(self, fitted_forest,
                                                   tmp_path):
        # An imported stored-layout artifact needs no derived copy on
        # path-addressable backends.
        info = save_artifact(
            fitted_forest, tmp_path / "m.npz", compression="stored"
        )
        store = ModelStore(tmp_path / "store")
        store.import_artifact(info.path, tags=("production",))
        path = store.mmap_path_of("production")
        assert is_stored_layout(path)

    def test_service_cold_start_mmap(self, fitted_forest, probe_batch,
                                     tmp_path):
        store = ModelStore(tmp_path / "store")
        store.put(fitted_forest, tags=("production",))
        plain = ScanService.from_artifact("production", store=store)
        mapped = ScanService.from_artifact(
            "production", store=store, mmap_mode="r"
        )
        for left, right in zip(
            plain.scan_bytecodes(probe_batch),
            mapped.scan_bytecodes(probe_batch),
        ):
            assert left.probability == right.probability
            assert left.is_phishing == right.is_phishing
