"""Schema v2: shared-array storage, the compression knob, repack, zstd.

Schema 2 stores identical payload arrays once (ensemble children share
node tables); schema 1 artifacts written by earlier builds must keep
loading bit-for-bit. The zip layout (``compression=``) is a transport
property: it never changes the content digest, and ``repack_artifact``
converts between layouts losslessly.
"""

import zipfile

import numpy as np
import pytest

import repro.artifacts.format as artifact_format
from repro.artifacts import (
    SCHEMA_VERSION,
    ZstdUnavailableError,
    is_stored_layout,
    load_artifact,
    read_manifest,
    repack_artifact,
    save_artifact,
    zstd_available,
)
from repro.core.registry import create_model


@pytest.fixture(scope="module")
def fitted_gbdt(artifact_dataset):
    # Boosted ensembles are the shared-array case: their per-tree
    # children repeat class tables and small node arrays verbatim.
    model = create_model("XGBoost", seed=0)
    model.set_params(clf__n_estimators=20)
    model.fit(artifact_dataset.bytecodes, artifact_dataset.labels)
    return model


class TestSharedArrays:
    def test_schema_version_is_2(self, fitted_forest, tmp_path):
        info = save_artifact(fitted_forest, tmp_path / "m.npz")
        assert info.manifest["schema_version"] == SCHEMA_VERSION == 2

    def test_duplicate_arrays_stored_once(self, fitted_gbdt, tmp_path):
        info = save_artifact(fitted_gbdt, tmp_path / "gbdt.npz")
        raw: list = []
        from repro.artifacts.state import capture, encode

        captured = capture(fitted_gbdt)
        encode(captured["params"], raw)
        encode(captured["state"], raw)
        stored = len(info.manifest["arrays"])
        assert stored < len(raw), (
            "boosted ensemble saved without shared-array dedup "
            f"({stored} stored vs {len(raw)} referenced)"
        )
        # Every stored array is unique by content.
        digests = [meta["sha256"] for meta in info.manifest["arrays"].values()]
        assert len(digests) == len(set(digests))

    def test_shared_arrays_round_trip_bit_identical(
        self, fitted_gbdt, artifact_dataset, tmp_path
    ):
        probe = artifact_dataset.bytecodes[:10]
        reference = fitted_gbdt.predict_proba(probe)
        info = save_artifact(fitted_gbdt, tmp_path / "gbdt.npz")
        model, __ = load_artifact(info.path)
        assert np.array_equal(model.predict_proba(probe), reference)

    def test_v1_artifact_loads_bit_identical(
        self, fitted_gbdt, artifact_dataset, tmp_path, monkeypatch
    ):
        # A v1 writer appends every referenced array; the v2 reader must
        # reproduce the exact model from either layout.
        probe = artifact_dataset.bytecodes[:10]
        reference = fitted_gbdt.predict_proba(probe)
        monkeypatch.setattr(artifact_format, "SCHEMA_VERSION", 1)
        v1 = save_artifact(fitted_gbdt, tmp_path / "v1.npz")
        monkeypatch.undo()
        assert read_manifest(v1.path)["schema_version"] == 1
        model, manifest = load_artifact(v1.path)
        assert manifest["schema_version"] == 1
        assert np.array_equal(model.predict_proba(probe), reference)

    def test_v1_vs_v2_array_counts(self, fitted_gbdt, tmp_path, monkeypatch):
        monkeypatch.setattr(artifact_format, "SCHEMA_VERSION", 1)
        v1 = save_artifact(fitted_gbdt, tmp_path / "v1.npz")
        monkeypatch.undo()
        v2 = save_artifact(fitted_gbdt, tmp_path / "v2.npz")
        assert len(v2.manifest["arrays"]) < len(v1.manifest["arrays"])


class TestCompressionKnob:
    def test_default_stays_deflated(self, fitted_forest, tmp_path):
        save_artifact(fitted_forest, tmp_path / "m.npz")
        with zipfile.ZipFile(tmp_path / "m.npz") as archive:
            assert any(
                info.compress_type == zipfile.ZIP_DEFLATED
                for info in archive.infolist()
            )
        assert not is_stored_layout(tmp_path / "m.npz")

    def test_stored_layout_is_uncompressed(self, fitted_forest, tmp_path):
        save_artifact(
            fitted_forest, tmp_path / "m.npz", compression="stored"
        )
        assert is_stored_layout(tmp_path / "m.npz")

    def test_layout_never_changes_the_digest(self, fitted_forest, tmp_path):
        deflated = save_artifact(fitted_forest, tmp_path / "a.npz")
        stored = save_artifact(
            fitted_forest, tmp_path / "b.npz", compression="stored"
        )
        assert deflated.digest == stored.digest

    def test_unknown_compression_rejected(self, fitted_forest, tmp_path):
        with pytest.raises(ValueError, match="compression"):
            save_artifact(
                fitted_forest, tmp_path / "m.npz", compression="lzma"
            )

    def test_bare_path_gets_no_npz_suffix(self, fitted_forest, tmp_path):
        # np.savez appends ".npz" to bare string/Path destinations;
        # save_artifact writes through an open handle precisely so the
        # file lands at the exact path the caller named.
        for compression in ("deflate", "stored"):
            target = tmp_path / f"bare-{compression}"
            info = save_artifact(
                fitted_forest, target, compression=compression
            )
            assert info.path == target
            assert target.is_file()
            assert not target.with_suffix(".npz").exists()
            model, __ = load_artifact(target)
            assert model is not None

    def test_npz_suffixed_path_is_used_verbatim(self, fitted_forest,
                                                tmp_path):
        target = tmp_path / "suffixed.npz"
        save_artifact(fitted_forest, target)
        assert target.is_file()
        assert not (tmp_path / "suffixed.npz.npz").exists()


class TestRepack:
    def test_repack_preserves_digest_and_model(
        self, fitted_forest, artifact_dataset, tmp_path
    ):
        probe = artifact_dataset.bytecodes[:10]
        reference = fitted_forest.predict_proba(probe)
        info = save_artifact(fitted_forest, tmp_path / "m.npz")
        stored = repack_artifact(
            info.path, tmp_path / "m.stored.npz", compression="stored"
        )
        assert is_stored_layout(stored)
        assert read_manifest(stored)["digest"] == info.digest
        model, __ = load_artifact(stored)
        assert np.array_equal(model.predict_proba(probe), reference)
        # And back to deflate.
        deflated = repack_artifact(
            stored, tmp_path / "m.deflate.npz", compression="deflate"
        )
        assert not is_stored_layout(deflated)
        assert read_manifest(deflated)["digest"] == info.digest

    def test_repack_verifies_payload(self, fitted_forest, tmp_path):
        from repro.artifacts import IntegrityError
        from repro.artifacts.format import _MANIFEST_KEY

        info = save_artifact(fitted_forest, tmp_path / "m.npz")
        with np.load(info.path, allow_pickle=False) as archive:
            members = {name: archive[name] for name in archive.files}
        victim = next(name for name in members if name != _MANIFEST_KEY)
        members[victim] = members[victim].copy()
        members[victim].reshape(-1)[0] += 1
        tampered = tmp_path / "tampered.npz"
        with open(tampered, "wb") as handle:
            np.savez_compressed(handle, **members)
        with pytest.raises(IntegrityError):
            repack_artifact(tampered, tmp_path / "out.npz")


class TestZstdGate:
    def test_export_without_backend_raises_typed_error(
        self, fitted_forest, tmp_path, monkeypatch
    ):
        import repro.artifacts.compress as compress
        from repro.artifacts import ModelStore

        store = ModelStore(tmp_path / "store")
        store.put(fitted_forest, tags=("production",))
        monkeypatch.setattr(compress, "_backend", lambda: None)
        assert not zstd_available()
        with pytest.raises(ZstdUnavailableError, match="zstd"):
            store.export(
                "production", tmp_path / "out.npz.zst", compress="zstd"
            )

    @pytest.mark.skipif(
        not zstd_available(), reason="no zstd backend in this interpreter"
    )
    def test_zstd_export_import_round_trip(self, fitted_forest, tmp_path):
        from repro.artifacts import ModelStore

        store = ModelStore(tmp_path / "store")
        version = store.put(fitted_forest, tags=("production",))
        shipped = store.export(
            "production", tmp_path / "ship", compress="zstd"
        )
        assert shipped.name.endswith(".zst")
        other = ModelStore(tmp_path / "other")
        assert other.import_artifact(shipped) == version
