"""Train → save here; load + score in a *separate* Python process.

The acceptance gate for "portable bytes": nothing about a loaded model
may depend on in-process state, so a fresh interpreter must reproduce
the training process's probabilities bit for bit.
"""

import os
import pathlib
import subprocess
import sys

import numpy as np

from repro.artifacts import save_artifact

_LOADER = """
import sys
import numpy as np
from repro.artifacts import load_artifact

artifact, codes_file, out_file = sys.argv[1:4]
bytecodes = [
    bytes.fromhex(line)
    for line in open(codes_file, encoding="utf-8").read().split()
]
model, manifest = load_artifact(artifact)
np.save(out_file, model.predict_proba(bytecodes))
print(manifest["digest"])
"""


def test_cross_process_bit_identity(fitted_forest, probe_batch, tmp_path):
    info = save_artifact(
        fitted_forest, tmp_path / "forest.npz", model_name="Random Forest"
    )
    expected = fitted_forest.predict_proba(probe_batch)

    codes_file = tmp_path / "codes.hex"
    codes_file.write_text(
        "\n".join(code.hex() for code in probe_batch), encoding="utf-8"
    )
    out_file = tmp_path / "probs.npy"

    src = pathlib.Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _LOADER, str(info.path), str(codes_file),
         str(out_file)],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip() == info.digest

    fresh = np.load(out_file)
    assert np.array_equal(fresh, expected), (
        "cross-process predict_proba diverged from the training process"
    )
