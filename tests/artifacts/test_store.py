"""ModelStore: content addressing, tags, transport, GC."""

import numpy as np
import pytest

from repro.artifacts import (
    IntegrityError,
    ModelStore,
    UnknownVersionError,
    save_artifact,
)


@pytest.fixture()
def store(tmp_path):
    return ModelStore(tmp_path / "store")


@pytest.fixture()
def stocked(store, fitted_forest, artifact_dataset):
    version = store.put(
        fitted_forest,
        model_name="Random Forest",
        dataset_fingerprint=artifact_dataset.fingerprint(),
        metrics={"accuracy": 0.91},
        tags=("latest", "production"),
    )
    return store, version


class TestPutAndLoad:
    def test_put_load_round_trip(self, stocked, fitted_forest, probe_batch):
        store, version = stocked
        model, manifest = store.load(version)
        assert manifest["digest"] == version
        assert np.array_equal(
            model.predict_proba(probe_batch),
            fitted_forest.predict_proba(probe_batch),
        )

    def test_content_addressed_dedup(self, stocked, fitted_forest,
                                     artifact_dataset):
        store, version = stocked
        again = store.put(
            fitted_forest,
            model_name="Random Forest",
            dataset_fingerprint=artifact_dataset.fingerprint(),
            metrics={"accuracy": 0.91},
            tags=("candidate",),
        )
        assert again == version
        assert len(store) == 1  # one object, three tags

    def test_resolve_tag_version_and_prefix(self, stocked):
        store, version = stocked
        assert store.resolve("production") == version
        assert store.resolve(version) == version
        assert store.resolve(version[:12]) == version

    def test_unknown_ref_raises(self, stocked):
        store, __ = stocked
        with pytest.raises(UnknownVersionError):
            store.resolve("no-such-tag")

    def test_list_rows(self, stocked):
        store, version = stocked
        rows = store.list()
        assert len(rows) == 1
        row = rows[0]
        assert row["version"] == version
        assert row["model_name"] == "Random Forest"
        assert row["tags"] == ["latest", "production"]
        assert row["metrics"]["accuracy"] == 0.91
        assert row["size_bytes"] > 0

    def test_retag_moves_pointer(self, stocked, artifact_dataset):
        from repro.models.hsc import HSCDetector

        store, old = stocked
        other = HSCDetector(variant="Logistic Regression", seed=1)
        other.fit(artifact_dataset.bytecodes, artifact_dataset.labels)
        new = store.put(other, model_name="Logistic Regression",
                        tags=("candidate",))
        assert new != old
        store.tag("production", new)
        assert store.resolve("production") == new
        assert store.resolve("latest") == old  # untouched

    def test_invalid_tag_name(self, stocked):
        store, version = stocked
        with pytest.raises(ValueError):
            store.tag("../evil", version)


class TestTransportAndGc:
    def test_export_import_round_trip(self, stocked, tmp_path, probe_batch,
                                      fitted_forest):
        store, version = stocked
        shipped = store.export("production", tmp_path / "shipped.npz")
        other = ModelStore(tmp_path / "other-box")
        imported = other.import_artifact(shipped, tags=("production",))
        assert imported == version
        model, __ = other.load("production")
        assert np.array_equal(
            model.predict_proba(probe_batch),
            fitted_forest.predict_proba(probe_batch),
        )

    def test_import_rejects_tampered_file(self, stocked, tmp_path):
        store, version = stocked
        shipped = store.export(version, tmp_path / "shipped.npz")
        blob = bytearray(shipped.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        shipped.write_bytes(bytes(blob))
        other = ModelStore(tmp_path / "other-box")
        with pytest.raises(Exception) as caught:
            other.import_artifact(shipped)
        from repro.artifacts import ArtifactError

        assert isinstance(caught.value, ArtifactError)
        assert len(other) == 0  # nothing admitted

    def test_gc_removes_only_untagged(self, stocked, artifact_dataset):
        from repro.models.hsc import HSCDetector

        store, keep = stocked
        doomed_model = HSCDetector(variant="k-NN", seed=0)
        doomed_model.fit(artifact_dataset.bytecodes, artifact_dataset.labels)
        doomed = store.put(doomed_model, tags=("temp",))
        store.untag("temp")
        removed = store.gc()
        assert removed == [doomed]
        assert store.versions() == [keep]

    def test_export_artifact_loadable_standalone(self, stocked, tmp_path,
                                                 probe_batch):
        from repro.artifacts import load_artifact

        store, version = stocked
        shipped = store.export(version, tmp_path)
        model, manifest = load_artifact(shipped)
        assert manifest["digest"] == version
        assert model.predict_proba(probe_batch).shape == (len(probe_batch), 2)
