"""Store backends: layout compatibility, URL scheme, ETag integrity."""

import json

import numpy as np
import pytest

from repro.artifacts import (
    DiskBucket,
    IntegrityError,
    LocalFSBackend,
    MemoryBucket,
    ModelStore,
    ObjectStoreBackend,
    backend_from_url,
    save_artifact,
)


@pytest.fixture(params=["localfs", "memory", "bucket"])
def backend(request, tmp_path):
    if request.param == "localfs":
        return LocalFSBackend(tmp_path / "store")
    if request.param == "memory":
        return ObjectStoreBackend(MemoryBucket("test"))
    return ObjectStoreBackend(DiskBucket(tmp_path / "bucket"))


class TestBackendContract:
    """Every backend speaks the same blob API."""

    def test_put_get_roundtrip(self, backend):
        etag = backend.put("objects/abc.npz", b"payload-bytes")
        assert isinstance(etag, str) and len(etag) == 64
        assert backend.get("objects/abc.npz") == b"payload-bytes"
        assert backend.etag("objects/abc.npz") == etag
        assert backend.size("objects/abc.npz") == len(b"payload-bytes")

    def test_missing_key_raises_keyerror(self, backend):
        with pytest.raises(KeyError):
            backend.get("objects/nope.npz")
        with pytest.raises(KeyError):
            backend.size("objects/nope.npz")
        assert backend.etag("objects/nope.npz") is None
        assert not backend.exists("objects/nope.npz")

    def test_overwrite_replaces_content(self, backend):
        backend.put("tags.json", b"{}")
        backend.put("tags.json", b'{"production": "x"}')
        assert backend.get("tags.json") == b'{"production": "x"}'

    def test_delete(self, backend):
        backend.put("objects/a.npz", b"a")
        assert backend.delete("objects/a.npz")
        assert not backend.delete("objects/a.npz")
        assert not backend.exists("objects/a.npz")

    def test_list_by_prefix(self, backend):
        backend.put("objects/a.npz", b"a")
        backend.put("objects/b.npz", b"b")
        backend.put("tags.json", b"{}")
        assert backend.list("objects/") == ["objects/a.npz", "objects/b.npz"]
        assert "tags.json" in backend.list("")

    def test_lock_is_reentrant_across_uses(self, backend):
        with backend.lock():
            pass
        with backend.lock():  # lock must be reusable
            pass


class TestLocalFSLayoutCompatibility:
    """The refactor must read and write the pre-backend directory layout."""

    def test_writes_classic_layout(self, tmp_path, fitted_forest):
        store = ModelStore(tmp_path / "store")
        version = store.put(fitted_forest, tags=("production",))
        # Exactly the historical on-disk shape.
        assert (tmp_path / "store" / "objects" / f"{version}.npz").is_file()
        table = json.loads(
            (tmp_path / "store" / "tags.json").read_text()
        )
        assert table == {"production": version}

    def test_reads_pre_refactor_store(self, tmp_path, fitted_forest,
                                      probe_batch):
        # Hand-build a store the way the pre-backend ModelStore laid it
        # out: objects/<digest>.npz + tags.json, nothing else.
        root = tmp_path / "legacy"
        (root / "objects").mkdir(parents=True)
        info = save_artifact(
            fitted_forest, root / "objects" / "artifact.npz",
            model_name="Random Forest",
        )
        (root / "objects" / "artifact.npz").rename(
            root / "objects" / f"{info.digest}.npz"
        )
        (root / "tags.json").write_text(
            json.dumps({"production": info.digest})
        )

        store = ModelStore(root)
        assert store.versions() == [info.digest]
        assert store.tags() == {"production": info.digest}
        model, manifest = store.load("production")
        assert manifest["digest"] == info.digest
        assert np.array_equal(
            model.predict_proba(probe_batch),
            fitted_forest.predict_proba(probe_batch),
        )

    def test_key_escape_rejected(self, tmp_path):
        backend = LocalFSBackend(tmp_path / "store")
        with pytest.raises(ValueError):
            backend.put("../outside.txt", b"x")

    def test_sibling_prefix_directory_rejected(self, tmp_path):
        # '/x/store-other' shares a string prefix with '/x/store'; a
        # containment check must not be fooled by it.
        (tmp_path / "store-other").mkdir()
        backend = LocalFSBackend(tmp_path / "store")
        with pytest.raises(ValueError):
            backend.put("../store-other/evil.txt", b"x")
        disk = DiskBucket(tmp_path / "store")
        with pytest.raises(ValueError):
            disk.put_object("../store-other/evil.txt", b"x")

    def test_put_path_consume_moves_and_copy_preserves(self, tmp_path):
        backend = LocalFSBackend(tmp_path / "store")
        moved = tmp_path / "scratch-a.bin"
        moved.write_bytes(b"move me")
        backend.put_path("objects/a.npz", moved, consume=True)
        assert not moved.exists()  # renamed into place, single write
        assert backend.get("objects/a.npz") == b"move me"

        kept = tmp_path / "scratch-b.bin"
        kept.write_bytes(b"copy me")
        backend.put_path("objects/b.npz", kept)
        assert kept.exists()  # import semantics: source survives
        assert backend.get("objects/b.npz") == b"copy me"


class TestObjectStoreBackends:
    def test_model_store_over_memory_bucket(self, fitted_forest,
                                            probe_batch):
        MemoryBucket.drop("roundtrip")
        store = ModelStore.from_url("memory://roundtrip")
        version = store.put(fitted_forest, tags=("production",))
        model, manifest = store.load("production")
        assert manifest["digest"] == version
        assert np.array_equal(
            model.predict_proba(probe_batch),
            fitted_forest.predict_proba(probe_batch),
        )
        assert len(store.list()) == 1
        assert store.gc() == []  # tagged version survives
        store.untag("production")
        assert store.gc() == [version]
        assert store.versions() == []

    def test_memory_buckets_shared_by_name(self, fitted_forest):
        MemoryBucket.drop("shared")
        writer = ModelStore.from_url("memory://shared")
        version = writer.put(fitted_forest, tags=("production",))
        reader = ModelStore.from_url("memory://shared")
        assert reader.resolve("production") == version
        assert reader.versions() == [version]

    def test_model_store_over_disk_bucket(self, tmp_path, fitted_forest,
                                          probe_batch):
        url = f"bucket://{tmp_path / 'shipped'}"
        store = ModelStore.from_url(url)
        version = store.put(fitted_forest, tags=("production",))
        # A second store over the same bucket path sees the objects —
        # the no-shared-mount serving-box scenario.
        other = ModelStore.from_url(url)
        model, __ = other.load("production")
        assert np.array_equal(
            model.predict_proba(probe_batch),
            fitted_forest.predict_proba(probe_batch),
        )
        assert other.versions() == [version]

    def test_spool_caches_fetches(self, fitted_forest):
        MemoryBucket.drop("spool")
        store = ModelStore.from_url("memory://spool")
        store.put(fitted_forest, tags=("latest",))
        first = store.path_of("latest")
        assert first.is_file()
        assert store.path_of("latest") == first  # cached, not re-fetched


class TestSharedBucketLocking:
    """The tag lock belongs to the storage, not the backend instance."""

    def test_memory_stores_share_one_tag_mutex(self):
        MemoryBucket.drop("locking")
        a = ModelStore.from_url("memory://locking")
        b = ModelStore.from_url("memory://locking")
        assert a.backend.bucket.tag_mutex is b.backend.bucket.tag_mutex

    def test_disk_buckets_share_mutex_per_path(self, tmp_path):
        first = DiskBucket(tmp_path / "bkt")
        second = DiskBucket(tmp_path / "bkt")
        other = DiskBucket(tmp_path / "other")
        assert first.tag_mutex is second.tag_mutex
        assert first.tag_mutex is not other.tag_mutex

    def test_disk_bucket_tag_lock_is_cross_process(self, tmp_path):
        # The critical section must hold an fcntl lock another process
        # would block on — not just an in-process mutex.
        import fcntl

        bucket = DiskBucket(tmp_path / "bkt")
        with bucket.tag_lock():
            with open(tmp_path / "bkt" / ".tags.lock", "a+") as probe:
                with pytest.raises(BlockingIOError):
                    fcntl.flock(probe, fcntl.LOCK_EX | fcntl.LOCK_NB)

    def test_concurrent_taggers_lose_no_updates(self, fitted_forest):
        import threading

        MemoryBucket.drop("tag-race")
        version = ModelStore.from_url("memory://tag-race").put(
            fitted_forest, tags=("seed",)
        )

        def tagger(prefix):
            store = ModelStore.from_url("memory://tag-race")
            for i in range(25):
                store.tag(f"{prefix}{i}", version)

        threads = [
            threading.Thread(target=tagger, args=(p,)) for p in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tags = ModelStore.from_url("memory://tag-race").tags()
        # Every read-modify-write survived: 25 + 25 + the seed tag.
        assert len(tags) == 51


class TestETagIntegrity:
    def test_disk_bucket_tamper_detected(self, tmp_path, fitted_forest):
        bucket_root = tmp_path / "bucket"
        store = ModelStore.from_url(f"bucket://{bucket_root}")
        version = store.put(fitted_forest, tags=("production",))
        blob = bucket_root / "objects" / f"{version}.npz"
        blob.write_bytes(blob.read_bytes() + b"tampered")
        with pytest.raises(IntegrityError):
            store.load("production")

    def test_missing_sidecar_is_an_integrity_failure(self, tmp_path):
        # Losing the recorded ETag must not downgrade to "trust the
        # blob" — that would make verify-on-get vacuous.
        bucket_root = tmp_path / "bucket"
        backend = ObjectStoreBackend(DiskBucket(bucket_root))
        backend.put("objects/x.npz", b"original")
        (bucket_root / "objects" / "x.npz").write_bytes(b"tampered")
        (bucket_root / "objects" / "x.npz.etag").unlink()
        with pytest.raises(IntegrityError):
            backend.get("objects/x.npz")
        with pytest.raises(IntegrityError):
            backend.etag("objects/x.npz")

    def test_memory_bucket_tamper_detected(self, fitted_forest):
        MemoryBucket.drop("tamper")
        bucket = MemoryBucket.named("tamper")
        store = ModelStore(backend=ObjectStoreBackend(bucket))
        version = store.put(fitted_forest, tags=("production",))
        key = f"objects/{version}.npz"
        data, etag = bucket._objects[key]
        bucket._objects[key] = (data + b"tampered", etag)
        with pytest.raises(IntegrityError):
            store.load("production")


class TestBackendFromUrl:
    def test_bare_path_and_file_scheme(self, tmp_path):
        bare = backend_from_url(tmp_path / "a")
        assert isinstance(bare, LocalFSBackend)
        explicit = backend_from_url(f"file://{tmp_path / 'a'}")
        assert isinstance(explicit, LocalFSBackend)
        assert explicit.root == bare.root

    def test_memory_and_bucket_schemes(self, tmp_path):
        mem = backend_from_url("memory://ci")
        assert isinstance(mem, ObjectStoreBackend)
        assert mem.url == "memory://ci"
        disk = backend_from_url(f"bucket://{tmp_path / 'b'}")
        assert isinstance(disk, ObjectStoreBackend)
        assert disk.scheme == "bucket"

    def test_invalid_urls_fail_loudly(self):
        with pytest.raises(ValueError):
            backend_from_url("memory://")
        with pytest.raises(ValueError):
            backend_from_url("bucket://")
        with pytest.raises(ValueError):
            backend_from_url("s3://real-bucket/prefix")

    def test_from_url_default_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PHOOK_MODEL_STORE", str(tmp_path / "env-store"))
        store = ModelStore.from_url(None)
        assert store.root == tmp_path / "env-store"


class TestTypedErrors:
    def test_unreadable_tag_table_raises_typed_error(self, tmp_path,
                                                     fitted_forest):
        from repro.artifacts import CorruptArtifactError

        store = ModelStore(tmp_path / "store")
        store.put(fitted_forest, tags=("production",))
        # Replace the tag table with something that raises OSError on
        # read (a directory); the store must surface its typed error,
        # not a raw OSError.
        tags_path = tmp_path / "store" / "tags.json"
        tags_path.unlink()
        tags_path.mkdir()
        with pytest.raises(CorruptArtifactError):
            store.tags()
