"""N processes cold-starting through one shared ``cache_dir`` at once.

Exactly the fleet-worker startup pattern: every worker spools the same
artifact version into the same digest-named cache file concurrently.
The spool path writes a private ``mkstemp`` file and atomically renames
it over the target, so no process can ever read a half-written
artifact and no temp litter survives.
"""

import os
import pathlib
import subprocess
import sys

from repro.artifacts import ModelStore

_SPOOLER = """
import sys
from repro.artifacts import ModelStore, load_artifact

store_url, cache_dir = sys.argv[1:3]
store = ModelStore.from_url(store_url, cache_dir=cache_dir)
path = store.path_of("production")
model, manifest = load_artifact(path)  # digest-verified read
print(manifest["digest"])
"""


def test_concurrent_cold_starts_share_one_spool(fitted_forest, tmp_path):
    bucket = tmp_path / "bucket"
    cache_dir = tmp_path / "cache"
    # bucket:// is the object-store backend: no local_path, so every
    # cold start must go through the spool.
    store = ModelStore.from_url(f"bucket://{bucket}")
    version = store.put(fitted_forest, model_name="Random Forest",
                        tags=("production",))

    src = pathlib.Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _SPOOLER, f"bucket://{bucket}",
             str(cache_dir)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env,
        )
        for _ in range(4)
    ]
    outcomes = [p.communicate(timeout=120) for p in procs]
    for process, (out, err) in zip(procs, outcomes):
        assert process.returncode == 0, err
        assert out.strip() == version

    # One immutable digest-named file plus the degraded-mode tag-table
    # write-through copy, zero mkstemp leftovers.
    spooled = sorted(p.name for p in cache_dir.iterdir())
    assert spooled == [f"{version}.npz", "tags.json"]
