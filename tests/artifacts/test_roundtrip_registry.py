"""Round-trip property over the full Table II registry.

For every ``MODEL_NAMES`` entry: ``save → load`` into a fresh object
yields ``get_params()``-identical hyperparameters and **bit-identical**
``predict_proba`` on a fixed batch — including the flat-compiled serving
path for the ensemble models. Deep models run at smoke scale via the
``PHOOK_*`` registry knobs.
"""

import numpy as np
import pytest

from repro.artifacts import load_artifact, save_artifact
from repro.core.registry import MODEL_NAMES, create_model

#: Registry scale knobs for the expensive rows (1 epoch, small inputs);
#: the round-trip property is scale-independent.
SMOKE_ENV = {
    "PHOOK_EPOCHS": "1",
    "PHOOK_IMAGE_SIZE": "8",
    "PHOOK_SEQ_LEN": "16",
}


@pytest.fixture(scope="module")
def split(artifact_dataset):
    train = artifact_dataset.subset(np.arange(24))
    batch = artifact_dataset.bytecodes[24:34]
    return train, batch


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_registry_round_trip(name, split, tmp_path, monkeypatch):
    for key, value in SMOKE_ENV.items():
        monkeypatch.setenv(key, value)
    train, batch = split
    model = create_model(name, seed=3)
    model.fit(train.bytecodes, train.labels)
    expected = model.predict_proba(batch)

    info = save_artifact(model, tmp_path / "model.npz", model_name=name)
    loaded, manifest = load_artifact(info.path)

    assert type(loaded) is type(model)
    assert loaded.get_params() == model.get_params()
    assert np.array_equal(loaded.predict_proba(batch), expected), (
        f"{name}: loaded predict_proba diverged from the fitted model"
    )
    # Saving the loaded model lands on the same content address.
    again = save_artifact(loaded, tmp_path / "again.npz", model_name=name)
    assert again.digest == info.digest


def test_ensemble_round_trip(split, tmp_path):
    """Composite detectors compose child states recursively."""
    from repro.models.ensemble import StackingDetector, VotingDetector
    from repro.models.hsc import HSCDetector

    train, batch = split

    def bases():
        forest = HSCDetector(variant="Random Forest", seed=0)
        forest.set_params(clf__n_estimators=8)
        return [forest, HSCDetector(variant="Logistic Regression", seed=0)]

    for ensemble in (
        VotingDetector(bases(), voting="soft", weights=[0.7, 0.3]),
        VotingDetector(bases(), voting="hard"),
        StackingDetector(bases(), n_folds=2, seed=1),
    ):
        ensemble.fit(train.bytecodes, train.labels)
        expected = ensemble.predict_proba(batch)
        info = save_artifact(ensemble, tmp_path / "ens.npz")
        loaded, __ = load_artifact(info.path)
        assert np.array_equal(loaded.predict_proba(batch), expected), (
            ensemble.name
        )
        # Children arrive fitted and preserve their tuned parameters.
        assert loaded.detectors[0].get_params() == \
            ensemble.detectors[0].get_params()
