"""Tests for the seven histogram similarity classifiers."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy_score
from repro.models.hsc import HSC_VARIANTS, HSCDetector


class TestConstruction:
    def test_all_seven_variants_exist(self):
        assert len(HSC_VARIANTS) == 7
        assert set(HSC_VARIANTS) == {
            "Random Forest", "k-NN", "SVM", "Logistic Regression",
            "XGBoost", "LightGBM", "CatBoost",
        }

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            HSCDetector(variant="AdaBoost")

    def test_name_and_category(self):
        detector = HSCDetector(variant="Random Forest")
        assert detector.name == "Random Forest"
        assert detector.category == "HSC"

    def test_params_roundtrip(self):
        detector = HSCDetector(variant="Random Forest", seed=5)
        params = detector.get_params()
        assert params["variant"] == "Random Forest"
        assert params["clf__n_estimators"] == 120
        detector.set_params(clf__n_estimators=10)
        assert detector.classifier_.n_estimators == 10

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError):
            HSCDetector().set_params(bogus=1)


@pytest.mark.parametrize("variant", sorted(HSC_VARIANTS))
class TestAllVariantsLearn:
    def test_beats_chance_on_synthetic_corpus(self, variant, tiny_split):
        train, test = tiny_split
        detector = HSCDetector(variant=variant, seed=0)
        if variant in ("XGBoost", "LightGBM", "CatBoost"):
            detector.set_params(clf__n_estimators=25)
        if variant == "Random Forest":
            detector.set_params(clf__n_estimators=40)
        detector.fit(train.bytecodes, train.labels)
        accuracy = accuracy_score(test.labels, detector.predict(test.bytecodes))
        assert accuracy > 0.62, f"{variant} accuracy {accuracy:.3f}"

    def test_probabilities_shape_and_range(self, variant, tiny_split):
        train, test = tiny_split
        detector = HSCDetector(variant=variant, seed=0)
        if variant in ("Random Forest", "XGBoost", "LightGBM", "CatBoost"):
            detector.set_params(clf__n_estimators=10)
        detector.fit(train.bytecodes, train.labels)
        proba = detector.predict_proba(test.bytecodes)
        assert proba.shape == (len(test.bytecodes), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestVocabularyIsolation:
    def test_vocabulary_learned_on_train_only(self, tiny_split):
        train, test = tiny_split
        detector = HSCDetector(variant="k-NN")
        detector.fit(train.bytecodes, train.labels)
        vocab_size = len(detector.extractor_.vocabulary_)
        detector.predict(test.bytecodes)
        assert len(detector.extractor_.vocabulary_) == vocab_size
