"""Shared fixture: a small labeled bytecode dataset."""

import pytest

from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset


@pytest.fixture(scope="session")
def tiny_split():
    """A fast 80/40 train/test bytecode split (40+40 unique contracts)."""
    corpus = build_corpus(
        CorpusConfig(n_phishing=100, n_benign=100, seed=99, clone_factor=4.0)
    )
    dataset = Dataset.from_corpus(corpus, seed=3)
    return dataset.train_test_split(0.3, seed=4)
