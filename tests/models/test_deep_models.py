"""Tests for the vision, language and vulnerability-detection models.

Deep models run with tiny budgets here: the goal is correctness of the
fit/predict plumbing and above-chance learning, not Table II accuracy
(see benchmarks/ for the calibrated runs).
"""

import numpy as np
import pytest

from repro.ml.metrics import accuracy_score
from repro.models import (
    ESCORTClassifier,
    EcaEfficientNetClassifier,
    GPT2Classifier,
    SCSGuardClassifier,
    T5Classifier,
    ViTClassifier,
)
from repro.models.escort import SIGNATURE_NAMES, vulnerability_signatures


def tiny_vit(**overrides):
    params = dict(image_size=16, dim=24, depth=1, epochs=10,
                  augment_replicas=2, seed=0)
    params.update(overrides)
    return ViTClassifier(**params)


class TestViT:
    def test_bad_encoding_rejected(self):
        with pytest.raises(ValueError):
            ViTClassifier(encoding="hsv")

    def test_r2d2_learns(self, tiny_split):
        train, test = tiny_split
        model = tiny_vit(encoding="r2d2", epochs=14)
        model.fit(train.bytecodes, train.labels)
        accuracy = accuracy_score(test.labels, model.predict(test.bytecodes))
        assert accuracy > 0.55

    def test_freq_encoder_fitted_on_train(self, tiny_split):
        train, test = tiny_split
        model = tiny_vit(encoding="freq", epochs=4)
        model.fit(train.bytecodes, train.labels)
        assert model._freq_encoder.is_fitted
        proba = model.predict_proba(test.bytecodes)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_names(self):
        assert tiny_vit(encoding="r2d2").name == "ViT+R2D2"
        assert ViTClassifier(encoding="freq").name == "ViT+Freq"

    def test_cls_pooling_mode_runs(self, tiny_split):
        train, test = tiny_split
        model = tiny_vit(pool="cls", epochs=2)
        model.fit(train.bytecodes, train.labels)
        assert model.predict(test.bytecodes).shape == (len(test.bytecodes),)


class TestEcaEfficientNet:
    def test_learns(self, tiny_split):
        train, test = tiny_split
        model = EcaEfficientNetClassifier(
            image_size=16, widths=(8, 16, 24), epochs=12, seed=0
        )
        model.fit(train.bytecodes, train.labels)
        accuracy = accuracy_score(test.labels, model.predict(test.bytecodes))
        assert accuracy > 0.6

    def test_batch_norm_mode_runs(self, tiny_split):
        train, test = tiny_split
        model = EcaEfficientNetClassifier(
            image_size=16, widths=(8, 16), norm="batch", epochs=2, seed=0
        )
        model.fit(train.bytecodes, train.labels)
        proba = model.predict_proba(test.bytecodes)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestSCSGuard:
    def test_learns(self, tiny_split):
        train, test = tiny_split
        model = SCSGuardClassifier(max_length=64, epochs=5, seed=0)
        model.fit(train.bytecodes, train.labels)
        accuracy = accuracy_score(test.labels, model.predict(test.bytecodes))
        assert accuracy > 0.65

    def test_category(self):
        assert SCSGuardClassifier().category == "LM"


@pytest.mark.parametrize("model_cls", [GPT2Classifier, T5Classifier],
                         ids=["gpt2", "t5"])
class TestLanguageModels:
    def test_alpha_learns(self, model_cls, tiny_split):
        train, test = tiny_split
        model = model_cls(variant="alpha", max_length=64, dim=24, epochs=7,
                          seed=0)
        model.fit(train.bytecodes, train.labels)
        accuracy = accuracy_score(test.labels, model.predict(test.bytecodes))
        assert accuracy > 0.58

    def test_beta_windows_aggregate(self, model_cls, tiny_split):
        train, test = tiny_split
        model = model_cls(variant="beta", max_length=48, dim=16, epochs=2,
                          max_windows_per_sample=2, seed=0)
        model.fit(train.bytecodes, train.labels)
        proba = model.predict_proba(test.bytecodes)
        assert proba.shape == (len(test.bytecodes), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_variant_names(self, model_cls):
        alpha = model_cls(variant="alpha")
        beta = model_cls(variant="beta")
        assert alpha.name.endswith("α")
        assert beta.name.endswith("β")
        assert alpha.name[:-1] == beta.name[:-1]

    def test_bad_variant_rejected(self, model_cls):
        with pytest.raises(ValueError):
            model_cls(variant="gamma")


class TestESCORT:
    def test_signature_vector_shape(self):
        vector = vulnerability_signatures(bytes.fromhex("6080604052"))
        assert vector.shape == (len(SIGNATURE_NAMES),)
        assert np.all(vector >= 0) and np.all(vector <= 1)

    def test_signatures_detect_patterns(self):
        from repro.evm.assembler import assemble

        selfdestruct_code = assemble([("PUSH1", 0), "SELFDESTRUCT"])
        vector = vulnerability_signatures(selfdestruct_code)
        index = SIGNATURE_NAMES.index("selfdestruct_present")
        assert vector[index] == 1.0

    def test_transfer_pipeline_runs(self, tiny_split):
        train, test = tiny_split
        model = ESCORTClassifier(pretrain_epochs=3, transfer_epochs=4, seed=0)
        model.fit(train.bytecodes, train.labels)
        predictions = model.predict(test.bytecodes)
        assert predictions.shape == (len(test.bytecodes),)

    def test_trunk_frozen_during_transfer(self, tiny_split):
        train, __ = tiny_split
        model = ESCORTClassifier(pretrain_epochs=2, transfer_epochs=2, seed=0)
        model.fit(train.bytecodes, train.labels)
        trunk_parameters = model.trunk_.parameters()
        branch_parameters = model.branch_.parameters()
        assert not set(map(id, trunk_parameters)) & set(map(id, branch_parameters))

    def test_markedly_weaker_than_hsc(self, tiny_split):
        """The paper's core VDM finding: ESCORT ≈ weak on phishing."""
        from repro.models.hsc import HSCDetector

        train, test = tiny_split
        escort = ESCORTClassifier(seed=0)
        escort.fit(train.bytecodes, train.labels)
        escort_acc = accuracy_score(test.labels, escort.predict(test.bytecodes))

        forest = HSCDetector(variant="Random Forest", seed=0)
        forest.set_params(clf__n_estimators=40)
        forest.fit(train.bytecodes, train.labels)
        forest_acc = accuracy_score(test.labels, forest.predict(test.bytecodes))
        assert forest_acc - escort_acc > 0.1
