"""Tests for the voting and stacking ensemble detectors."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy_score
from repro.models.detector import PhishingDetector
from repro.models.ensemble import (
    StackingDetector,
    VotingDetector,
    _stratified_fold_indices,
)
from repro.models.hsc import HSCDetector


class ConstantDetector(PhishingDetector):
    """Always predicts a fixed phishing probability."""

    def __init__(self, probability: float):
        self.probability = probability
        self.name = f"const({probability})"
        self.fit_calls = 0

    def fit(self, bytecodes, labels):
        self.fit_calls += 1
        return self

    def predict_proba(self, bytecodes):
        column = np.full(len(bytecodes), self.probability)
        return np.column_stack([1.0 - column, column])


class OracleDetector(PhishingDetector):
    """Memorises fit labels; predicts them back for seen bytecodes."""

    def __init__(self, noise: float = 0.0, seed: int = 0):
        self.noise = noise
        self.rng = np.random.default_rng(seed)
        self.memory_ = {}
        self.name = "oracle"

    def fit(self, bytecodes, labels):
        self.memory_ = dict(zip(bytecodes, np.asarray(labels)))
        return self

    def predict_proba(self, bytecodes):
        probs = np.array(
            [
                0.5 if code not in self.memory_
                else abs(self.memory_[code] - self.rng.random() * self.noise)
                for code in bytecodes
            ]
        )
        return np.column_stack([1.0 - probs, probs])


def _fast_bases(seed=0):
    bases = [
        HSCDetector(variant="Random Forest", seed=seed),
        HSCDetector(variant="k-NN", seed=seed),
        HSCDetector(variant="Logistic Regression", seed=seed),
    ]
    bases[0].set_params(clf__n_estimators=20)
    return bases


class TestConstruction:
    def test_needs_two_detectors(self):
        with pytest.raises(ValueError):
            VotingDetector([ConstantDetector(0.5)])
        with pytest.raises(ValueError):
            StackingDetector([ConstantDetector(0.5)])

    def test_rejects_non_detectors(self):
        with pytest.raises(TypeError):
            VotingDetector([ConstantDetector(0.5), object()])

    def test_rejects_bad_voting_mode(self):
        with pytest.raises(ValueError):
            VotingDetector(
                [ConstantDetector(0.1), ConstantDetector(0.9)], voting="mean"
            )

    def test_rejects_weights_for_hard_voting(self):
        with pytest.raises(ValueError):
            VotingDetector(
                [ConstantDetector(0.1), ConstantDetector(0.9)],
                voting="hard",
                weights=[1.0, 2.0],
            )

    def test_rejects_wrong_weight_count_and_negative(self):
        bases = [ConstantDetector(0.1), ConstantDetector(0.9)]
        with pytest.raises(ValueError):
            VotingDetector(bases, weights=[1.0])
        with pytest.raises(ValueError):
            VotingDetector(bases, weights=[-1.0, 2.0])

    def test_stacking_needs_two_folds(self):
        with pytest.raises(ValueError):
            StackingDetector(
                [ConstantDetector(0.1), ConstantDetector(0.9)], n_folds=1
            )


class TestSoftVoting:
    def test_unweighted_average(self):
        ensemble = VotingDetector(
            [ConstantDetector(0.2), ConstantDetector(0.8)]
        ).fit([b"\x00"], [1])
        proba = ensemble.predict_proba([b"\x00", b"\x01"])
        assert proba.shape == (2, 2)
        assert np.allclose(proba[:, 1], 0.5)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_weighted_average(self):
        ensemble = VotingDetector(
            [ConstantDetector(0.0), ConstantDetector(1.0)],
            weights=[3.0, 1.0],
        ).fit([b"\x00"], [1])
        proba = ensemble.predict_proba([b"\x00"])
        assert proba[0, 1] == pytest.approx(0.25)

    def test_fits_every_base(self):
        bases = [ConstantDetector(0.3), ConstantDetector(0.7)]
        VotingDetector(bases).fit([b"\x00", b"\x01"], [0, 1])
        assert all(base.fit_calls == 1 for base in bases)


class TestHardVoting:
    def test_majority(self):
        ensemble = VotingDetector(
            [ConstantDetector(0.9), ConstantDetector(0.8), ConstantDetector(0.1)],
            voting="hard",
        ).fit([b"\x00"], [1])
        proba = ensemble.predict_proba([b"\x00"])
        assert proba[0, 1] == pytest.approx(2 / 3)
        assert ensemble.predict([b"\x00"])[0] == 1

    def test_unanimous_benign(self):
        ensemble = VotingDetector(
            [ConstantDetector(0.2), ConstantDetector(0.3)], voting="hard"
        ).fit([b"\x00"], [0])
        assert ensemble.predict([b"\x00"])[0] == 0


class TestFoldIndices:
    def test_partition_and_stratification(self):
        labels = np.array([0] * 30 + [1] * 30)
        folds = _stratified_fold_indices(labels, 3, seed=0)
        combined = np.sort(np.concatenate(folds))
        assert np.array_equal(combined, np.arange(60))
        for fold in folds:
            assert labels[fold].sum() == 10  # balanced positives per fold

    def test_deterministic_per_seed(self):
        labels = np.array([0, 1] * 20)
        first = _stratified_fold_indices(labels, 4, seed=7)
        second = _stratified_fold_indices(labels, 4, seed=7)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)


class TestStacking:
    def test_out_of_fold_prevents_leak(self):
        # An oracle that memorises its training data returns 0.5 for
        # unseen codes, so its out-of-fold meta-feature column is constant
        # and carries no signal. A leaky construction (meta-features from
        # in-fold predictions) would instead let the oracle look perfect.
        bytecodes = [bytes([i, 255 - i]) for i in range(40)]
        labels = np.array([0, 1] * 20)
        stack = StackingDetector(
            [OracleDetector(), ConstantDetector(0.5)], n_folds=4, seed=0
        )
        stack.fit(bytecodes, labels)
        # Both meta-features were constant 0.5 out-of-fold, so the learned
        # meta weights stay near zero and predictions hover at the prior.
        proba = stack.predict_proba(bytecodes)
        assert np.all(np.abs(proba[:, 1] - 0.5) < 0.2)

    def test_label_length_mismatch(self):
        stack = StackingDetector(
            [ConstantDetector(0.1), ConstantDetector(0.9)]
        )
        with pytest.raises(ValueError):
            stack.fit([b"\x00"], [0, 1])


class TestOnSyntheticCorpus:
    def test_soft_voting_beats_chance(self, tiny_split):
        train, test = tiny_split
        ensemble = VotingDetector(_fast_bases())
        ensemble.fit(train.bytecodes, train.labels)
        accuracy = accuracy_score(test.labels, ensemble.predict(test.bytecodes))
        assert accuracy > 0.62, f"voting accuracy {accuracy:.3f}"

    def test_stacking_beats_chance(self, tiny_split):
        train, test = tiny_split
        ensemble = StackingDetector(_fast_bases(), n_folds=3, seed=0)
        ensemble.fit(train.bytecodes, train.labels)
        accuracy = accuracy_score(test.labels, ensemble.predict(test.bytecodes))
        assert accuracy > 0.62, f"stacking accuracy {accuracy:.3f}"

    def test_probability_rows_sum_to_one(self, tiny_split):
        train, test = tiny_split
        ensemble = VotingDetector(_fast_bases(), voting="hard")
        ensemble.fit(train.bytecodes, train.labels)
        proba = ensemble.predict_proba(test.bytecodes)
        assert np.allclose(proba.sum(axis=1), 1.0)
