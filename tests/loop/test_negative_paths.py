"""Negative paths: the loop must fail closed, never corrupt production.

Three failure families:
  * a stationary stream must never trigger the loop (no false retrains);
  * a retrain that raises must leave the serving model and the
    production tag exactly as they were, with a durable ``abort`` entry;
  * a hard kill (SIGKILL) mid-shadow must leave the store's tag table
    parseable and both tags loadable — the JSONL history and the atomic
    tag writes are the crash-safety story.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

from repro.artifacts import ModelStore
from repro.loop import read_history
from repro.stream import TimelineReplayer


class TestStationaryStream:
    def test_no_trigger_over_many_windows(self, loop_harness, base_corpus,
                                          stationary_corpus):
        """Two stationary campaigns back to back: scores keep the same
        distribution, so N = ~13 drift checks all stay quiet."""
        harness = loop_harness()
        replayer = TimelineReplayer(harness.scanner, rate=None)
        try:
            replayer.replay_records(
                [r for r in base_corpus.records if r.bytecode]
            )
            replayer.replay_records(
                [r for r in stationary_corpus.records if r.bytecode]
            )
            harness.scanner.flush()
        finally:
            harness.loop.detach()
            harness.scanner.close()

        status = harness.loop.status()
        assert status["drifts"] == 0
        assert status["promotions"] == 0
        assert status["aborts"] == 0
        assert status["state"] == "watching"
        # Checks actually ran — quiet because stationary, not because idle.
        assert status["last_check"]["checked"] is True
        assert read_history(harness.store) == []
        # Production never moved.
        assert harness.service.artifact_digest == \
            harness.store.resolve("production")


class TestRetrainFailure:
    def test_failed_retrain_leaves_production_untouched(
            self, loop_harness, base_corpus, drift_corpus):
        """Force the retrain to raise (an all-phishing label oracle makes
        the window single-class) while the *scores* still drift: the loop
        must log an abort, keep serving the old model, and re-arm."""
        harness = loop_harness(label_of=lambda address: 1)
        production_before = harness.store.resolve("production")
        replayer = TimelineReplayer(harness.scanner, rate=None)
        try:
            replayer.replay_records(
                [r for r in base_corpus.records if r.bytecode]
            )
            replayer.replay_records(
                [r for r in drift_corpus.records if r.bytecode]
            )
            harness.scanner.flush()
        finally:
            harness.loop.detach()
            harness.scanner.close()

        status = harness.loop.status()
        assert status["drifts"] >= 1
        assert status["aborts"] == status["drifts"]
        assert status["promotions"] == 0
        assert status["state"] == "watching"
        assert "single-class" in status["last_error"]

        history = read_history(harness.store)
        events = [entry["event"] for entry in history]
        assert events[:2] == ["drift", "abort"]
        abort = history[1]
        assert abort["stage"] == "retrain"
        assert "single-class" in abort["error"]
        assert abort["production"] == production_before

        # The failure changed nothing the fleet can observe.
        assert harness.store.resolve("production") == production_before
        assert "candidate" not in harness.store.tags()
        assert harness.service.artifact_digest == production_before


KILL_CHILD = textwrap.dedent("""\
    import sys

    from repro.datagen.corpus import CorpusConfig, build_corpus
    from repro.rollout import ManualHoldPolicy
    from repro.stream import TimelineReplayer

    sys.path.insert(0, {test_root!r})
    from tests.loop.conftest import fit_production  # noqa: E402

    from repro.artifacts import ModelStore  # noqa: E402
    from repro.loop import DriftMonitor, LoopOrchestrator  # noqa: E402
    from repro.serve.cache import FeatureCache  # noqa: E402
    from repro.serve.service import ScanService  # noqa: E402
    from repro.stream import StreamScanner  # noqa: E402

    base = build_corpus(CorpusConfig(
        n_phishing=120, n_benign=120, seed=7, phishing_profile="uniform",
    ))
    drift = build_corpus(CorpusConfig(
        n_phishing=300, n_benign=60, seed=8, phishing_profile="uniform",
    ))
    labels = {{r.address: r.label for c in (base, drift)
              for r in c.records if r.bytecode}}

    store = ModelStore({store_root!r})
    store.put(fit_production(base), model_name="Random Forest",
              tags=("production",))
    service = ScanService.from_artifact(
        "production", store=store, cache=FeatureCache(max_entries=8192),
        threshold=0.5,
    )
    scanner = StreamScanner(service, shards=2, max_batch=16,
                            max_queue=256, policy="block", auto_flush=True)
    loop = LoopOrchestrator(
        scanner, store,
        label_of=labels.get,
        monitor=DriftMonitor(window=160, blocks=8, alpha=0.05,
                             min_effect=0.2, confirm_checks=2),
        check_every=32, grow=20, holdout=0.25, seed=3,
        policy=ManualHoldPolicy(),   # never reaches a verdict
        retrain_mode="subprocess", store_url={store_root!r},
        wait_for_retrain=True,
    )
    replayer = TimelineReplayer(scanner, rate=None)
    replayer.replay_records([r for r in base.records if r.bytecode])
    replayer.replay_records([r for r in drift.records if r.bytecode])
    scanner.flush()
    assert loop.status()["state"] == "shadowing", loop.status()["state"]
    print("SHADOWING", flush=True)
    import time
    time.sleep(120)
""")


class TestHardKillMidShadow:
    def test_sigkill_mid_shadow_leaves_store_consistent(self, tmp_path):
        """kill -9 a process that is mid-shadow (candidate tagged, no
        verdict yet): a fresh process must find a parseable tag table,
        loadable artifacts for both tags, and a history that stops after
        ``retrain`` — no torn line, no phantom promotion."""
        store_root = tmp_path / "store"
        test_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        ))
        child = subprocess.Popen(
            [sys.executable, "-c", KILL_CHILD.format(
                store_root=str(store_root), test_root=test_root,
            )],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(
                     [os.path.join(test_root, "src"),
                      os.environ.get("PYTHONPATH", "")]
                 )},
        )
        try:
            line = child.stdout.readline().strip()
            assert line == "SHADOWING", (
                f"child never reached shadow: {line!r}\n"
                f"{child.stderr.read() if child.poll() is not None else ''}"
            )
            child.kill()  # SIGKILL — no atexit, no finally blocks
            child.wait(timeout=30)
            assert child.returncode == -signal.SIGKILL
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)

        # Survivor's view: the store must be fully consistent.
        store = ModelStore(store_root)
        tags = store.tags()             # parses — table is not torn
        assert "production" in tags and "candidate" in tags
        assert tags["production"] != tags["candidate"]
        for tag in ("production", "candidate"):
            model, manifest = store.load(tag)   # digests verify
            assert manifest["digest"] == tags[tag]
        history = read_history(store)
        assert [entry["event"] for entry in history] == [
            "drift", "retrain",
        ]
        assert history[1]["candidate"] == tags["candidate"]
