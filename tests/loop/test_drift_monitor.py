"""DriftMonitor: two-window blockwise detection, armed vs confirmed."""

import numpy as np
import pytest

from repro.loop import DriftMonitor


def _fill_reference(monitor, value=0.5):
    monitor.observe([value] * monitor.window)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"blocks": 1},
        {"window": 10, "blocks": 8},          # window < 2 * blocks
        {"window": 100, "blocks": 8},         # not divisible
        {"alpha": 0.0},
        {"alpha": 1.0},
        {"min_effect": 1.5},
        {"min_effect": -0.1},
        {"confirm_checks": 0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DriftMonitor(**kwargs)


class TestReadiness:
    def test_underfilled_check_never_raises(self):
        monitor = DriftMonitor(window=32, blocks=8)
        report = monitor.check()
        assert not report.checked and not report.confirmed
        assert report.p_value == 1.0

    def test_first_window_freezes_reference(self):
        monitor = DriftMonitor(window=32, blocks=8)
        monitor.observe([0.2] * 32)      # reference
        assert not monitor.ready         # live still empty
        monitor.observe([0.9] * 32)      # live
        assert monitor.ready
        report = monitor.check()
        assert report.checked
        assert report.reference_size == 32 and report.live_size == 32

    def test_live_window_slides(self):
        monitor = DriftMonitor(window=32, blocks=8, min_effect=0.2)
        monitor.observe([0.2] * 32)
        monitor.observe([0.9] * 32)
        # Refill live with reference-like scores: the shifted batch
        # slides out entirely, so the check sees no difference.
        monitor.observe([0.2] * 32)
        report = monitor.check()
        assert not report.drifted


class TestStationarity:
    def test_constant_stream_never_confirms(self):
        """Zero Wilcoxon differences are discarded → p = 1.0 forever."""
        monitor = DriftMonitor(window=32, blocks=8, confirm_checks=1)
        monitor.observe([0.5] * 64)
        for _ in range(50):
            monitor.observe([0.5] * 8)
            report = monitor.check()
            assert not report.drifted and not report.confirmed
            assert report.p_value == 1.0

    def test_stationary_noise_never_confirms(self):
        rng = np.random.default_rng(0)
        monitor = DriftMonitor(window=64, blocks=8, min_effect=0.2)
        monitor.observe(rng.uniform(0.3, 0.7, size=128))
        for _ in range(50):
            monitor.observe(rng.uniform(0.3, 0.7, size=16))
            assert not monitor.check().confirmed


class TestDetection:
    def test_shift_confirms_after_consecutive_checks(self):
        monitor = DriftMonitor(window=32, blocks=8, min_effect=0.2,
                               confirm_checks=2)
        rng = np.random.default_rng(1)
        monitor.observe(rng.uniform(0.1, 0.3, size=32))   # reference
        monitor.observe(rng.uniform(0.7, 0.9, size=32))   # shifted live
        first = monitor.check()
        assert first.drifted and not first.confirmed      # armed
        assert first.consecutive == 1
        monitor.observe(rng.uniform(0.7, 0.9, size=8))
        second = monitor.check()
        assert second.drifted and second.confirmed
        assert second.consecutive == 2
        assert second.p_value <= 0.05
        assert abs(second.effect) >= 0.2

    def test_one_weird_window_does_not_confirm(self):
        """A single positive check arms; recovery disarms."""
        monitor = DriftMonitor(window=32, blocks=8, min_effect=0.2,
                               confirm_checks=2)
        monitor.observe([0.2] * 32)
        monitor.observe([0.9] * 32)                       # weird batch
        assert monitor.check().consecutive == 1
        monitor.observe([0.2] * 32)                       # back to normal
        report = monitor.check()
        assert not report.drifted and report.consecutive == 0

    def test_small_effect_is_noise_whatever_the_p(self):
        """A consistent but tiny shift stays under the effect floor."""
        monitor = DriftMonitor(window=32, blocks=8, min_effect=1.0)
        monitor.observe([0.2] * 32)
        monitor.observe([0.9] * 32)
        report = monitor.check()
        # Cliff's delta of fully separated blocks is 1.0; the floor of
        # exactly 1.0 still passes — so tighten via alpha instead.
        assert abs(report.effect) == 1.0
        strict = DriftMonitor(window=32, blocks=8, alpha=0.001)
        strict.observe([0.2] * 32)
        strict.observe([0.9] * 32)
        assert not strict.check().drifted  # 8 blocks bottom out at ~0.008


class TestReset:
    def test_reset_rebaselines(self):
        monitor = DriftMonitor(window=32, blocks=8, min_effect=0.2,
                               confirm_checks=1)
        monitor.observe([0.2] * 32)
        monitor.observe([0.9] * 32)
        assert monitor.check().confirmed
        monitor.reset()
        assert not monitor.ready
        assert monitor.consecutive == 0 and monitor.checks == 0
        # The corrected distribution becomes the new reference: the
        # drift the loop just handled must not instantly re-fire.
        monitor.observe([0.9] * 64)
        report = monitor.check()
        assert report.checked and not report.drifted

    def test_status_is_json_ready(self):
        import json

        monitor = DriftMonitor(window=32, blocks=8)
        status = monitor.status()
        assert json.loads(json.dumps(status)) == status
        assert status["ready"] is False
