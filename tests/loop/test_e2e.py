"""The closed loop, end to end: detect → retrain → shadow → promote.

One deterministic recipe (see ``conftest.loop_harness``) replayed against
two fresh stores must produce byte-identical durable histories — the
whole loop, including the subprocess retrain, is a pure function of the
corpus and the seeds.
"""

import pytest

from repro.loop import HISTORY_KEY, read_history
from repro.stream import TimelineReplayer


def run_cycle(harness):
    """Replay baseline then drifted campaign through a loop harness."""
    replayer = TimelineReplayer(harness.scanner, rate=None)
    try:
        replayer.replay_records(harness.base_records)
        replayer.replay_records(harness.drift_records)
        harness.scanner.flush()
    finally:
        harness.loop.detach()
        harness.scanner.close()
    return harness.loop.status()


@pytest.fixture
def full_cycle(loop_harness, base_corpus, drift_corpus, tmp_path):
    def build(root):
        harness = loop_harness(store_path=root)
        harness.base_records = [
            r for r in base_corpus.records if r.bytecode
        ]
        harness.drift_records = [
            r for r in drift_corpus.records if r.bytecode
        ]
        return harness

    return build


class TestSingleCycle:
    def test_drift_fires_exactly_once_and_promotes(self, full_cycle,
                                                   tmp_path):
        harness = full_cycle(tmp_path / "run")
        store = harness.store
        production_before = store.resolve("production")
        status = run_cycle(harness)

        assert status["drifts"] == 1
        assert status["promotions"] == 1
        assert status["aborts"] == 0
        assert status["state"] == "watching"

        history = read_history(store)
        assert [entry["event"] for entry in history] == [
            "drift", "retrain", "promote",
        ]
        drift, retrain, promote = history

        # Drift evidence is durable and quantified.
        assert drift["p_value"] <= 0.05
        assert abs(drift["effect"]) >= 0.2
        assert drift["consecutive"] >= 2

        # The retrain entry carries full provenance.
        assert retrain["base"] == production_before
        assert retrain["mode"] == "subprocess"
        assert retrain["metrics"]["grown_trees"] == 20
        assert 0.0 <= retrain["metrics"]["holdout_accuracy"] <= 1.0

        # The promotion moved production to the candidate it shadowed.
        assert promote["stage"] == "shadow"
        assert promote["candidate"] == retrain["candidate"]
        assert promote["agreement_rate"] >= 0.90
        assert store.resolve("production") == retrain["candidate"]
        assert store.resolve("candidate") == retrain["candidate"]
        assert store.resolve("production") != production_before

        # The scanner now serves the promoted model.
        assert harness.service.artifact_digest == retrain["candidate"]

        # Timestamps are event-time and monotone.
        stamps = [entry["timestamp"] for entry in history]
        assert stamps == sorted(stamps)

    def test_two_runs_yield_bit_identical_histories(self, full_cycle,
                                                    tmp_path):
        """The acceptance bar: same seeds, fresh stores, identical logs
        down to the byte — including digests computed inside a forked
        retrain subprocess."""
        raws = []
        for name in ("first", "second"):
            harness = full_cycle(tmp_path / name)
            run_cycle(harness)
            raws.append(harness.store.backend.get(HISTORY_KEY))
        assert raws[0] == raws[1]
        assert raws[0].count(b"\n") == 3

    def test_status_snapshot_is_json_ready_and_complete(self, full_cycle,
                                                        tmp_path):
        import json

        harness = full_cycle(tmp_path / "run")
        status = run_cycle(harness)
        assert json.loads(json.dumps(status)) == status
        for key in ("state", "events_seen", "drifts", "promotions",
                    "aborts", "production", "candidate_tag", "monitor",
                    "retrain_mode"):
            assert key in status
        assert status["events_seen"] > 0
        assert status["retrain_pending"] is False
