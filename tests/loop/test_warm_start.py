"""Warm-start retrain: equivalence to cold refit + artifact fidelity."""

import numpy as np
import pytest

from repro.artifacts import ModelStore
from repro.loop import RetrainError, retrain_candidate
from repro.loop.retrain import _holdout_split
from repro.models.hsc import HSCDetector

from tests.loop.conftest import fit_production

GROW = 20
HOLDOUT = 0.25
SEED = 3


@pytest.fixture(scope="module")
def window(drift_corpus):
    """The sliding window a confirmed drift would hand to the retrain:
    the oldest 160 labeled events of the drifted campaign."""
    records = sorted(
        (r for r in drift_corpus.records if r.bytecode),
        key=lambda r: (r.timestamp, r.address),
    )[:160]
    return [r.bytecode for r in records], [r.label for r in records]


@pytest.fixture
def seeded_store(base_corpus, tmp_path):
    store = ModelStore(tmp_path / "store")
    store.put(fit_production(base_corpus), model_name="Random Forest",
              tags=("production",))
    return store


class TestEquivalence:
    def test_holdout_metrics_within_band_of_cold_refit(
            self, seeded_store, window):
        """The loop's economic bet, stated as a property: growing GROW
        trees on the window must land within 0.05 holdout accuracy of
        refitting an equal-sized forest from scratch on the same split.
        """
        codes, labels = window
        warm = retrain_candidate(
            store=seeded_store, bytecodes=codes, labels=labels,
            grow=GROW, holdout=HOLDOUT, seed=SEED,
        )
        warm_accuracy = warm["metrics"]["holdout_accuracy"]

        train_idx, hold_idx = _holdout_split(len(codes), HOLDOUT, SEED)
        cold = HSCDetector(variant="Random Forest", seed=1)
        cold.set_params(clf__n_estimators=40 + GROW)
        cold.fit([codes[i] for i in train_idx],
                 [labels[i] for i in train_idx])
        hold_codes = [codes[i] for i in hold_idx]
        hold_labels = np.asarray([labels[i] for i in hold_idx])
        cold_accuracy = float(
            ((cold.predict_proba(hold_codes)[:, 1] >= 0.5).astype(int)
             == hold_labels).mean()
        )
        assert abs(warm_accuracy - cold_accuracy) <= 0.05

    def test_retrain_registers_candidate_with_provenance(
            self, seeded_store, window):
        codes, labels = window
        production_digest = seeded_store.resolve("production")
        result = retrain_candidate(
            store=seeded_store, bytecodes=codes, labels=labels,
            grow=GROW, holdout=HOLDOUT, seed=SEED,
        )
        assert result["base"] == production_digest
        assert seeded_store.resolve("candidate") == result["candidate"]
        manifest = seeded_store.manifest("candidate")
        assert manifest["extra"]["warm_started_from"] == production_digest
        assert manifest["extra"]["grown_trees"] == GROW
        # Production is never touched by a retrain, only by a promotion.
        assert seeded_store.resolve("production") == production_digest


class TestDeterminism:
    def test_same_window_same_seed_same_candidate(self, base_corpus,
                                                  window, tmp_path):
        """fit_more growth is seeded per absolute tree index, so two
        identical retrains from the same artifact agree bit for bit."""
        codes, labels = window
        digests, scores = [], []
        for name in ("a", "b"):
            store = ModelStore(tmp_path / name)
            store.put(fit_production(base_corpus),
                      model_name="Random Forest", tags=("production",))
            result = retrain_candidate(
                store=store, bytecodes=codes, labels=labels,
                grow=GROW, holdout=HOLDOUT, seed=SEED,
            )
            model, __ = store.load("candidate")
            digests.append(result["candidate"])
            scores.append(model.predict_proba(codes)[:, 1])
        assert digests[0] == digests[1]
        assert np.array_equal(scores[0], scores[1])

    def test_warm_started_model_round_trips_bit_identically(
            self, seeded_store, window):
        """state_dict -> artifact -> load preserves a warm-started
        forest exactly: same state arrays, same scores."""
        codes, labels = window
        retrain_candidate(
            store=seeded_store, bytecodes=codes, labels=labels,
            grow=GROW, holdout=HOLDOUT, seed=SEED,
        )
        loaded, manifest = seeded_store.load("candidate")
        # Round-trip the loaded model once more through the store under
        # the same metadata: the content digest covers the manifest's
        # metrics/extra too, so equal digests prove the *state* bytes
        # (every tree array) survived load → save unchanged.
        digest = seeded_store.put(
            loaded, model_name=manifest["model_name"],
            metrics=manifest["metrics"], extra=manifest["extra"],
        )
        again, __ = seeded_store.load(digest)
        assert digest == manifest["digest"], (
            "re-serializing a loaded warm-started model changed its "
            "content digest"
        )
        assert np.array_equal(
            loaded.predict_proba(codes)[:, 1],
            again.predict_proba(codes)[:, 1],
        )

        def flatten(state, prefix=""):
            for key, value in sorted(state.items()):
                if isinstance(value, dict):
                    yield from flatten(value, f"{prefix}{key}.")
                else:
                    yield f"{prefix}{key}", value

        for (key_a, a), (key_b, b) in zip(
                flatten(loaded.state_dict()), flatten(again.state_dict())):
            assert key_a == key_b
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b), f"state {key_a} diverged"
            else:
                assert a == b, f"state {key_a} diverged"


class TestFailureContract:
    def test_single_class_window_refused(self, seeded_store, window):
        codes, __ = window
        with pytest.raises(RetrainError, match="single-class"):
            retrain_candidate(
                store=seeded_store, bytecodes=codes,
                labels=[1] * len(codes),
                grow=GROW, holdout=HOLDOUT, seed=SEED,
            )
        assert "candidate" not in seeded_store.tags()

    def test_tiny_window_refused(self, seeded_store):
        with pytest.raises(RetrainError, match="labeled events"):
            retrain_candidate(
                store=seeded_store, bytecodes=[b"\x60"], labels=[1],
                grow=GROW,
            )

    def test_unsupported_family_refused(self, base_corpus, window,
                                        tmp_path):
        codes, labels = window
        store = ModelStore(tmp_path / "knn")
        records = [r for r in base_corpus.records if r.bytecode][:80]
        knn = HSCDetector(variant="k-NN", seed=0)
        knn.fit([r.bytecode for r in records], [r.label for r in records])
        store.put(knn, model_name="k-NN", tags=("production",))
        with pytest.raises(RetrainError, match="fit_more"):
            retrain_candidate(
                store=store, bytecodes=codes, labels=labels, grow=GROW,
            )
        assert "candidate" not in store.tags()
