"""The durable loop-history log: canonical, self-numbering, durable."""

import json

import pytest

from repro.artifacts import ModelStore
from repro.loop import HISTORY_KEY, append_history, read_history


@pytest.fixture
def store(tmp_path):
    return ModelStore(tmp_path / "store")


class TestAppend:
    def test_seq_numbers_assigned_in_order(self, store):
        for index in range(5):
            record = append_history(store, {"event": "drift", "n": index})
            assert record["seq"] == index
        history = read_history(store)
        assert [entry["seq"] for entry in history] == list(range(5))
        assert [entry["n"] for entry in history] == list(range(5))

    def test_empty_store_reads_empty(self, store):
        assert read_history(store) == []

    def test_entry_is_not_mutated(self, store):
        entry = {"event": "drift"}
        record = append_history(store, entry)
        assert "seq" not in entry
        assert record["seq"] == 0

    def test_lines_are_canonical_json(self, store):
        append_history(store, {"zulu": 1, "alpha": 2, "event": "retrain"})
        raw = store.backend.get(HISTORY_KEY)
        assert raw == (
            b'{"alpha":2,"event":"retrain","seq":0,"zulu":1}\n'
        ), "history lines must be sorted-key, compact, newline-terminated"

    def test_nan_refused(self, store):
        with pytest.raises(ValueError):
            append_history(store, {"event": "drift", "p_value": float("nan")})
        assert read_history(store) == []

    def test_durable_across_reopen(self, store, tmp_path):
        append_history(store, {"event": "drift"})
        append_history(store, {"event": "promote"})
        reopened = ModelStore(tmp_path / "store")
        assert [e["event"] for e in read_history(reopened)] == [
            "drift", "promote",
        ]

    def test_appends_are_byte_deterministic(self, tmp_path):
        """Two stores receiving the same entries hold identical logs."""
        entries = [
            {"event": "drift", "p_value": 0.0234, "effect": -0.84,
             "timestamp": 1700000000},
            {"event": "retrain", "candidate": "abc123",
             "metrics": {"holdout_accuracy": 0.925}},
            {"event": "promote", "reason": "parity"},
        ]
        raws = []
        for name in ("a", "b"):
            store = ModelStore(tmp_path / name)
            for entry in entries:
                append_history(store, entry)
            raws.append(store.backend.get(HISTORY_KEY))
        assert raws[0] == raws[1]

    def test_concurrent_appenders_lose_nothing(self, store):
        """The lock serializes read-modify-write; seq has no gaps."""
        import threading

        def appender(tag):
            for _ in range(20):
                append_history(store, {"event": "drift", "by": tag})

        threads = [
            threading.Thread(target=appender, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        history = read_history(store)
        assert len(history) == 80
        assert [entry["seq"] for entry in history] == list(range(80))


class TestRead:
    def test_blank_lines_skipped(self, store):
        append_history(store, {"event": "drift"})
        raw = store.backend.get(HISTORY_KEY)
        store.backend.put(HISTORY_KEY, raw + b"\n\n")
        assert len(read_history(store)) == 1

    def test_round_trips_nested_payloads(self, store):
        entry = {
            "event": "retrain",
            "metrics": {"holdout_accuracy": 0.925, "grown_trees": 20},
            "mode": "subprocess",
        }
        append_history(store, entry)
        (read,) = read_history(store)
        assert read == {**entry, "seq": 0}
        assert json.dumps(read, sort_keys=True)  # JSON-clean
