"""Shared fixtures for the continuous-learning-loop tests.

The corpora encode the one non-obvious lesson of this subsystem: the
default Fig. 2 monthly deployment profile clumps phishing mid-timeline,
so a single corpus replayed in chain order *self-drifts*. Deterministic
loop tests therefore use the flat (``uniform``) profile for every
campaign and induce drift the way a real campaign would — by shifting
the scam-family mix (75 % phishing in the drifted continuation vs 50 %
in the baseline).

``loop_harness`` is a factory for the proven deterministic recipe: a
40-tree production forest, a 2-shard blocking scanner, a 160-score
drift monitor checked every 32 events, and a parity policy sized so the
64-event shadow window reaches a verdict. Exactly one
detect → retrain → shadow → promote cycle fires when the drifted
campaign replays after the stationary one.
"""

from types import SimpleNamespace

import pytest

from repro.artifacts import ModelStore
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.loop import DriftMonitor, LoopOrchestrator
from repro.models.hsc import HSCDetector
from repro.rollout import MetricParityPolicy
from repro.serve.cache import FeatureCache
from repro.serve.service import ScanService
from repro.stream import StreamScanner


@pytest.fixture(scope="session")
def base_corpus():
    """Stationary baseline campaign: balanced mix, flat deployments."""
    return build_corpus(CorpusConfig(
        n_phishing=120, n_benign=120, seed=7, phishing_profile="uniform",
    ))


@pytest.fixture(scope="session")
def drift_corpus():
    """Drifted continuation: the phishing share jumps to 75 %."""
    return build_corpus(CorpusConfig(
        n_phishing=300, n_benign=60, seed=8, phishing_profile="uniform",
    ))


@pytest.fixture(scope="session")
def stationary_corpus():
    """A second stationary campaign (fresh seed, same balanced mix)."""
    return build_corpus(CorpusConfig(
        n_phishing=120, n_benign=120, seed=9, phishing_profile="uniform",
    ))


@pytest.fixture(scope="session")
def label_oracle(base_corpus, drift_corpus, stationary_corpus):
    """Ground truth for every address any loop test can replay."""
    labels = {}
    for corpus in (base_corpus, drift_corpus, stationary_corpus):
        labels.update(
            {r.address: r.label for r in corpus.records if r.bytecode}
        )
    return labels


def fit_production(corpus, *, n_estimators=40, seed=1):
    records = [r for r in corpus.records if r.bytecode]
    model = HSCDetector(variant="Random Forest", seed=seed)
    model.set_params(clf__n_estimators=n_estimators)
    model.fit([r.bytecode for r in records], [r.label for r in records])
    return model


@pytest.fixture
def loop_harness(base_corpus, label_oracle, tmp_path):
    """Factory for the deterministic loop recipe; see module docstring."""

    def build(*, policy=None, label_of=None, retrain_mode="subprocess",
              monitor=None, grow=20, store_path=None, **loop_kwargs):
        root = store_path or (tmp_path / "store")
        store = ModelStore(root)
        if "production" not in store.tags():
            store.put(
                fit_production(base_corpus),
                model_name="Random Forest", tags=("production",),
            )
        cache = FeatureCache(max_entries=8192)
        service = ScanService.from_artifact(
            "production", store=store, cache=cache, threshold=0.5
        )
        scanner = StreamScanner(
            service, shards=2, max_batch=16, max_queue=256,
            policy="block", auto_flush=True,
        )
        loop = LoopOrchestrator(
            scanner, store,
            label_of=label_of or label_oracle.get,
            monitor=monitor or DriftMonitor(
                window=160, blocks=8, alpha=0.05,
                min_effect=0.2, confirm_checks=2,
            ),
            check_every=32,
            grow=grow,
            holdout=0.25,
            seed=3,
            policy=policy or MetricParityPolicy(
                min_events=60, promote_agreement=0.90,
                abort_agreement=0.40, max_mean_divergence=0.25,
            ),
            retrain_mode=retrain_mode,
            store_url=str(root) if retrain_mode == "subprocess" else None,
            wait_for_retrain=True,
            **loop_kwargs,
        )
        return SimpleNamespace(
            store=store, service=service, scanner=scanner, loop=loop,
            root=root,
        )

    return build
