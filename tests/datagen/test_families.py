"""Tests for family specs and the contract generator."""

import numpy as np
import pytest

from repro.datagen.families import FAMILIES, FamilySpec, generate_contract
from repro.datagen.benign import BENIGN_FAMILIES
from repro.datagen.phishing import PHISHING_FAMILIES
from repro.datagen.solidity_like import Environment
from repro.evm.disassembler import disassemble_mnemonics
from repro.evm.machine import EVM, ExecutionContext, Halt


def make_env(seed=0, timestamp=1_700_000_000):
    return Environment(
        rng=np.random.default_rng(seed),
        attacker=0xFEED << 96,
        tokens=(0xAAAA << 96,),
        deploy_timestamp=timestamp,
    )


class TestRegistry:
    def test_all_families_registered(self):
        assert len(FAMILIES) == len(BENIGN_FAMILIES) + len(PHISHING_FAMILIES)
        assert len(BENIGN_FAMILIES) == 8
        assert len(PHISHING_FAMILIES) == 6

    def test_labels(self):
        assert all(spec.label == 0 for spec in BENIGN_FAMILIES)
        assert all(spec.label == 1 for spec in PHISHING_FAMILIES)

    def test_unknown_statement_rejected(self):
        with pytest.raises(ValueError):
            FamilySpec(name="bad", label=0, weights={"not_a_statement": 1.0})

    def test_drift_must_reference_weighted_statement(self):
        with pytest.raises(ValueError):
            FamilySpec(
                name="bad2", label=0,
                weights={"store_const": 1.0},
                drift={"gas_guard": 1.1},
            )

    def test_phase_in(self):
        rug = FAMILIES["rug_pull_token"]
        assert not rug.active(0)
        assert rug.active(6)
        assert FAMILIES["erc20_token"].active(0)


class TestDrift:
    def test_weights_at_applies_drift(self):
        spec = FAMILIES["approval_drainer"]
        early = spec.weights_at(0)
        late = spec.weights_at(10)
        assert late["gas_guard"] > early["gas_guard"]
        assert early["transfer_from_call"] == late["transfer_from_call"]

    def test_no_drift_is_identity(self):
        spec = FAMILIES["erc20_token"]
        assert spec.weights_at(0) == spec.weights_at(12)


class TestGeneration:
    @pytest.mark.parametrize("spec", list(FAMILIES.values()), ids=lambda s: s.name)
    def test_every_family_generates_clean_bytecode(self, spec):
        env = make_env(seed=11)
        month = max(spec.phase_in_month, 0)
        bytecode, calldata = generate_contract(spec, env, month)
        assert len(bytecode) > 20
        context = ExecutionContext(calldata=calldata, timestamp=env.deploy_timestamp)
        result = EVM().execute(bytecode, context)
        assert result.halt in (Halt.STOP, Halt.RETURN), (spec.name, result.error)

    def test_generation_is_deterministic_per_seed(self):
        spec = FAMILIES["erc20_token"]
        a, __ = generate_contract(spec, make_env(seed=5), 0)
        b, __ = generate_contract(spec, make_env(seed=5), 0)
        c, __ = generate_contract(spec, make_env(seed=6), 0)
        assert a == b
        assert a != c

    def test_contracts_have_dispatcher_shape(self):
        spec = FAMILIES["erc20_token"]
        bytecode, __ = generate_contract(spec, make_env(seed=1), 0)
        mnemonics = disassemble_mnemonics(bytecode)
        # solc prologue + dispatcher artifacts
        assert mnemonics[:3] == ["PUSH1", "PUSH1", "MSTORE"]
        assert "CALLDATASIZE" in mnemonics
        assert "JUMPDEST" in mnemonics
        assert "REVERT" in mnemonics

    def test_phishing_families_call_heavier_benign_guard_heavier(self):
        """Aggregate opcode usage separates classes in distribution."""
        rng_seed = 0
        counts = {0: {"CALL": 0, "JUMPI": 0, "total": 0},
                  1: {"CALL": 0, "JUMPI": 0, "total": 0}}
        for spec in FAMILIES.values():
            for k in range(6):
                env = make_env(seed=rng_seed)
                rng_seed += 1
                bytecode, __ = generate_contract(spec, env, spec.phase_in_month)
                mnemonics = disassemble_mnemonics(bytecode)
                counts[spec.label]["CALL"] += mnemonics.count("CALL")
                counts[spec.label]["JUMPI"] += mnemonics.count("JUMPI")
                counts[spec.label]["total"] += len(mnemonics)
        phishing_call_rate = counts[1]["CALL"] / counts[1]["total"]
        benign_call_rate = counts[0]["CALL"] / counts[0]["total"]
        assert phishing_call_rate > benign_call_rate

    def test_weights_sum_zero_rejected(self):
        spec = FamilySpec(
            name="zero", label=0, selectors=("claim()",),
            weights={"store_const": 0.0},
        )
        with pytest.raises(ValueError):
            generate_contract(spec, make_env(), 0)
