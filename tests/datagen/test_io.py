"""Tests for dataset release serialization."""

import json

import numpy as np
import pytest

from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.datagen.io import export_corpus, load_dataset, save_dataset


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(
        CorpusConfig(n_phishing=15, n_benign=15, seed=33, clone_factor=2.0)
    )


@pytest.fixture(scope="module")
def dataset(corpus):
    return Dataset.from_corpus(corpus, seed=0)


class TestRoundTrip:
    def test_save_load_preserves_everything(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "release.jsonl")
        loaded = load_dataset(path)
        assert loaded.bytecodes == dataset.bytecodes
        assert np.array_equal(loaded.labels, dataset.labels)
        assert np.array_equal(loaded.months, dataset.months)
        assert loaded.families == dataset.families
        assert loaded.addresses == dataset.addresses

    def test_file_is_valid_jsonl(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "release.jsonl")
        lines = path.read_text().strip().split("\n")
        assert len(lines) == len(dataset)
        record = json.loads(lines[0])
        assert set(record) == {
            "address", "bytecode", "label", "month", "family"
        }
        assert record["bytecode"].startswith("0x")

    def test_nested_directory_created(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "deep" / "dir" / "d.jsonl")
        assert path.exists()


class TestValidation:
    def test_missing_key_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"address": "0xab", "bytecode": "0x00"}\n')
        with pytest.raises(ValueError, match="missing keys"):
            load_dataset(path)

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="bad JSON"):
            load_dataset(path)

    def test_bad_hex_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"address": "0xab", "bytecode": "0xzz", "label": 0, "month": 0}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="bad hex"):
            load_dataset(path)

    def test_bad_label_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"address": "0xab", "bytecode": "0x00", "label": 2, "month": 0}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="label"):
            load_dataset(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n\n")
        with pytest.raises(ValueError, match="empty"):
            load_dataset(path)

    def test_blank_lines_skipped(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "padded.jsonl")
        padded = tmp_path / "padded2.jsonl"
        padded.write_text("\n" + path.read_text() + "\n\n")
        assert len(load_dataset(padded)) == len(dataset)


class TestCorpusExport:
    def test_unique_export_matches_dedup(self, corpus, tmp_path):
        path = export_corpus(corpus, tmp_path / "corpus.jsonl")
        lines = path.read_text().strip().split("\n")
        assert len(lines) == len(corpus.unique_records())

    def test_full_export_includes_clones(self, corpus, tmp_path):
        path = export_corpus(
            corpus, tmp_path / "full.jsonl", unique_only=False
        )
        lines = path.read_text().strip().split("\n")
        assert len(lines) == len(corpus.records)
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "proxy" in kinds

    def test_export_loads_as_dataset(self, corpus, tmp_path):
        path = export_corpus(corpus, tmp_path / "corpus.jsonl")
        dataset = load_dataset(path)
        assert len(dataset) == len(corpus.unique_records())
