"""Tests for the statement library and contract scaffold."""

import numpy as np
import pytest

from repro.datagen.solidity_like import (
    STATEMENTS,
    ContractBuilder,
    Environment,
    FunctionSpec,
    metadata_trailer,
)
from repro.evm.assembler import Assembler
from repro.evm.machine import EVM, ExecutionContext, Halt


def make_env(seed=0):
    return Environment(
        rng=np.random.default_rng(seed),
        attacker=0xABCDEF << 96,
        tokens=(0x1111 << 96, 0x2222 << 96),
        deploy_timestamp=1_700_000_000,
    )


def execute_body(body, calldata=b"\x00" * 68, timestamp=1_700_000_000):
    """Run a single-function contract containing ``body``."""
    selector = 0x11223344
    builder = ContractBuilder(
        functions=[FunctionSpec(selector=selector, body=body)]
    )
    code = builder.assemble()
    context = ExecutionContext(
        calldata=selector.to_bytes(4, "big") + calldata[4:],
        timestamp=timestamp,
    )
    return EVM().execute(code, context)


class TestEveryStatement:
    @pytest.mark.parametrize("name", sorted(STATEMENTS))
    def test_statement_is_stack_neutral_and_executes(self, name):
        env = make_env()
        # Repeat the statement three times: any stack leak accumulates
        # and trips the final STOP/underflow check.
        body = []
        for __ in range(3):
            body.extend(STATEMENTS[name](env))
        result = execute_body(body)
        assert result.halt == Halt.STOP, (name, result.error)

    @pytest.mark.parametrize("name", sorted(STATEMENTS))
    def test_statement_randomization_varies_output(self, name):
        env_a = make_env(seed=1)
        env_b = make_env(seed=2)
        a = STATEMENTS[name](env_a)
        b = STATEMENTS[name](env_b)
        assert isinstance(a, list) and isinstance(b, list)
        # Same seed must reproduce exactly.
        assert STATEMENTS[name](make_env(seed=1)) == a


class TestContractBuilder:
    def test_requires_at_least_one_function(self):
        with pytest.raises(ValueError):
            ContractBuilder(functions=[])

    def test_dispatch_routes_by_selector(self):
        env = make_env()
        f1 = FunctionSpec(0xAAAAAAAA, STATEMENTS["store_const"](env))
        f2 = FunctionSpec(0xBBBBBBBB, STATEMENTS["counter_increment"](env),
                          returns_word=True)
        code = ContractBuilder(functions=[f1, f2]).assemble()

        result = EVM().execute(
            code, ExecutionContext(calldata=bytes.fromhex("aaaaaaaa") + b"\x00" * 64)
        )
        assert result.halt == Halt.STOP
        result = EVM().execute(
            code, ExecutionContext(calldata=bytes.fromhex("bbbbbbbb") + b"\x00" * 64)
        )
        assert result.halt == Halt.RETURN
        assert int.from_bytes(result.return_data, "big") == 1

    def test_unknown_selector_hits_fallback_revert(self):
        env = make_env()
        code = ContractBuilder(
            functions=[FunctionSpec(0xAAAAAAAA, STATEMENTS["store_const"](env))],
            fallback_reverts=True,
        ).assemble()
        result = EVM().execute(
            code, ExecutionContext(calldata=bytes.fromhex("cccccccc"))
        )
        assert result.halt == Halt.REVERT

    def test_stop_fallback(self):
        env = make_env()
        code = ContractBuilder(
            functions=[FunctionSpec(0xAAAAAAAA, STATEMENTS["store_const"](env))],
            fallback_reverts=False,
        ).assemble()
        result = EVM().execute(code, ExecutionContext(calldata=b""))
        assert result.halt == Halt.STOP

    def test_short_calldata_goes_to_fallback(self):
        env = make_env()
        code = ContractBuilder(
            functions=[FunctionSpec(0xAAAAAAAA, STATEMENTS["store_const"](env))],
            fallback_reverts=False,
        ).assemble()
        result = EVM().execute(code, ExecutionContext(calldata=b"\x01\x02"))
        assert result.halt == Halt.STOP

    def test_non_payable_rejects_value(self):
        env = make_env()
        code = ContractBuilder(
            functions=[FunctionSpec(0xAAAAAAAA, STATEMENTS["store_const"](env))],
            payable=False,
        ).assemble()
        calldata = bytes.fromhex("aaaaaaaa") + b"\x00" * 64
        ok = EVM().execute(code, ExecutionContext(calldata=calldata, callvalue=0))
        assert ok.halt == Halt.STOP
        rejected = EVM().execute(
            code, ExecutionContext(calldata=calldata, callvalue=10)
        )
        assert rejected.halt == Halt.REVERT

    def test_dead_code_and_metadata_are_appended(self):
        env = make_env()
        dead, meta = b"\xde\xad\xbe\xef", b"\xa2\x64\x69\x70"
        code = ContractBuilder(
            functions=[FunctionSpec(0xAAAAAAAA, STATEMENTS["store_const"](env))],
            dead_code=dead,
            metadata=meta,
        ).assemble()
        assert code.endswith(dead + meta)
        # Still executes despite the trailing garbage.
        result = EVM().execute(
            code, ExecutionContext(calldata=bytes.fromhex("aaaaaaaa") + b"\x00" * 64)
        )
        assert result.halt == Halt.STOP

    def test_example_calldata_hits_a_function(self):
        env = make_env()
        functions = [
            FunctionSpec(0xAAAAAAAA, STATEMENTS["store_const"](env)),
            FunctionSpec(0xBBBBBBBB, STATEMENTS["mapping_update"](env)),
        ]
        builder = ContractBuilder(functions=functions)
        code = builder.assemble()
        for __ in range(5):
            calldata = builder.example_calldata(env.rng)
            result = EVM().execute(code, ExecutionContext(calldata=calldata))
            assert result.halt == Halt.STOP


class TestMetadataTrailer:
    def test_has_cbor_prefix_and_length_suffix(self):
        trailer = metadata_trailer(np.random.default_rng(0))
        assert trailer.startswith(bytes.fromhex("a264697066735822"))
        body_len = int.from_bytes(trailer[-2:], "big")
        assert body_len == len(trailer) - 2

    def test_trailers_vary(self):
        rng = np.random.default_rng(0)
        assert metadata_trailer(rng) != metadata_trailer(rng)
