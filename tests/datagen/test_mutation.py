"""Tests for minimal proxies and data-section mutation."""

import numpy as np
import pytest

from repro.datagen.mutation import (
    is_minimal_proxy,
    minimal_proxy,
    proxy_implementation,
    random_data_section,
)
from repro.evm.disassembler import disassemble_mnemonics
from repro.evm.machine import EVM, ExecutionContext, Halt


class TestMinimalProxy:
    def test_canonical_length(self):
        assert len(minimal_proxy(0x1234)) == 45  # EIP-1167 runtime size

    def test_same_implementation_is_bit_identical(self):
        assert minimal_proxy(0xABC) == minimal_proxy(0xABC)

    def test_different_implementations_differ_in_bytes(self):
        assert minimal_proxy(0xABC) != minimal_proxy(0xDEF)

    def test_different_implementations_share_opcode_sequence(self):
        """The property that caps opcode-only classifiers (DESIGN.md S3)."""
        a = disassemble_mnemonics(minimal_proxy(0xAAA))
        b = disassemble_mnemonics(minimal_proxy(0xBBB))
        assert a == b

    def test_accepts_hex_string_address(self):
        address = "0x" + "ab" * 20
        code = minimal_proxy(address)
        assert proxy_implementation(code) == address

    def test_rejects_wrong_width_address(self):
        with pytest.raises(ValueError):
            minimal_proxy("0x" + "ab" * 19)

    def test_detection_and_extraction(self):
        code = minimal_proxy(0x1234)
        assert is_minimal_proxy(code)
        assert int(proxy_implementation(code), 16) == 0x1234
        assert not is_minimal_proxy(code + b"\x00")
        assert not is_minimal_proxy(b"\x60\x80")
        with pytest.raises(ValueError):
            proxy_implementation(b"\x00")

    def test_proxy_executes_cleanly(self):
        """Empty-calldata delegatecall path returns via the 0x2b JUMPDEST."""
        result = EVM().execute(minimal_proxy(0x1234), ExecutionContext())
        assert result.halt == Halt.RETURN

    def test_proxy_forwards_calldata(self):
        seen = []

        def host(mnemonic, args):
            seen.append((mnemonic, args))
            from repro.evm.machine import CallOutcome
            return CallOutcome(success=True, return_data=b"\x01")

        context = ExecutionContext(calldata=b"\x11" * 36)
        result = EVM(host=host).execute(minimal_proxy(0xABC), context)
        assert result.halt == Halt.RETURN
        assert seen and seen[0][0] == "DELEGATECALL"


class TestDataSection:
    def test_size_bounds(self):
        rng = np.random.default_rng(0)
        for __ in range(20):
            section = random_data_section(rng, max_size=32)
            assert 4 <= len(section) <= 32

    def test_deterministic_given_rng_state(self):
        assert random_data_section(np.random.default_rng(3)) == random_data_section(
            np.random.default_rng(3)
        )
