"""Tests for corpus construction and the Dataset container."""

import numpy as np
import pytest

from repro.chain.timeline import N_MONTHS
from repro.datagen.corpus import (
    PHISHING_MONTHLY_PROFILE,
    Corpus,
    CorpusConfig,
    build_corpus,
)
from repro.datagen.dataset import Dataset
from repro.datagen.mutation import is_minimal_proxy


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(
        CorpusConfig(n_phishing=40, n_benign=40, seed=123, clone_factor=6.0)
    )


class TestProfile:
    def test_matches_paper_totals(self):
        assert sum(PHISHING_MONTHLY_PROFILE) == 17_455
        assert len(PHISHING_MONTHLY_PROFILE) == N_MONTHS


class TestBuild:
    def test_unique_targets_hit(self, corpus):
        assert len(corpus.phishing_records(unique=True)) == 40
        assert len(corpus.benign_records(unique=True)) == 40

    def test_obtained_exceeds_unique_via_clones(self, corpus):
        obtained = len(corpus.phishing_records(unique=False))
        unique = len(corpus.phishing_records(unique=True))
        assert obtained > unique

    def test_clones_are_minimal_proxies_of_their_base(self, corpus):
        proxies = [r for r in corpus.records if r.kind == "proxy"]
        assert proxies, "expected some proxy clones"
        for proxy in proxies[:20]:
            assert is_minimal_proxy(proxy.bytecode)
            assert proxy.base_address is not None
            base = corpus.chain.get_code(proxy.base_address)
            assert len(base) > 45  # base is a real contract

    def test_explorer_flags_exactly_phishing(self, corpus):
        flagged = set(corpus.explorer.flagged_addresses())
        phishing = {r.address for r in corpus.records if r.label == 1}
        assert flagged == phishing

    def test_chain_holds_every_record(self, corpus):
        for record in corpus.records[:50]:
            assert corpus.chain.get_code(record.address) == record.bytecode

    def test_deterministic_given_seed(self):
        a = build_corpus(CorpusConfig(n_phishing=10, n_benign=10, seed=9))
        b = build_corpus(CorpusConfig(n_phishing=10, n_benign=10, seed=9))
        assert [r.bytecode for r in a.records] == [r.bytecode for r in b.records]

    def test_different_seed_differs(self):
        a = build_corpus(CorpusConfig(n_phishing=10, n_benign=10, seed=1))
        b = build_corpus(CorpusConfig(n_phishing=10, n_benign=10, seed=2))
        assert [r.bytecode for r in a.records] != [r.bytecode for r in b.records]

    def test_monthly_counts_shape(self, corpus):
        counts = corpus.monthly_counts(label=1)
        assert counts.shape == (N_MONTHS,)
        assert counts.sum() == len(corpus.phishing_records(unique=False))

    def test_benign_temporal_match(self):
        matched = build_corpus(
            CorpusConfig(
                n_phishing=30, n_benign=30, seed=5, benign_temporal_match=True
            )
        )
        benign = matched.monthly_counts(label=0, unique=True).astype(float)
        # The profile is heavily weighted to mid-study months; matched
        # benign samples should be too (early months nearly empty).
        assert benign[:2].sum() < benign[4:9].sum()

    def test_background_contracts_inflate_chain_only(self):
        with_background = build_corpus(
            CorpusConfig(
                n_phishing=10, n_benign=10, seed=5, background_contracts=15
            )
        )
        assert len(with_background.benign_records(unique=True)) >= 25


class TestDataset:
    def test_from_corpus_balances(self, corpus):
        dataset = Dataset.from_corpus(corpus, seed=1)
        benign, phishing = dataset.class_counts
        assert benign == phishing == 40

    def test_subset_preserves_alignment(self, corpus):
        dataset = Dataset.from_corpus(corpus, seed=1)
        sub = dataset.subset([0, 2, 4])
        assert len(sub) == 3
        assert sub.bytecodes[1] == dataset.bytecodes[2]
        assert sub.labels[1] == dataset.labels[2]
        assert sub.families[1] == dataset.families[2]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset(bytecodes=[b"\x00"], labels=np.array([0, 1]),
                    months=np.array([0]))

    def test_stratified_kfold_partitions(self, corpus):
        dataset = Dataset.from_corpus(corpus, seed=1)
        folds = dataset.stratified_kfold(4, seed=0)
        assert len(folds) == 4
        all_test = np.concatenate([test for __, test in folds])
        assert sorted(all_test.tolist()) == list(range(len(dataset)))
        for train, test in folds:
            assert len(np.intersect1d(train, test)) == 0
            test_labels = dataset.labels[test]
            assert abs(int((test_labels == 0).sum()) - int((test_labels == 1).sum())) <= 1

    def test_kfold_needs_enough_samples(self, corpus):
        dataset = Dataset.from_corpus(corpus, seed=1)
        with pytest.raises(ValueError):
            dataset.stratified_kfold(1)
        small = dataset.subset(range(3))
        with pytest.raises(ValueError):
            small.stratified_kfold(10)

    def test_train_test_split_stratified(self, corpus):
        dataset = Dataset.from_corpus(corpus, seed=1)
        train, test = dataset.train_test_split(0.25, seed=0)
        assert len(train) + len(test) == len(dataset)
        benign, phishing = test.class_counts
        assert benign == phishing == 10

    def test_split_fraction(self, corpus):
        dataset = Dataset.from_corpus(corpus, seed=1)
        third = dataset.split_fraction(1 / 3, seed=0)
        assert abs(len(third) - len(dataset) / 3) <= 2
        assert dataset.split_fraction(1.0) is dataset
        with pytest.raises(ValueError):
            dataset.split_fraction(0.0)

    def test_temporal_split(self):
        matched = build_corpus(
            CorpusConfig(
                n_phishing=60, n_benign=60, seed=11, benign_temporal_match=True
            )
        )
        dataset = Dataset.from_corpus(matched, seed=0)
        train, monthly = dataset.temporal_split(train_months=(0, 1, 2, 3))
        assert all(m >= 4 for m, __ in monthly)
        assert len(train) + sum(len(d) for __, d in monthly) == len(dataset)
        assert all(np.all(d.months == m) for m, d in monthly)
