"""[fleet] section parsing, sink delivery timeouts, launch refusal."""

import pytest

import repro.cli
from repro.deploy import ConfigError, parse_config
from tests.deploy.conftest import base_config


def problems_of(excinfo) -> list[str]:
    return [f"{p.path}: {p.message}" for p in excinfo.value.problems]


class TestFleetSection:
    def test_absent_section_parses_to_none(self):
        assert parse_config(base_config()).fleet is None

    def test_defaults(self):
        fleet = parse_config(base_config(fleet={})).fleet
        assert fleet.workers == 2
        assert fleet.queue_depth == 4
        assert fleet.overflow == "shed"
        assert fleet.ship_features is True
        assert fleet.slots == 0
        assert fleet.slot_bytes == 1 << 20
        assert fleet.host == "127.0.0.1"
        assert fleet.port == 0

    def test_full_section_roundtrips(self):
        config = parse_config(base_config(
            stream={"shards": 3},
            fleet={"workers": 4, "queue_depth": 8, "overflow": "block",
                   "ship_features": False, "slots": 64,
                   "slot_bytes": 65536, "host": "0.0.0.0", "port": 8900},
        ))
        assert config.fleet.workers == 4
        assert config.fleet.overflow == "block"
        again = parse_config(config.as_dict(), origin="<roundtrip>")
        assert again.as_dict() == config.as_dict()

    @pytest.mark.parametrize("overrides, needle", [
        ({"workers": 0}, "fleet.workers"),
        ({"queue_depth": 0}, "fleet.queue_depth"),
        ({"overflow": "explode"}, "fleet.overflow"),
        ({"slots": -1}, "fleet.slots"),
        ({"slot_bytes": 16}, "fleet.slot_bytes"),
        ({"host": ""}, "fleet.host"),
        ({"port": 70000}, "fleet.port"),
        ({"wrokers": 2}, "fleet.wrokers"),
    ])
    def test_domain_violations_rejected(self, overrides, needle):
        with pytest.raises(ConfigError) as excinfo:
            parse_config(base_config(fleet=overrides))
        assert any(needle in p for p in problems_of(excinfo))

    def test_non_table_section_rejected(self):
        with pytest.raises(ConfigError) as excinfo:
            parse_config(base_config(fleet="yes please"))
        assert any("fleet" in p for p in problems_of(excinfo))


class TestSinkTimeout:
    def test_webhook_timeout_accepted(self):
        config = parse_config(base_config(
            sinks=[{"kind": "webhook", "url": "https://example.com/h",
                    "timeout": 0.5}],
        ))
        assert config.sinks[0].timeout == 0.5

    def test_webhook_timeout_defaults(self):
        config = parse_config(base_config(
            sinks=[{"kind": "webhook", "url": "https://example.com/h"}],
        ))
        assert config.sinks[0].timeout == 2.0

    @pytest.mark.parametrize("kind, extra", [
        ("memory", {}),
        ("jsonl", {"path": "alerts.jsonl"}),
    ])
    def test_non_webhook_timeout_rejected(self, kind, extra):
        with pytest.raises(ConfigError) as excinfo:
            parse_config(base_config(
                sinks=[{"kind": kind, "timeout": 1.0, **extra}],
            ))
        assert any("delivery timeout" in p for p in problems_of(excinfo))

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigError) as excinfo:
            parse_config(base_config(
                sinks=[{"kind": "webhook", "url": "https://x.example/h",
                        "timeout": 0.0}],
            ))
        assert any("timeout" in p for p in problems_of(excinfo))


class TestLaunchRefusal:
    """Fleet ERROR rules must block launch with exit 2, before anything
    forks, binds, or loads a model."""

    @pytest.fixture
    def fleet_error_config(self, tmp_path):
        path = tmp_path / "bad-fleet.toml"
        path.write_text(
            '[store]\nurl = "memory://x"\n\n'
            '[model]\ntag = "production"\n\n'
            '[[sinks]]\nkind = "memory"\n\n'
            '[fleet]\nworkers = 3\n',
            encoding="utf-8",
        )
        return path

    def test_check_config_reports_the_error(self, fleet_error_config,
                                            capsys):
        exit_code = repro.cli.main(
            ["check-config", str(fleet_error_config)]
        )
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "D017" in out

    def test_fleet_serve_refuses_with_exit_2(self, fleet_error_config,
                                             capsys):
        exit_code = repro.cli.main(
            ["fleet", "serve", "--config", str(fleet_error_config)]
        )
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "D017" in err
        assert "refusing to launch" in err

    def test_fleet_serve_requires_a_fleet_section(self, tmp_path,
                                                  capsys):
        path = tmp_path / "no-fleet.toml"
        path.write_text(
            '[model]\ntag = "production"\n\n'
            '[[sinks]]\nkind = "memory"\n',
            encoding="utf-8",
        )
        exit_code = repro.cli.main(["fleet", "serve", "--config",
                                    str(path)])
        assert exit_code == 2
        assert "[fleet] section" in capsys.readouterr().err
