"""Property: ``check-config`` is pure — it reads its input file and
nothing else. No filesystem writes, no sockets, no store connections,
even when the config *names* stores, sinks and webhooks that would
touch all three at launch.
"""

import builtins
import json
import socket

import pytest

import repro.cli
from tests.deploy.conftest import base_config, clean_rollout


@pytest.fixture
def config_file(tmp_path):
    data = base_config(
        # Name every externally-visible resource a config can name:
        # a remote store, a durable file sink, a network webhook.
        store={"url": "bucket://phook-prod", "cache_dir": "./cache"},
        sinks=[
            {"kind": "jsonl", "path": "alerts.jsonl"},
            {"kind": "webhook", "url": "https://alerts.example.com/h"},
        ],
        stream={"shards": 4},
        rollout=clean_rollout(),
    )
    path = tmp_path / "deploy.json"
    path.write_text(json.dumps(data))
    return path


def snapshot(root):
    return {p: p.stat().st_size for p in root.rglob("*") if p.is_file()}


def test_check_config_has_no_side_effects(
    config_file, tmp_path, monkeypatch, capsys
):
    monkeypatch.chdir(tmp_path)

    # Any socket construction is a hard failure (webhook sinks, bucket
    # backends, anything network).
    def no_socket(*args, **kwargs):
        raise AssertionError("check-config opened a socket")

    monkeypatch.setattr(socket, "socket", no_socket)
    monkeypatch.setattr(socket, "create_connection", no_socket)

    # Any store construction is a hard failure: the analyser must judge
    # store.url textually, never connect to it.
    from repro.artifacts import store as store_module

    def no_store(*args, **kwargs):
        raise AssertionError("check-config constructed a ModelStore")

    monkeypatch.setattr(store_module.ModelStore, "__init__", no_store)
    monkeypatch.setattr(store_module.ModelStore, "from_url", no_store)

    # Any write/append/create open() is a hard failure.
    real_open = builtins.open
    writes = []

    def guarded_open(file, mode="r", *args, **kwargs):
        if any(flag in str(mode) for flag in ("w", "a", "x", "+")):
            writes.append((str(file), mode))
        return real_open(file, mode, *args, **kwargs)

    monkeypatch.setattr(builtins, "open", guarded_open)

    before = snapshot(tmp_path)
    exit_code = repro.cli.main(["check-config", str(config_file)])
    out = capsys.readouterr().out
    after = snapshot(tmp_path)

    assert exit_code == 0
    assert "topology is clean" in out
    assert writes == [], f"check-config opened files for writing: {writes}"
    assert after == before, "check-config changed the filesystem"


def test_check_config_on_violating_config_is_still_pure(
    tmp_path, monkeypatch, capsys
):
    data = base_config(
        store={"url": "bucket://phook-prod"},
        stream={"shards": 4, "policy": "drop_newest",
                "deadline_seconds": 0.0},
        sinks=[{"kind": "webhook", "url": "https://alerts.example.com/h"}],
        rollout=clean_rollout(candidate="production"),
    )
    path = tmp_path / "deploy.json"
    path.write_text(json.dumps(data))
    monkeypatch.chdir(tmp_path)

    def no_socket(*args, **kwargs):
        raise AssertionError("check-config opened a socket")

    monkeypatch.setattr(socket, "socket", no_socket)

    before = snapshot(tmp_path)
    exit_code = repro.cli.main(["check-config", "--json", str(path)])
    report = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert report["ok"] is False
    assert {"D001", "D005", "D010"} <= {
        v["rule_id"] for v in report["violations"]
    }
    assert snapshot(tmp_path) == before
