"""Config-driven launch: verified files start, ERROR files refuse.

End-to-end through ``repro.cli.main`` — the same entry points CI and
the runbook exercise — plus the argparse-level knob validation.
"""

import json

import pytest

import repro.cli
from repro.deploy import (
    DeploymentBlockedError,
    ensure_launchable,
    parse_config,
)
from tests.deploy.conftest import base_config, clean_rollout


@pytest.fixture(scope="module")
def trained_store(tmp_path_factory):
    """A file store with production + candidate tags, trained once."""
    store_dir = tmp_path_factory.mktemp("store")
    exit_code = repro.cli.main([
        "train", "--contracts", "80", "--store", str(store_dir),
        "--tag", "production", "--tag", "candidate",
    ])
    assert exit_code == 0
    return store_dir


def write_config(tmp_path, **overrides):
    path = tmp_path / "deploy.json"
    path.write_text(json.dumps(base_config(**overrides)))
    return path


class TestEnsureLaunchable:
    def test_clean_config_returns_report(self):
        config = parse_config(base_config(), origin="<test>")
        report = ensure_launchable(config)
        assert report.ok

    def test_error_config_raises_with_report(self):
        config = parse_config(
            base_config(stream={"policy": "drop_newest"},
                        sinks=[{"kind": "jsonl", "path": "a.jsonl"}]),
            origin="<test>",
        )
        with pytest.raises(DeploymentBlockedError) as excinfo:
            ensure_launchable(config)
        assert "D001" in str(excinfo.value)
        assert not excinfo.value.report.ok


class TestMonitorConfig:
    def test_monitor_launches_from_clean_config(
        self, tmp_path, trained_store, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        config = write_config(
            tmp_path,
            store={"url": str(trained_store)},
            source={"contracts": 80},
            sinks=[{"kind": "memory"},
                   {"kind": "jsonl", "path": "alerts.jsonl"}],
        )
        exit_code = repro.cli.main(["monitor", "--config", str(config)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "replayed" in out
        assert "sink jsonl" in out
        assert (tmp_path / "alerts.jsonl").exists()

    def test_monitor_refuses_error_config(
        self, tmp_path, trained_store, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        config = write_config(
            tmp_path,
            store={"url": str(trained_store)},
            serve={"cache_entries": 4},  # D003 vs 2x16 working set
            sinks=[{"kind": "jsonl", "path": "alerts.jsonl"}],
        )
        exit_code = repro.cli.main(["monitor", "--config", str(config)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "D003" in captured.err
        assert "refusing to launch" in captured.err
        assert not (tmp_path / "alerts.jsonl").exists(), (
            "refused launch must not touch sinks"
        )

    def test_monitor_reports_parse_failure(self, tmp_path, capsys):
        bad = tmp_path / "broken.toml"
        bad.write_text("[stream\nshards = ")
        exit_code = repro.cli.main(["monitor", "--config", str(bad)])
        assert exit_code == 2
        assert "broken.toml" in capsys.readouterr().err


class TestRolloutConfig:
    def test_rollout_start_from_config(
        self, tmp_path, trained_store, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        config = write_config(
            tmp_path,
            store={"url": str(trained_store)},
            source={"contracts": 80},
            rollout=clean_rollout(min_events=10, promote_agreement=0.9,
                                  abort_agreement=0.5,
                                  max_divergence=0.5),
        )
        exit_code = repro.cli.main(
            ["rollout", "start", "--config", str(config)]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "shadow-scored" in out
        assert "production" in out

    def test_rollout_start_requires_rollout_section(
        self, tmp_path, trained_store, capsys
    ):
        config = write_config(
            tmp_path, store={"url": str(trained_store)}
        )
        exit_code = repro.cli.main(
            ["rollout", "start", "--config", str(config)]
        )
        assert exit_code == 2
        assert "[rollout]" in capsys.readouterr().err

    def test_rollout_start_refuses_noop_rollout(self, tmp_path, capsys):
        config = write_config(
            tmp_path,
            rollout=clean_rollout(candidate="production"),
        )
        exit_code = repro.cli.main(
            ["rollout", "start", "--config", str(config)]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "D005" in captured.err


class TestKnobValidation:
    @pytest.mark.parametrize("argv", [
        ["monitor", "--shards", "0"],
        ["monitor", "--shards", "-2"],
        ["monitor", "--batch-size", "0"],
        ["monitor", "--queue", "-1"],
        ["monitor", "--contracts", "0"],
        ["monitor", "--deadline", "-0.5"],
        ["monitor", "--rate", "-1"],
        ["rollout", "start", "--shards", "0"],
        ["rollout", "start", "--batch-size", "-4"],
        ["rollout", "start", "--contracts", "0"],
        ["rollout", "start", "--min-events", "0"],
    ])
    def test_non_positive_knobs_rejected_at_parse_time(
        self, argv, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            repro.cli.build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "expected a" in err

    @pytest.mark.parametrize("argv", [
        ["monitor", "--shards", "3", "--batch-size", "8"],
        ["rollout", "start", "--shards", "1"],
    ])
    def test_positive_knobs_accepted(self, argv):
        args = repro.cli.build_parser().parse_args(argv)
        assert args.shards >= 1
