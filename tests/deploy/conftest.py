"""Shared fixtures for the deploy-layer tests.

``base_config()`` is the canonical *clean* topology: every rule in the
catalog passes on it, so per-rule fixtures can express themselves as
minimal overrides and the triggering knob combination stays legible in
the test.
"""

import copy

import pytest


def base_config(**overrides) -> dict:
    """A deployment dict with zero rule violations; override per test.

    Overrides use section names as keyword arguments and replace the
    whole section mapping entry-by-entry (``stream={"policy": "sample"}``
    keeps the other stream knobs).
    """
    config = {
        "store": {"url": "./phook-models"},
        "model": {"tag": "production"},
        "serve": {"threshold": 0.5, "cache_entries": 8192},
        "stream": {
            "shards": 2,
            "batch_size": 16,
            "queue": 256,
            "policy": "block",
            "deadline_seconds": 0.25,
        },
        "sinks": [{"kind": "memory"}],
        "source": {"mode": "replay", "contracts": 200, "seed": 0},
    }
    for section, value in overrides.items():
        if (
            section in config
            and isinstance(config[section], dict)
            and isinstance(value, dict)
        ):
            merged = copy.deepcopy(config[section])
            merged.update(value)
            config[section] = merged
        else:
            config[section] = copy.deepcopy(value)
    return config


def clean_rollout(**overrides) -> dict:
    """A ``[rollout]`` section that trips no rollout rule on its own."""
    section = {
        "candidate": "candidate",
        "production": "production",
        "policy": "parity",
        "min_events": 100,
        "promote_agreement": 0.98,
        "abort_agreement": 0.90,
        "max_divergence": 0.05,
    }
    section.update(overrides)
    return section


@pytest.fixture
def parsed():
    """Parse an override dict straight into a DeployConfig."""
    from repro.deploy import parse_config

    def build(**overrides):
        return parse_config(base_config(**overrides), origin="<test>")

    return build
