"""Parsing and per-knob domain validation of deployment files."""

import json
import textwrap

import pytest

from repro.deploy import ConfigError, load_config, parse_config
from tests.deploy.conftest import base_config, clean_rollout


def problems_of(excinfo) -> list[str]:
    return [f"{p.path}: {p.message}" for p in excinfo.value.problems]


class TestHappyPath:
    def test_defaults_fill_unset_sections(self, parsed):
        config = parsed()
        assert config.store.url == "./phook-models"
        assert config.store.scheme == "file"
        assert config.model.tag == "production"
        assert config.serve.cache_entries == 8192
        assert config.stream.policy == "block"
        assert config.stream.dedup_addresses is True
        assert config.source.mode == "replay"
        assert config.rollout is None

    def test_rollout_section_parsed_when_present(self, parsed):
        config = parsed(rollout=clean_rollout())
        assert config.rollout is not None
        assert config.rollout.candidate == "candidate"
        assert config.rollout.max_divergence == 0.05

    def test_as_dict_roundtrips_through_parse(self, parsed):
        config = parsed(rollout=clean_rollout())
        again = parse_config(config.as_dict(), origin="<roundtrip>")
        assert again.as_dict() == config.as_dict()

    def test_store_scheme_property(self, parsed):
        assert parsed(store={"url": "memory://x"}).store.scheme == "memory"
        assert parsed(store={"url": "bucket://b"}).store.scheme == "bucket"
        assert parsed(store={"url": "file:///tmp/s"}).store.scheme == "file"
        assert parsed(store={"url": "./plain/path"}).store.scheme == "file"


class TestRejections:
    def test_unknown_key_is_a_parse_error(self, parsed):
        with pytest.raises(ConfigError) as excinfo:
            parsed(serve={"cache_entires": 64})
        assert any("cache_entires" in p for p in problems_of(excinfo))

    def test_unknown_section_is_a_parse_error(self):
        data = base_config()
        data["srvee"] = {}
        with pytest.raises(ConfigError) as excinfo:
            parse_config(data, origin="<test>")
        assert any("srvee" in p for p in problems_of(excinfo))

    def test_model_requires_tag_xor_path(self, parsed):
        with pytest.raises(ConfigError):
            parsed(model={"tag": "production", "path": "model.npz"})
        with pytest.raises(ConfigError):
            parsed(model={"tag": ""})

    @pytest.mark.parametrize(
        "section, bad",
        [
            ("serve", {"threshold": 0.0}),
            ("serve", {"threshold": 1.0}),
            ("serve", {"cache_entries": 0}),
            ("stream", {"shards": 0}),
            ("stream", {"batch_size": -1}),
            ("stream", {"queue": 0}),
            ("stream", {"policy": "dropp_newest"}),
            ("stream", {"deadline_seconds": -0.5}),
            ("source", {"mode": "streaming"}),
            ("source", {"contracts": 1}),
            ("source", {"rate": -1.0}),
        ],
    )
    def test_domain_violations(self, parsed, section, bad):
        with pytest.raises(ConfigError):
            parsed(**{section: bad})

    @pytest.mark.parametrize(
        "bad",
        [
            {"min_events": 0},
            {"promote_agreement": 1.0},
            {"abort_agreement": 0.0},
            {"max_divergence": 1.5},
            {"policy": "auto"},
        ],
    )
    def test_rollout_domain_violations(self, parsed, bad):
        section = clean_rollout()
        section.update(bad)
        with pytest.raises(ConfigError):
            parsed(rollout=section)

    def test_sink_cross_field_misuse(self, parsed):
        with pytest.raises(ConfigError):
            parsed(sinks=[{"kind": "jsonl"}])  # path required
        with pytest.raises(ConfigError):
            parsed(sinks=[{"kind": "webhook"}])  # url required
        with pytest.raises(ConfigError):
            parsed(sinks=[{"kind": "memory", "path": "x.jsonl"}])
        with pytest.raises(ConfigError):
            parsed(sinks=[{"kind": "jsonl", "path": "x", "url": "http://x"}])
        with pytest.raises(ConfigError):
            parsed(sinks=[{"kind": "kafka"}])

    def test_unknown_store_scheme(self, parsed):
        with pytest.raises(ConfigError):
            parsed(store={"url": "s3://bucket"})

    def test_all_problems_reported_in_one_pass(self):
        data = base_config(
            serve={"threshold": 2.0},
            stream={"shards": 0, "policy": "bogus"},
        )
        with pytest.raises(ConfigError) as excinfo:
            parse_config(data, origin="<test>")
        paths = {p.path for p in excinfo.value.problems}
        assert {"serve.threshold", "stream.shards",
                "stream.policy"} <= paths
        as_dict = excinfo.value.as_dict()
        assert as_dict["ok"] is False
        assert len(as_dict["problems"]) >= 3


class TestLoopSection:
    def test_absent_section_means_no_loop(self, parsed):
        assert parsed().loop is None

    def test_defaults_fill_unset_keys(self, parsed):
        config = parsed(loop={})
        assert config.loop is not None
        assert config.loop.window == 256
        assert config.loop.blocks == 8
        assert config.loop.check_every == 64
        assert config.loop.alpha == 0.05
        assert config.loop.confirm_checks == 2
        assert config.loop.grow == 40
        assert config.loop.candidate == "candidate"
        assert config.loop.retrain == "subprocess"

    def test_as_dict_roundtrips_loop(self, parsed):
        config = parsed(loop={"window": 320, "blocks": 8, "grow": 25})
        again = parse_config(config.as_dict(), origin="<roundtrip>")
        assert again.loop == config.loop

    @pytest.mark.parametrize(
        "bad",
        [
            {"window": 2},                     # below the minimum
            {"window": 10, "blocks": 8},       # window < 2 x blocks
            {"window": 100, "blocks": 8},      # not divisible by blocks
            {"blocks": 1},
            {"check_every": 0},
            {"alpha": 0.0},                    # exclusive bounds
            {"alpha": 1.0},
            {"min_effect": 1.5},
            {"min_effect": -0.1},
            {"confirm_checks": 0},
            {"grow": 0},
            {"holdout": 0.0},
            {"holdout": 1.0},
            {"candidate": ""},
            {"retrain": "thread"},             # not a RETRAIN_MODE
            {"unknown_knob": 1},
        ],
    )
    def test_loop_domain_violations(self, parsed, bad):
        with pytest.raises(ConfigError):
            parsed(loop=bad)

    def test_window_blocks_violation_names_the_constraint(self, parsed):
        with pytest.raises(ConfigError) as excinfo:
            parsed(loop={"window": 10, "blocks": 8})
        assert any("2 x loop.blocks" in p for p in problems_of(excinfo))

    def test_non_table_section_rejected(self):
        data = base_config()
        data["loop"] = "yes please"
        with pytest.raises(ConfigError) as excinfo:
            parse_config(data, origin="<test>")
        assert any(p.startswith("loop:") for p in problems_of(excinfo))


class TestLoadConfig:
    def test_toml_and_json_parse_identically(self, tmp_path):
        toml_file = tmp_path / "deploy.toml"
        toml_file.write_text(textwrap.dedent("""\
            [store]
            url = "./phook-models"

            [model]
            tag = "production"

            [stream]
            shards = 3

            [[sinks]]
            kind = "jsonl"
            path = "alerts.jsonl"
        """))
        json_file = tmp_path / "deploy.json"
        json_file.write_text(json.dumps({
            "store": {"url": "./phook-models"},
            "model": {"tag": "production"},
            "stream": {"shards": 3},
            "sinks": [{"kind": "jsonl", "path": "alerts.jsonl"}],
        }))
        from_toml, from_json = load_config(toml_file), load_config(json_file)
        assert from_toml.stream.shards == from_json.stream.shards == 3
        assert from_toml.sinks[0].path == from_json.sinks[0].path
        assert from_toml.origin.endswith("deploy.toml")

    def test_toml_syntax_error_is_config_error(self, tmp_path):
        bad = tmp_path / "broken.toml"
        bad.write_text("[store\nurl = nope")
        with pytest.raises(ConfigError):
            load_config(bad)

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            load_config(tmp_path / "absent.toml")

    def test_unsupported_suffix_is_config_error(self, tmp_path):
        other = tmp_path / "deploy.yaml"
        other.write_text("store: {}")
        with pytest.raises(ConfigError):
            load_config(other)
