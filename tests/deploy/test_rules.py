"""Rule-engine coverage: every rule has a trigger and a pass fixture.

``FIXTURES`` maps each rule ID to a (triggering, passing) pair of
override dicts over the clean base config; a completeness test pins
the map to the catalog so adding a rule without fixtures fails here.
"""

import pathlib

import pytest

from repro.deploy import ERROR, RULES, WARN, check_config, parse_config
from tests.deploy.conftest import base_config, clean_rollout

REPO = pathlib.Path(__file__).resolve().parent.parent.parent


def rollout(**overrides) -> dict:
    section = clean_rollout()
    section.update(overrides)
    return section


#: rule_id -> (overrides that trigger it, overrides that do not).
FIXTURES = {
    # drop_newest sheds the freshest deployments in front of a durable sink
    "D001": (
        dict(stream={"policy": "drop_newest"},
             sinks=[{"kind": "webhook", "url": "https://example.com/h"}]),
        dict(stream={"policy": "block"},
             sinks=[{"kind": "webhook", "url": "https://example.com/h"}]),
    ),
    # drop_oldest sheds history out of an append-only audit trail
    "D002": (
        dict(stream={"policy": "drop_oldest"},
             sinks=[{"kind": "jsonl", "path": "alerts.jsonl"}]),
        dict(stream={"policy": "drop_oldest"},
             sinks=[{"kind": "memory"}]),
    ),
    # feature cache smaller than one flush cycle's working set
    "D003": (
        dict(serve={"cache_entries": 16},
             stream={"shards": 4, "batch_size": 16}),
        dict(serve={"cache_entries": 8192},
             stream={"shards": 4, "batch_size": 16}),
    ),
    # cache holds barely one flush cycle (>= working set, < 2x)
    "D004": (
        dict(serve={"cache_entries": 40},
             stream={"shards": 2, "batch_size": 16}),
        dict(serve={"cache_entries": 64},
             stream={"shards": 2, "batch_size": 16}),
    ),
    # candidate and production name the same ref: no-op rollout
    "D005": (
        dict(rollout=rollout(candidate="production")),
        dict(rollout=rollout()),
    ),
    # bucket:// store, multi-shard, no local artifact cache
    "D006": (
        dict(store={"url": "bucket://phook-prod"}, stream={"shards": 4}),
        dict(store={"url": "bucket://phook-prod",
                    "cache_dir": "./phook-cache"},
             stream={"shards": 4}),
    ),
    # sample backpressure on a replay timeline is nondeterministic
    "D007": (
        dict(stream={"policy": "sample"},
             source={"mode": "replay"}),
        dict(stream={"policy": "drop_oldest"},
             source={"mode": "replay"}),
    ),
    # block policy can never fill a batch bigger than the queue
    "D008": (
        dict(stream={"policy": "block", "queue": 8, "batch_size": 16}),
        dict(stream={"policy": "block", "queue": 16, "batch_size": 16}),
    ),
    # drop policy sheds before a batch can fill
    "D009": (
        dict(stream={"policy": "drop_oldest", "queue": 8,
                     "batch_size": 16}),
        dict(stream={"policy": "drop_oldest", "queue": 256,
                     "batch_size": 16}),
    ),
    # drop policy with deadline flushing disabled: unbounded latency
    "D010": (
        dict(stream={"policy": "drop_oldest", "deadline_seconds": 0.0}),
        dict(stream={"policy": "drop_oldest", "deadline_seconds": 0.25}),
    ),
    # deadline shorter than one inter-event gap at the replay rate
    "D011": (
        dict(stream={"deadline_seconds": 0.25}, source={"rate": 1.0}),
        dict(stream={"deadline_seconds": 0.25}, source={"rate": 100.0}),
    ),
    # abort floor at/above the promote bar: no decision band
    "D012": (
        dict(rollout=rollout(abort_agreement=0.99,
                             promote_agreement=0.98)),
        dict(rollout=rollout()),
    ),
    # evidence floor above the campaign size: rollout can never decide
    "D013": (
        dict(rollout=rollout(min_events=500),
             source={"contracts": 200}),
        dict(rollout=rollout(min_events=100),
             source={"contracts": 200}),
    ),
    # promotion through a memory:// store dies with the process
    "D014": (
        dict(store={"url": "memory://x"}, rollout=rollout()),
        dict(store={"url": "./phook-models"}, rollout=rollout()),
    ),
    # no sinks: alerts are computed and discarded
    "D015": (
        dict(sinks=[]),
        dict(sinks=[{"kind": "memory"}]),
    ),
    # batch_size=1 across shards: sharding overhead, no vectorization
    "D016": (
        dict(stream={"batch_size": 1, "shards": 2}),
        dict(stream={"batch_size": 16, "shards": 2}),
    ),
    # worker processes cannot reach an in-process memory:// store
    "D017": (
        dict(store={"url": "memory://x"}, fleet={"workers": 3}),
        dict(store={"url": "./phook-models"}, fleet={"workers": 3}),
    ),
    # workers and shards share a factor: crc32 residue classes alias
    "D018": (
        dict(fleet={"workers": 4}, stream={"shards": 2}),
        dict(fleet={"workers": 4}, stream={"shards": 3}),
    ),
    # shed overflow silently drops alerts from a lossless topology
    "D019": (
        dict(fleet={"workers": 3, "overflow": "shed"},
             sinks=[{"kind": "jsonl", "path": "alerts.jsonl"}]),
        dict(fleet={"workers": 3, "overflow": "block"},
             sinks=[{"kind": "jsonl", "path": "alerts.jsonl"}]),
    ),
    # explicit ring smaller than worst-case in-flight demand
    "D020": (
        dict(fleet={"workers": 3, "queue_depth": 4, "slots": 8}),
        dict(fleet={"workers": 3, "queue_depth": 4, "slots": 12}),
    ),
    # supervised respawn cold-pulls a remote store on every restart
    "D021": (
        dict(fleet={"workers": 3},
             store={"url": "bucket://phook-prod"},
             fault_tolerance={"respawn": True}),
        dict(fleet={"workers": 3},
             store={"url": "bucket://phook-prod",
                    "cache_dir": "./phook-cache"},
             fault_tolerance={"respawn": True}),
    ),
    # dead-letter spool inside the (often read-only) store root
    "D022": (
        dict(fault_tolerance={
            "dead_letter_path": "./phook-models/dead.jsonl"}),
        dict(fault_tolerance={
            "dead_letter_path": "./spool/dead.jsonl"}),
    ),
    # heartbeat slower than the request timeout detects nothing first
    "D023": (
        dict(fleet={"workers": 3, "request_timeout": 5.0},
             fault_tolerance={"heartbeat_seconds": 5.0}),
        dict(fleet={"workers": 3, "request_timeout": 5.0},
             fault_tolerance={"heartbeat_seconds": 0.5}),
    ),
    # shared cache over a ring slot below one cold (all-miss) batch
    "D025": (
        dict(fleet={"workers": 3, "shared_cache": True,
                    "slot_bytes": 65536},
             stream={"batch_size": 16}),
        dict(fleet={"workers": 3, "shared_cache": True},
             stream={"batch_size": 16}),
    ),
    # circuit-open webhook deliveries vanish without a dead-letter path
    "D024": (
        dict(sinks=[{"kind": "webhook", "url": "https://example.com/h"}],
             fault_tolerance={}),
        dict(sinks=[{"kind": "webhook", "url": "https://example.com/h"}],
             fault_tolerance={
                 "dead_letter_path": "./spool/dead.jsonl"}),
    ),
    # autonomous promotions with no durable channel telling anyone
    "D026": (
        dict(loop={}, sinks=[{"kind": "memory"}]),
        dict(loop={}, sinks=[{"kind": "jsonl", "path": "alerts.jsonl"}]),
    ),
    # drift window below the shadow's evidence floor: loop stalls
    "D027": (
        dict(loop={"window": 64, "blocks": 8},
             rollout=rollout(min_events=100),
             sinks=[{"kind": "jsonl", "path": "alerts.jsonl"}]),
        dict(loop={"window": 256, "blocks": 8},
             rollout=rollout(min_events=100),
             sinks=[{"kind": "jsonl", "path": "alerts.jsonl"}]),
    ),
    # declared model family has no fitted state to warm-start
    "D028": (
        dict(loop={"model_family": "k-NN"},
             sinks=[{"kind": "jsonl", "path": "alerts.jsonl"}]),
        dict(loop={"model_family": "Random Forest"},
             sinks=[{"kind": "jsonl", "path": "alerts.jsonl"}]),
    ),
    # forked retrain registers its candidate in a store that dies with it
    "D029": (
        dict(loop={"retrain": "subprocess"}, store={"url": "memory://x"},
             sinks=[{"kind": "jsonl", "path": "alerts.jsonl"}]),
        dict(loop={"retrain": "subprocess"},
             store={"url": "./phook-models"},
             sinks=[{"kind": "jsonl", "path": "alerts.jsonl"}]),
    ),
}


def fired(overrides) -> set[str]:
    config = parse_config(base_config(**overrides), origin="<fixture>")
    return {v.rule_id for v in check_config(config).violations}


def test_catalog_and_fixtures_agree():
    assert set(FIXTURES) == {rule.rule_id for rule in RULES}


def test_catalog_has_at_least_twelve_distinct_rules():
    ids = [rule.rule_id for rule in RULES]
    assert len(ids) == len(set(ids))
    assert len(ids) >= 12
    assert all(rule.severity in (ERROR, WARN) for rule in RULES)


def test_base_config_is_clean():
    assert fired({}) == set()


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_rule_triggers_on_its_fixture(rule_id):
    trigger, _ = FIXTURES[rule_id]
    assert rule_id in fired(trigger)


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_rule_passes_on_its_counter_fixture(rule_id):
    _, passing = FIXTURES[rule_id]
    assert rule_id not in fired(passing)


def test_report_orders_errors_first():
    config = parse_config(
        base_config(
            stream={"policy": "drop_newest", "deadline_seconds": 0.0},
            sinks=[{"kind": "jsonl", "path": "a.jsonl"}],
        ),
        origin="<fixture>",
    )
    report = check_config(config)
    severities = [v.severity for v in report.violations]
    assert ERROR in severities
    first_warn = severities.index(WARN) if WARN in severities else len(
        severities)
    assert all(s == ERROR for s in severities[:first_warn])
    assert not report.ok
    as_dict = report.as_dict()
    assert as_dict["errors"] == len(report.errors)
    assert {v["rule_id"] for v in as_dict["violations"]} == {
        v.rule_id for v in report.violations
    }


def test_every_rule_is_documented():
    catalog = (REPO / "docs" / "configuration.md").read_text()
    for rule in RULES:
        assert rule.rule_id in catalog, (
            f"{rule.rule_id} missing from docs/configuration.md"
        )
        assert rule.title in catalog, (
            f"{rule.rule_id} title {rule.title!r} missing from "
            "docs/configuration.md"
        )
