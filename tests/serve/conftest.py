"""Shared fixtures for serve-layer tests."""

import pytest

from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset


@pytest.fixture(scope="session")
def serve_corpus():
    return build_corpus(
        CorpusConfig(n_phishing=40, n_benign=40, seed=11, clone_factor=3.0)
    )


@pytest.fixture(scope="session")
def serve_dataset(serve_corpus):
    return Dataset.from_corpus(serve_corpus, seed=0)
