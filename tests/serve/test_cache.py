"""Tests for the content-addressed FeatureCache."""

import numpy as np
import pytest

from repro.evm.disassembler import decode_mnemonic_ids
from repro.serve.cache import FeatureCache, bytecode_digest

PROLOGUE = bytes.fromhex("6080604052")


class TestDigest:
    def test_digest_is_content_addressed(self):
        assert bytecode_digest(PROLOGUE) == bytecode_digest("0x6080604052")
        assert bytecode_digest(PROLOGUE) == bytecode_digest("60 80 60 40 52")
        assert bytecode_digest(b"\x00") != bytecode_digest(b"\x01")


class TestHitMissAccounting:
    def test_first_lookup_misses_then_hits(self):
        cache = FeatureCache()
        cache.mnemonic_ids(PROLOGUE)
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        cache.mnemonic_ids(PROLOGUE)
        cache.mnemonic_ids("0x6080604052")  # same content, different spelling
        assert (cache.stats.hits, cache.stats.misses) == (2, 1)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_namespaces_tracked_separately(self):
        cache = FeatureCache()
        cache.mnemonic_ids(PROLOGUE)
        cache.get("other", PROLOGUE, lambda code: len(code))
        cache.get("other", PROLOGUE, lambda code: len(code))
        assert cache.stats.by_namespace["ids"] == (0, 1)
        assert cache.stats.by_namespace["other"] == (1, 1)

    def test_idle_hit_rate_is_zero(self):
        assert FeatureCache().stats.hit_rate == 0.0

    def test_stats_as_dict(self):
        cache = FeatureCache()
        ids = cache.mnemonic_ids(PROLOGUE)
        summary = cache.stats.as_dict()
        assert summary["misses"] == 1
        assert summary["by_namespace"]["ids"] == {
            "hits": 0,
            "misses": 1,
            "entries": 1,
            "resident_bytes": ids.nbytes,
        }
        assert summary["resident_bytes"] == ids.nbytes


class TestResidency:
    def test_put_and_evict_balance_resident_bytes(self):
        cache = FeatureCache(max_entries=2)
        rows = [np.zeros(n, dtype=np.uint8) for n in (10, 20, 40)]
        for i, row in enumerate(rows):
            cache.put("ids", bytes([i]), row)
        # max_entries=2 evicted the oldest (10-byte) row.
        assert cache.stats.resident_bytes == 60
        assert cache.stats.resident_by_namespace["ids"] == (2, 60)

    def test_replacing_a_key_does_not_double_count(self):
        cache = FeatureCache()
        cache.put("ids", b"k", np.zeros(8, dtype=np.uint8))
        cache.put("ids", b"k", np.zeros(16, dtype=np.uint8))
        assert cache.stats.resident_by_namespace["ids"] == (1, 16)

    def test_invalidate_namespace_releases_bytes(self):
        cache = FeatureCache()
        cache.put("ids", b"a", np.zeros(8, dtype=np.uint8))
        cache.put("proba", b"a", np.zeros(16, dtype=np.float64))
        cache.invalidate_namespace("proba")
        assert "proba" not in cache.stats.resident_by_namespace
        assert cache.stats.resident_bytes == 8

    def test_invalidations_counted_separately_from_evictions(self):
        """ISSUE-10 regression: a promotion-driven namespace sweep is a
        correctness event, not LRU pressure — it must land in the
        ``invalidations`` counter and leave ``evictions`` alone, with
        the per-namespace residency books balancing to zero for the
        swept namespace only."""
        cache = FeatureCache()
        for key in (b"a", b"b", b"c"):
            cache.put("pred:old", key, np.zeros(16, dtype=np.float64))
        cache.put("ids", b"a", np.zeros(8, dtype=np.uint8))

        assert cache.invalidate_namespace("pred:old") == 3
        assert cache.stats.invalidations == 3
        assert cache.stats.evictions == 0
        summary = cache.stats.as_dict()
        assert summary["invalidations"] == 3
        # The swept namespace's residency books drop to zero (and out of
        # the accounting entirely); the surviving namespace is intact.
        assert "pred:old" not in cache.stats.resident_by_namespace
        assert cache.stats.resident_by_namespace["ids"] == (1, 8)
        # A second sweep finds nothing and must not inflate the counter.
        assert cache.invalidate_namespace("pred:old") == 0
        assert cache.stats.invalidations == 3

    def test_clear_zeroes_residency(self):
        cache = FeatureCache()
        cache.mnemonic_ids(PROLOGUE)
        cache.clear()
        assert cache.stats.resident_bytes == 0
        assert cache.stats.resident_by_namespace == {}


class TestCorrectness:
    def test_cached_ids_equal_direct_decode(self):
        cache = FeatureCache()
        rng = np.random.default_rng(0)
        for __ in range(20):
            code = bytes(
                rng.integers(0, 256, size=int(rng.integers(1, 120)),
                             dtype=np.uint8)
            )
            cached = cache.mnemonic_ids(code)
            again = cache.mnemonic_ids(code)
            assert np.array_equal(cached, decode_mnemonic_ids(code))
            assert np.array_equal(cached, again)

    def test_cached_arrays_are_read_only(self):
        cache = FeatureCache()
        ids = cache.mnemonic_ids(PROLOGUE)
        with pytest.raises(ValueError):
            ids[0] = 1

    def test_compute_called_once(self):
        cache = FeatureCache()
        calls = []

        def compute(code):
            calls.append(code)
            return len(code)

        assert cache.get("n", PROLOGUE, compute) == 5
        assert cache.get("n", PROLOGUE, compute) == 5
        assert calls == [PROLOGUE]


class TestLRU:
    def test_bounded_and_evictions_counted(self):
        cache = FeatureCache(max_entries=4)
        for value in range(6):
            cache.mnemonic_ids(bytes([value]))
        assert len(cache) == 4
        assert cache.stats.evictions == 2

    def test_oldest_entry_evicted_first(self):
        cache = FeatureCache(max_entries=2)
        cache.mnemonic_ids(b"\x00")
        cache.mnemonic_ids(b"\x01")
        cache.mnemonic_ids(b"\x02")  # evicts \x00
        hit, __ = cache.lookup("ids", bytecode_digest(b"\x00"))
        assert not hit
        hit, __ = cache.lookup("ids", bytecode_digest(b"\x01"))
        assert hit

    def test_recently_used_survives(self):
        cache = FeatureCache(max_entries=2)
        cache.mnemonic_ids(b"\x00")
        cache.mnemonic_ids(b"\x01")
        cache.mnemonic_ids(b"\x00")  # refresh
        cache.mnemonic_ids(b"\x02")  # evicts \x01, not \x00
        hit, __ = cache.lookup("ids", bytecode_digest(b"\x00"))
        assert hit
        hit, __ = cache.lookup("ids", bytecode_digest(b"\x01"))
        assert not hit

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            FeatureCache(max_entries=0)

    def test_clear_drops_entries(self):
        cache = FeatureCache()
        cache.mnemonic_ids(PROLOGUE)
        cache.clear()
        assert len(cache) == 0

    def test_put_reestablishes_bound_after_runtime_shrink(self):
        """Regression: lowering ``max_entries`` on a live cache (hot-swap
        reconfiguration) must not leave the store over-bound — a single
        ``if``-pop per put would drain the excess one entry per insert."""
        cache = FeatureCache(max_entries=10)
        for value in range(10):
            cache.mnemonic_ids(bytes([value]))
        assert len(cache) == 10
        cache.max_entries = 3  # shrunk at runtime, store still holds 10
        cache.mnemonic_ids(bytes([200]))
        assert len(cache) == 3  # one put re-established the whole bound
        # The survivors are exactly the most recent entries.
        hit, __ = cache.lookup("ids", bytecode_digest(bytes([200])))
        assert hit
        hit, __ = cache.lookup("ids", bytecode_digest(bytes([0])))
        assert not hit

    def test_resize_evicts_immediately_and_counts(self):
        cache = FeatureCache(max_entries=8)
        for value in range(8):
            cache.mnemonic_ids(bytes([value]))
        evicted = cache.resize(2)
        assert evicted == 6
        assert len(cache) == 2
        assert cache.max_entries == 2
        assert cache.stats.evictions == 6
        with pytest.raises(ValueError):
            cache.resize(0)


class TestInvalidateNamespace:
    def test_invalidate_targets_one_namespace(self):
        cache = FeatureCache()
        cache.mnemonic_ids(PROLOGUE)
        cache.put("pred:A", bytecode_digest(b"\x00"), 0.25)
        cache.put("pred:A", bytecode_digest(b"\x01"), 0.75)
        cache.put("pred:B", bytecode_digest(b"\x00"), 0.5)
        assert cache.invalidate_namespace("pred:A") == 2
        assert len(cache) == 2  # ids + pred:B untouched
        hit, __ = cache.lookup("pred:B", bytecode_digest(b"\x00"))
        assert hit
        assert cache.invalidate_namespace("pred:A") == 0


class TestWarmAndAttach:
    def test_warm_counts_unique_bytecodes(self):
        cache = FeatureCache()
        assert cache.warm([b"\x00", b"\x01", b"\x00"]) == 2
        assert cache.warm([b"\x00"]) == 0

    def test_attach_hsc_detector(self):
        from repro.models.hsc import HSCDetector

        cache = FeatureCache()
        model = HSCDetector(variant="Logistic Regression")
        assert cache.attach(model)
        model.fit([PROLOGUE, b"\x00"], [0, 1])
        assert cache.stats.by_namespace["ids"] == (0, 2)
        model.predict_proba([PROLOGUE])
        assert cache.stats.by_namespace["ids"] == (1, 2)

    def test_attach_rejects_cache_unaware_model(self):
        cache = FeatureCache()
        assert not cache.attach(object())

    def test_attached_features_identical_to_uncached(self):
        from repro.models.hsc import HSCDetector

        codes = [PROLOGUE, b"\x00", PROLOGUE * 3, bytes(range(40))]
        labels = [0, 1, 0, 1]
        cached = HSCDetector(variant="Logistic Regression", seed=0)
        FeatureCache().attach(cached)
        plain = HSCDetector(variant="Logistic Regression", seed=0)
        cached.fit(codes, labels)
        plain.fit(codes, labels)
        assert np.array_equal(
            cached.predict_proba(codes), plain.predict_proba(codes)
        )
        assert np.array_equal(
            cached.extractor_.transform(codes),
            plain.extractor_.transform(codes),
        )
