"""Tests for the batched ScanService."""

import numpy as np
import pytest

from repro.core.pipeline import PhishingHook, PipelineConfig
from repro.serve import FeatureCache, ScanService


@pytest.fixture(scope="module")
def hook(serve_corpus):
    return PhishingHook(serve_corpus, PipelineConfig(run_post_hoc=False))


@pytest.fixture(scope="module")
def service(hook, serve_dataset):
    return hook.scan_service("Random Forest", train_dataset=serve_dataset)


@pytest.fixture(scope="module")
def addresses(serve_corpus):
    return [r.address for r in serve_corpus.records[:12]]


class TestConstruction:
    def test_requires_model_or_dataset(self):
        with pytest.raises(ValueError):
            ScanService("Random Forest")

    def test_lazy_fit_happens_once(self, serve_dataset):
        service = ScanService(
            "Logistic Regression", train_dataset=serve_dataset
        )
        assert not service.stats()["fitted"]
        model = service.model
        assert service.model is model  # second access reuses the fit
        assert service.stats()["fitted"]
        assert service.fit_seconds > 0

    def test_scan_many_without_rpc_raises(self, serve_dataset):
        service = ScanService(
            "Logistic Regression", train_dataset=serve_dataset
        )
        with pytest.raises(RuntimeError):
            service.scan_many(["0x" + "11" * 20])


class TestScanSemantics:
    def test_matches_classify_address(self, hook, service, serve_dataset,
                                      addresses):
        results = service.scan_many(addresses)
        for address, result in zip(addresses, results):
            flagged, probability = hook.classify_address(
                address, "Random Forest", train_dataset=serve_dataset
            )
            assert result.address == address
            assert result.probability == probability
            assert result.is_phishing == flagged

    def test_warm_rescan_is_bit_identical_and_cached(self, service,
                                                     addresses):
        cold = service.scan_many(addresses)
        warm = service.scan_many(addresses)
        assert [r.probability for r in cold] == [r.probability for r in warm]
        assert [r.is_phishing for r in cold] == [r.is_phishing for r in warm]
        assert all(r.from_cache for r in warm)

    def test_in_batch_duplicates_deduped(self, service, serve_corpus):
        code = serve_corpus.records[0].bytecode
        hits_before = service.cache.stats.hits
        results = service.scan_bytecodes([code, code, code])
        assert len({r.probability for r in results}) == 1
        # Duplicates are answered by dedup, not extra predictions.
        assert [r.from_cache for r in results][1:] == [True, True]
        assert service.cache.stats.hits >= hits_before

    def test_hex_string_and_bytes_agree(self, service, serve_corpus):
        code = serve_corpus.records[0].bytecode
        a = service.scan_bytecodes([code])[0]
        b = service.scan_bytecodes(["0x" + code.hex()])[0]
        assert a.probability == b.probability
        assert b.from_cache

    def test_unknown_address_raises(self, service):
        with pytest.raises(ValueError):
            service.scan_many(["0x" + "00" * 20])

    def test_address_length_mismatch_raises(self, service):
        with pytest.raises(ValueError):
            service.scan_bytecodes([b"\x00"], addresses=["a", "b"])

    def test_single_scan_wrapper(self, service, addresses):
        result = service.scan(addresses[0])
        assert result.address == addresses[0]
        assert 0.0 <= result.probability <= 1.0

    def test_threshold_controls_verdict(self, serve_dataset, serve_corpus):
        code = serve_corpus.records[0].bytecode
        lenient = ScanService(
            "Logistic Regression", train_dataset=serve_dataset,
            threshold=0.0,
        )
        assert lenient.scan_bytecodes([code])[0].is_phishing
        strict = ScanService(
            "Logistic Regression", train_dataset=serve_dataset,
            threshold=1.1,
        )
        assert not strict.scan_bytecodes([code])[0].is_phishing


class TestPrefitModel:
    def test_prefit_model_skips_training(self, hook, serve_dataset,
                                         serve_corpus):
        model = hook.fitted_model("Random Forest", serve_dataset)
        service = ScanService("Random Forest", model=model)
        assert service.stats()["fitted"]
        code = serve_corpus.records[0].bytecode
        expected = float(model.predict_proba([code])[0, 1])
        assert service.scan_bytecodes([code])[0].probability == expected

    def test_hook_services_share_prediction_namespace(self, hook,
                                                      serve_dataset,
                                                      serve_corpus):
        code = serve_corpus.records[1].bytecode
        first = hook.scan_service("Random Forest",
                                  train_dataset=serve_dataset)
        first.scan_bytecodes([code])
        second = hook.scan_service("Random Forest",
                                   train_dataset=serve_dataset)
        result = second.scan_bytecodes([code])[0]
        # Same hook, same model, same data → the second service is served
        # straight from the shared prediction cache.
        assert result.from_cache

    def test_two_prefit_services_do_not_share_predictions(self,
                                                          serve_dataset,
                                                          serve_corpus):
        cache = FeatureCache()
        code = serve_corpus.records[0].bytecode
        first = ScanService(
            "Logistic Regression", train_dataset=serve_dataset, cache=cache
        )
        first.ensure_fitted()
        alt = serve_dataset.subset(np.arange(len(serve_dataset) // 2))
        second = ScanService(
            "Logistic Regression", train_dataset=alt, cache=cache
        )
        second.ensure_fitted()
        p1 = first.scan_bytecodes([code])[0]
        p2 = second.scan_bytecodes([code])[0]
        # Different training data → distinct cache namespaces: the second
        # service must not be served the first one's prediction.
        assert not p2.from_cache


class TestStats:
    def test_stats_shape(self, service, addresses):
        service.scan_many(addresses)
        stats = service.stats()
        assert stats["model"] == "Random Forest"
        assert stats["scanned"] >= len(addresses)
        assert set(stats["by_namespace"]) >= {"ids"}
        assert 0.0 <= stats["hit_rate"] <= 1.0
