"""Hot-swap: artifact cold starts and atomic model replacement.

The acceptance gate: ``swap_model()`` under concurrent ``scan_bytecodes``
traffic with **zero dropped or mis-scored batches**, driven through
overlapping swaps (A → B → A → …). A batch is *mis-scored* if any of its
probabilities came from a model other than the one the batch snapshotted
— including via cache rows the other version wrote.
"""

import threading
import time

import numpy as np
import pytest

from repro.artifacts import ModelStore
from repro.models.hsc import HSCDetector
from repro.serve.cache import FeatureCache, bytecode_digest
from repro.serve.service import ScanService


def _fit_detector(dataset, variant, seed, rows=None):
    detector = HSCDetector(variant=variant, seed=seed)
    if variant == "Random Forest":
        detector.set_params(clf__n_estimators=10)
    subset = dataset if rows is None else dataset.subset(rows)
    detector.fit(subset.bytecodes, subset.labels)
    return detector


@pytest.fixture(scope="module")
def versions(serve_dataset):
    """Two fitted forests with (generically) different probabilities.

    Forests, not linear models: the flat inference engine is per-row
    deterministic regardless of batch composition, so "matches version X
    exactly" is well-defined for arbitrarily-sliced concurrent batches
    (a BLAS matvec can drift an ulp with batch shape).
    """
    a = _fit_detector(serve_dataset, "Random Forest", seed=0)
    b = _fit_detector(
        serve_dataset, "Random Forest", seed=1,
        rows=np.arange(len(serve_dataset) // 2),
    )
    return a, b


class TestFromArtifact:
    def test_cold_start_matches_fitted_model(self, versions, serve_dataset,
                                             tmp_path):
        a, __ = versions
        store = ModelStore(tmp_path / "store")
        store.put(a, model_name="Random Forest", tags=("production",))
        service = ScanService.from_artifact("production", store=store)
        codes = serve_dataset.bytecodes[:8]
        expected = a.predict_proba(codes)[:, 1]
        got = [r.probability for r in service.scan_bytecodes(codes)]
        assert np.array_equal(np.asarray(got), expected)
        assert service.stats()["artifact_digest"] == store.resolve("production")
        assert service.stats()["fitted"]

    def test_same_artifact_shares_namespace_across_services(
        self, versions, serve_dataset, tmp_path
    ):
        a, __ = versions
        store = ModelStore(tmp_path / "store")
        store.put(a, tags=("production",))
        cache = FeatureCache()
        code = serve_dataset.bytecodes[0]
        first = ScanService.from_artifact("production", store=store,
                                          cache=cache)
        first.scan_bytecodes([code])
        second = ScanService.from_artifact("production", store=store,
                                           cache=cache)
        # Distinct process/service, same version → prediction-cache hit.
        assert second.scan_bytecodes([code])[0].from_cache


class TestSwapModel:
    def test_swap_switches_predictions(self, versions, serve_dataset):
        a, b = versions
        service = ScanService("Random Forest", model=a,
                              namespace="pred:A")
        codes = serve_dataset.bytecodes[:6]
        before = [r.probability for r in service.scan_bytecodes(codes)]
        assert np.array_equal(before, a.predict_proba(codes)[:, 1])
        service.swap_model(b, namespace="pred:B")
        after = [r.probability for r in service.scan_bytecodes(codes)]
        assert np.array_equal(after, b.predict_proba(codes)[:, 1])
        assert service.stats()["swaps"] == 1

    def test_swap_invalidates_only_prediction_namespace(self, versions,
                                                        serve_dataset):
        a, b = versions
        cache = FeatureCache()
        service = ScanService("Random Forest", model=a, cache=cache,
                              namespace="pred:A")
        codes = serve_dataset.bytecodes[:6]
        service.scan_bytecodes(codes)
        ids_before = sum(
            1 for (ns, __) in cache._store if ns == "ids"
        )
        assert ids_before > 0  # decoded features cached
        assert any(ns == "pred:A" for (ns, __) in cache._store)
        service.swap_model(b, namespace="pred:B")
        assert not any(ns == "pred:A" for (ns, __) in cache._store)
        # Shared feature namespaces survive the swap (stay warm).
        assert sum(1 for (ns, __) in cache._store if ns == "ids") == ids_before

    def test_swap_under_concurrent_traffic(self, versions, serve_dataset):
        """Overlapping swaps, zero dropped, zero mis-scored batches."""
        a, b = versions
        pool = serve_dataset.bytecodes[:24]
        expected = {
            "pred:A": {
                bytecode_digest(c): p
                for c, p in zip(pool, a.predict_proba(pool)[:, 1])
            },
            "pred:B": {
                bytecode_digest(c): p
                for c, p in zip(pool, b.predict_proba(pool)[:, 1])
            },
        }
        service = ScanService("Random Forest", model=a,
                              namespace="pred:A")

        errors: list[str] = []
        batches_done = [0]
        stop = threading.Event()

        def scanner(worker_seed):
            rng = np.random.default_rng(worker_seed)
            while not stop.is_set():
                picks = rng.integers(0, len(pool), size=5)
                batch = [pool[i] for i in picks]
                results = service.scan_bytecodes(batch)
                if len(results) != len(batch):
                    errors.append("dropped results in a batch")
                    return
                digests = [bytecode_digest(c) for c in batch]
                # Every probability in the batch must match ONE version
                # exactly — a mixed batch means the swap tore it.
                consistent = any(
                    all(
                        results[i].probability == expected[tag][digests[i]]
                        for i in range(len(batch))
                    )
                    for tag in ("pred:A", "pred:B")
                )
                if not consistent:
                    errors.append("mis-scored batch during swap")
                    return
                batches_done[0] += 1

        threads = [
            threading.Thread(target=scanner, args=(seed,)) for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        # Overlapping swaps while traffic flows: A→B→A→…, reusing the
        # two namespaces so late cache writes of an outgoing version are
        # exercised too.
        for round_trip in range(30):
            model, tag = ((b, "pred:B") if round_trip % 2 == 0
                          else (a, "pred:A"))
            service.swap_model(model, namespace=tag)
            time.sleep(0.005)  # let batches straddle the swap
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors[0]
        assert batches_done[0] > 0
        assert service.stats()["swaps"] == 30

    def test_swap_from_artifact(self, versions, serve_dataset, tmp_path):
        a, b = versions
        store = ModelStore(tmp_path / "store")
        store.put(a, model_name="Random Forest", tags=("production",))
        vb = store.put(b, model_name="Random Forest",
                       tags=("candidate",))
        service = ScanService.from_artifact("production", store=store)
        codes = serve_dataset.bytecodes[:5]
        service.scan_bytecodes(codes)
        service.swap_from_artifact("candidate", store=store)
        got = [r.probability for r in service.scan_bytecodes(codes)]
        assert np.array_equal(got, b.predict_proba(codes)[:, 1])
        assert service.artifact_digest == vb

    def test_swap_requires_model(self, versions):
        a, __ = versions
        service = ScanService("Random Forest", model=a)
        with pytest.raises(ValueError):
            service.swap_model(None)

    def test_direct_model_swap_clears_artifact_digest(self, versions,
                                                      tmp_path):
        a, b = versions
        store = ModelStore(tmp_path / "store")
        store.put(a, tags=("production",))
        service = ScanService.from_artifact("production", store=store)
        assert service.artifact_digest is not None
        service.swap_model(b)
        # The digest describes the served version; b never came from an
        # artifact, so reporting the old digest would be a lie.
        assert service.stats()["artifact_digest"] is None
