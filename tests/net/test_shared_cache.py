"""Host-wide shared feature cache: leases, LRU eviction, fallback, audit."""

from multiprocessing import resource_tracker

import numpy as np
import pytest

from repro.net.shared_cache import SharedEntry, ShmFeatureCache


@pytest.fixture
def table():
    cache = ShmFeatureCache.create(slots=3, slot_bytes=256)
    yield cache
    cache.unlink()


def _attach(table):
    """In-process attach for tests.

    ``attach`` unregisters the segment from the local resource tracker
    (worker discipline — a worker exit must not tear down the live
    segment). Here owner and reader share one process, so re-register
    to keep the owner's eventual ``unlink`` balanced.
    """
    reader = ShmFeatureCache.attach(table.name, table.slots,
                                    table.slot_bytes)
    resource_tracker.register(reader._shm._name, "shared_memory")
    return reader


def _ids(n, start=0):
    return np.arange(start, start + n, dtype=np.uint8)


class TestGeometry:
    def test_rejects_nonpositive_dimensions(self):
        for slots, slot_bytes in ((0, 64), (4, 0), (-1, 64)):
            with pytest.raises(ValueError):
                ShmFeatureCache.create(slots=slots, slot_bytes=slot_bytes)

    def test_entry_is_a_plain_tuple(self):
        entry = SharedEntry(2, 10, 30)
        assert entry == (2, 10, 30)
        assert (entry.slot, entry.code_len, entry.ids_len) == (2, 10, 30)
        assert list(entry) == [2, 10, 30]  # wire form


class TestStoreAndRead:
    def test_store_then_read_roundtrip(self, table):
        code, ids = b"\x60\x80\x60\x40\x52", _ids(40)
        entry = table.store(b"d1", code, ids)
        assert entry is not None
        got_code, got_ids = table.read(*entry)
        assert got_code == code
        np.testing.assert_array_equal(got_ids, ids)
        assert not got_ids.flags.writeable
        del got_ids
        table.unpin(entry.slot)

    def test_attached_reader_sees_owner_writes(self, table):
        code, ids = b"\xfe" * 9, _ids(17, start=100)
        entry = table.store(b"d1", code, ids)
        reader = _attach(table)
        try:
            got_code, got_ids = reader.read(*entry)
            assert got_code == code
            np.testing.assert_array_equal(got_ids, ids)
            del got_ids
        finally:
            reader.close()
        table.unpin(entry.slot)

    def test_read_validates_slot_and_length(self, table):
        with pytest.raises(ValueError):
            table.read(table.slots, 1, 1)
        with pytest.raises(ValueError):
            table.read(0, table.slot_bytes, 1)


class TestLeases:
    def test_pin_miss_then_store_then_hit(self, table):
        assert table.pin(b"d1") is None
        stored = table.store(b"d1", b"\x00", _ids(4))
        hit = table.pin(b"d1")
        assert hit == stored
        stats = table.stats()
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["hits"] == 1
        table.unpin(stored.slot)
        table.unpin(stored.slot)
        assert table.audit() == {}

    def test_store_raced_digest_pins_existing(self, table):
        first = table.store(b"d1", b"\x00", _ids(4))
        second = table.store(b"d1", b"\x00", _ids(4))
        assert second == first
        assert table.stats()["stores"] == 1
        assert table.audit() == {first.slot: 2}
        table.unpin(first.slot)
        table.unpin(first.slot)

    def test_unpin_without_lease_raises(self, table):
        with pytest.raises(ValueError, match="not pinned"):
            table.unpin(0)

    def test_audit_reports_outstanding_leases(self, table):
        entry = table.store(b"d1", b"\x00", _ids(4))
        assert table.audit() == {entry.slot: 1}
        assert table.stats()["pinned_slots"] == 1
        table.unpin(entry.slot)
        assert table.audit() == {}
        assert table.stats()["pinned_slots"] == 0


class TestEvictionAndFallback:
    def test_lru_eviction_reclaims_unpinned_slot(self, table):
        entries = {}
        for i in range(3):
            entries[i] = table.store(bytes([i]), bytes([i]), _ids(4))
            table.unpin(entries[i].slot)
        table.pin(bytes([0]))  # bump digest 0 to most-recent
        table.unpin(entries[0].slot)
        fourth = table.store(b"\x03", b"\x03", _ids(4))
        assert fourth is not None
        assert fourth.slot == entries[1].slot, "LRU entry was not evicted"
        assert table.pin(bytes([1])) is None, "evicted digest still resolves"
        assert table.stats()["evictions"] == 1
        table.unpin(fourth.slot)

    def test_pinned_slots_are_never_evicted(self, table):
        held = [table.store(bytes([i]), bytes([i]), _ids(4))
                for i in range(3)]
        overflow = table.store(b"\x03", b"\x03", _ids(4))
        assert overflow is None, "evicted a slot with an outstanding lease"
        assert table.stats()["full"] == 1
        for entry in held:
            table.unpin(entry.slot)

    def test_oversized_entry_is_refused_not_fatal(self, table):
        entry = table.store(b"d1", b"\x00" * 200, _ids(200))
        assert entry is None
        assert table.stats()["too_large"] == 1
        assert table.stats()["entries"] == 0

    def test_stats_report_occupancy(self, table):
        entry = table.store(b"d1", b"\x00" * 10, _ids(30))
        table.unpin(entry.slot)
        stats = table.stats()
        assert stats["entries"] == 1
        assert stats["resident_bytes"] == 40
        assert (stats["slots"], stats["slot_bytes"]) == (3, 256)


class TestOwnership:
    def test_reader_cannot_mutate(self, table):
        reader = _attach(table)
        try:
            with pytest.raises(RuntimeError):
                reader.pin(b"d1")
            with pytest.raises(RuntimeError):
                reader.store(b"d1", b"\x00", _ids(4))
            with pytest.raises(RuntimeError):
                reader.unpin(0)
        finally:
            reader.close()

    def test_attached_unlink_is_a_noop(self, table):
        reader = _attach(table)
        reader.unlink()  # must not destroy the owner's segment
        reader.close()
        entry = table.store(b"d1", b"\x00", _ids(4))
        assert entry is not None
        table.unpin(entry.slot)

    def test_unlink_is_idempotent(self):
        cache = ShmFeatureCache.create(slots=2, slot_bytes=64)
        cache.unlink()
        cache.unlink()
