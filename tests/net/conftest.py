"""Shared fixtures for the fleet/network tests.

One small Random Forest is trained once per session and published into
a session-scoped ``file://`` store under the ``production`` tag — the
exact cold-start path fleet workers take. ``probe_batch`` carries real
(address, bytecode) pairs from the same corpus so fleet results can be
compared bit-for-bit against a single-process reference service.
"""

import pytest

from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.models.hsc import HSCDetector


@pytest.fixture(scope="session")
def net_corpus():
    return build_corpus(
        CorpusConfig(n_phishing=30, n_benign=30, seed=13, clone_factor=2.0)
    )


@pytest.fixture(scope="session")
def net_dataset(net_corpus):
    return Dataset.from_corpus(net_corpus, seed=0)


@pytest.fixture(scope="session")
def net_detector(net_dataset):
    detector = HSCDetector(variant="Random Forest", seed=0)
    detector.set_params(clf__n_estimators=10)
    detector.fit(net_dataset.bytecodes, net_dataset.labels)
    return detector


@pytest.fixture(scope="session")
def store_root(tmp_path_factory, net_detector):
    """A ``file://`` store holding the fitted model as ``production``."""
    from repro.artifacts import ModelStore

    root = tmp_path_factory.mktemp("net-store")
    store = ModelStore.from_url(str(root))
    store.put(net_detector, model_name="Random Forest",
              tags=("production",))
    return root


@pytest.fixture(scope="session")
def probe_batch(net_corpus):
    """(addresses, codes) for 16 real deployments, duplicates included."""
    records = [r for r in net_corpus.records if r.bytecode][:16]
    addresses = [r.address for r in records]
    codes = [r.bytecode for r in records]
    return addresses, codes


@pytest.fixture(scope="session")
def reference_results(store_root, probe_batch):
    """Single-process ScanService verdicts for ``probe_batch``."""
    from repro.artifacts import ModelStore
    from repro.serve.service import ScanService

    service = ScanService.from_artifact(
        "production", store=ModelStore.from_url(str(store_root))
    )
    addresses, codes = probe_batch
    return service.scan_bytecodes(codes, addresses=addresses)
