"""Chaos suite: seeded fault plans driven through a supervised fleet.

Each scenario installs a deterministic :class:`~repro.faults.FaultPlan`
(or SIGKILLs real worker processes), lets the self-healing machinery
react — heartbeat supervision, spawn-context respawn with backoff,
degraded-mode serving, dead-letter spooling — and then asserts the one
invariant every fault must preserve: the **alert set is unchanged** (or
every missing alert is accounted for in a dead-letter spool).

Everything here runs against real processes and real sockets; nothing
is monkeypatched inside a worker. The fault plans propagate to respawned
(spawned) workers via ``PHOOK_FAULT_PLAN`` in the environment.
"""

import multiprocessing
import os
import threading
import time

import pytest

from repro.faults import FaultPlan, FaultSpec, clear_plan, install_plan
from repro.net import FleetClient, FleetManager, serve_store
from repro.stream import MemorySink

#: Every plan here is seeded so CI failures replay verbatim locally.
CHAOS_SEED = int(os.environ.get("PHOOK_CHAOS_SEED", "7"))


@pytest.fixture(autouse=True)
def no_leaked_fault_plan():
    clear_plan()
    yield
    clear_plan()


def _supervised(store_root, **kwargs):
    options = dict(
        workers=2,
        store_url=str(store_root),
        model_ref="production",
        sinks=(MemorySink(),),
        supervise=True,
        heartbeat_seconds=0.2,
        respawn_backoff_seconds=0.05,
        respawn_backoff_max=0.2,
    )
    options.update(kwargs)
    return FleetManager(**options)


def _wait_until(predicate, *, timeout=90.0, interval=0.05, what=""):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {what or predicate}")


def _serve_backend(root):
    from repro.artifacts import backend_from_url

    backend = backend_from_url(str(root))
    server = serve_store(backend, "127.0.0.1", 0, writable=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, f"http://127.0.0.1:{server.server_address[1]}"


def _store_server_main(root, ready):
    from repro.artifacts import backend_from_url

    server = serve_store(backend_from_url(root), "127.0.0.1", 0,
                         writable=False)
    ready.send(server.server_address[1])
    ready.close()
    server.serve_forever(poll_interval=0.05)


def _serve_backend_process(root):
    """Publish a store over HTTP from a *separate process*.

    An in-thread server's listening socket is duplicated into every
    fleet worker the manager forks afterwards, so closing it in the
    test process does not actually free the port — connects then hang
    in the kernel backlog instead of being refused. A store outage is
    only realistic (immediate connection-refused) when the server
    process dies and takes its socket with it.
    """
    receiver, sender = multiprocessing.Pipe(duplex=False)
    process = multiprocessing.Process(
        target=_store_server_main, args=(str(root), sender), daemon=True
    )
    process.start()
    sender.close()
    assert receiver.poll(60), "store server never reported its port"
    port = receiver.recv()
    receiver.close()
    return process, f"http://127.0.0.1:{port}"


def _expected_alerts(reference_results):
    return {r.address for r in reference_results if r.is_phishing}


class TestWorkerCrashRecovery:
    def test_sigkill_three_times_recovers_with_equal_alerts(
            self, store_root, probe_batch, reference_results):
        """The headline scenario: kill the same worker three times
        mid-flight; every scan completes, the alert set never changes,
        the supervisor respawns it each time, and no shm slot leaks."""
        addresses, codes = probe_batch
        expected = _expected_alerts(reference_results)
        with _supervised(store_root) as manager:
            sink = manager.sinks[0]
            handle = manager.coordinator.workers[0]
            for round_number in range(1, 4):
                sink.alerts.clear()
                outcome = {}

                def run():
                    outcome["results"] = manager.scan(addresses, codes)

                scanner = threading.Thread(target=run)
                scanner.start()
                manager.kill_worker(0)
                scanner.join(timeout=60)
                assert "results" in outcome, (
                    f"scan never completed in round {round_number}"
                )
                assert {a.address for a in sink.alerts} == expected, (
                    f"alert set changed in crash round {round_number}"
                )
                _wait_until(
                    lambda: handle.state == "alive"
                    and handle.respawns >= round_number,
                    what=f"respawn {round_number}",
                )
            assert handle.respawns == 3
            # One clean scan through the respawned worker.
            sink.alerts.clear()
            results = manager.scan(addresses, codes)
            assert [r["probability"] for r in results] == [
                r.probability for r in reference_results
            ]
            assert {a.address for a in sink.alerts} == expected
            # Slot-leak audit: every crash and reroute released its
            # ring lease (the regression the crash loop guards).
            assert manager.status()["ring"]["free_slots"] == manager.slots

    def test_all_workers_killed_fleet_returns_to_healthy(
            self, store_root, probe_batch, reference_results):
        addresses, codes = probe_batch
        with _supervised(store_root) as manager:
            workers = manager.coordinator.workers
            manager.kill_worker(0)
            manager.kill_worker(1)
            # Healthz flips honest only once the supervisor notices the
            # deaths; recovery means every worker respawned and alive.
            _wait_until(
                lambda: all(w.state == "alive" and w.respawns
                            for w in workers),
                what="full-fleet respawn",
            )
            health = FleetClient(manager.url).healthz()
            assert health["ok"] is True
            assert health["alive_workers"] == 2
            results = manager.scan(addresses, codes)
            assert [r["probability"] for r in results] == [
                r.probability for r in reference_results
            ]

    def test_persistent_start_failure_quarantines_the_worker(
            self, store_root, probe_batch, reference_results):
        """A worker whose cold start keeps failing must be quarantined
        after max_respawns — and the fleet keeps serving without it."""
        addresses, codes = probe_batch
        with _supervised(store_root, max_respawns=2) as manager:
            handle = manager.coordinator.workers[0]
            # Installed *after* start: only respawned (spawned) workers
            # see it, and each new process re-fires the startup fault.
            install_plan(FaultPlan([
                FaultSpec("worker.start", "error", worker=0),
            ], seed=CHAOS_SEED))
            manager.kill_worker(0)
            _wait_until(lambda: handle.state == "quarantined",
                        what="quarantine after repeated respawn failure")
            clear_plan()

            status = FleetClient(manager.url).status()
            worker0 = status["workers"][0]
            assert worker0["state"] == "quarantined"
            assert status["quarantined"] == 1
            health = FleetClient(manager.url).healthz()
            assert health["ok"] is True, (
                "quarantine is a warning, not an outage"
            )
            assert health["degraded"] is True

            results = manager.scan(addresses, codes)
            assert {r["worker"] for r in results} == {1}
            assert [r["probability"] for r in results] == [
                r.probability for r in reference_results
            ]


class TestStoreOutages:
    def test_cold_start_rides_out_a_5xx_storm(
            self, store_root, tmp_path, probe_batch, reference_results):
        """Workers cold-starting through a flapping store mirror retry
        through a bounded 503 storm and still come up bit-identical."""
        server, url = _serve_backend(store_root)
        try:
            plan = FaultPlan([
                FaultSpec("store.get", "error", status=503, count=2),
            ], seed=CHAOS_SEED)
            with plan.installed():
                with _supervised(
                    store_root, store_url=url,
                    cache_dir=str(tmp_path / "spool"),
                ) as manager:
                    assert plan.specs[0].fired == 2, (
                        "the 503 storm never hit the cold-start path"
                    )
                    addresses, codes = probe_batch
                    results = manager.scan(addresses, codes)
                    assert [r["probability"] for r in results] == [
                        r.probability for r in reference_results
                    ]
                    health = FleetClient(manager.url).healthz()
                    assert health["degraded"] is False
        finally:
            server.shutdown()
            server.server_close()

    def test_store_outage_respawn_serves_degraded_from_spool(
            self, store_root, tmp_path, probe_batch, reference_results):
        """Store dies after the fleet is up; a crashed worker respawns
        from the shared cache_dir spool, flags itself degraded, and the
        fleet keeps answering 200 with the degraded flag raised."""
        addresses, codes = probe_batch
        server, url = _serve_backend_process(store_root)
        try:
            with _supervised(
                store_root, store_url=url,
                cache_dir=str(tmp_path / "spool"),
            ) as manager:
                manager.scan(addresses, codes)  # warm the spool path
                server.kill()
                server.join(timeout=10)

                handle = manager.coordinator.workers[0]
                manager.kill_worker(0)
                _wait_until(
                    lambda: handle.state == "alive" and handle.respawns,
                    what="respawn against a dead store",
                )
                assert handle.degraded is True

                health = FleetClient(manager.url).healthz()
                assert health["ok"] is True
                assert health["degraded"] is True
                status = manager.status()
                assert status["degraded"] == 1
                assert status["workers"][0]["degraded"] is True

                sink = manager.sinks[0]
                sink.alerts.clear()
                results = manager.scan(addresses, codes)
                assert [r["probability"] for r in results] == [
                    r.probability for r in reference_results
                ], "degraded-mode results diverged from the reference"
                assert {a.address for a in sink.alerts} == (
                    _expected_alerts(reference_results)
                )
        finally:
            if server.is_alive():
                server.kill()
                server.join(timeout=10)


class TestSinkOutages:
    def test_sink_stall_spools_then_replays_with_full_accounting(
            self, store_root, probe_batch, reference_results, tmp_path):
        """A stalling alert channel: deliveries fail, the breaker opens,
        alerts spool to the dead-letter file, and recovery replays them
        — total delivered + spooled always equals total flagged."""
        from repro.net.retry import CircuitBreaker
        from repro.stream import DeadLetterSink

        inner = MemorySink()
        dead_letter = DeadLetterSink(
            inner, tmp_path / "dead.jsonl",
            breaker=CircuitBreaker(failures=2, reset_seconds=0.2),
        )
        addresses, codes = probe_batch
        expected = _expected_alerts(reference_results)
        with _supervised(store_root, sinks=(dead_letter,)) as manager:
            plan = FaultPlan([
                FaultSpec("sink.emit", "stall", match="memory",
                          delay=0.01, count=2),
            ], seed=CHAOS_SEED)
            with plan.installed():
                manager.scan(addresses, codes)
            stats = dead_letter.stats
            assert stats.failed == 0, "an alert was lost outright"
            assert stats.delivered + stats.spooled == len(expected), (
                "dead-letter accounting does not cover the alert set"
            )
            assert stats.spooled >= 1, "the stall never spooled anything"

            # Channel recovered: the breaker half-opens after its reset
            # window and the next delivery replays the whole spool.
            time.sleep(0.25)
            manager.scan(addresses, codes)
            _wait_until(lambda: not dead_letter.spooled_alerts(),
                        timeout=10, what="dead-letter replay")
        delivered = {
            (a["address"] if isinstance(a, dict) else a.address)
            for a in inner.alerts
        }
        assert delivered == expected, (
            "replay did not restore the exact alert set"
        )
        assert dead_letter.stats.failed == 0
        assert dead_letter.stats.spooled == 0
