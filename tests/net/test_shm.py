"""Shared-memory feature ring: slot lifecycle, packing, crash cleanup."""

import os
import pathlib
import subprocess
import sys
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.net.shm import ShmRing, SlotTooSmallError

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


@pytest.fixture
def ring():
    ring = ShmRing.create(slots=3, slot_bytes=4096)
    yield ring
    ring.unlink()


def test_write_then_view_roundtrip(ring):
    blocks = [
        np.arange(16, dtype=np.uint8),
        np.arange(100, 140, dtype=np.uint8),
    ]
    slot = ring.acquire()
    length = ring.write_blocks(slot, blocks)
    assert length == 16 + 40

    view = ring.view(slot, length)
    assert view.dtype == np.uint8
    assert not view.flags.writeable
    np.testing.assert_array_equal(view[:16], blocks[0])
    np.testing.assert_array_equal(view[16:], blocks[1])
    del view
    ring.release(slot)


def test_acquire_exhaustion_and_release(ring):
    slots = [ring.acquire() for _ in range(3)]
    assert sorted(slots) == [0, 1, 2]
    assert ring.acquire() is None  # full → caller falls back to inline
    assert ring.free_slots == 0
    ring.release(slots[1])
    assert ring.free_slots == 1
    assert ring.acquire() == slots[1]
    for slot in (slots[0], slots[2], slots[1]):
        ring.release(slot)


def test_oversized_batch_raises(ring):
    slot = ring.acquire()
    try:
        with pytest.raises(SlotTooSmallError):
            ring.write_blocks(slot, [np.zeros(5000, dtype=np.uint8)])
    finally:
        ring.release(slot)


def test_release_validates_slot(ring):
    with pytest.raises(ValueError):
        ring.release(99)
    slot = ring.acquire()
    ring.release(slot)
    with pytest.raises(ValueError):
        ring.release(slot)  # double release


def test_attach_sees_creator_bytes(ring):
    slot = ring.acquire()
    payload = np.frombuffer(b"feature-bytes", dtype=np.uint8)
    length = ring.write_blocks(slot, [payload])

    attached = ShmRing.attach(ring.name, ring.slots, ring.slot_bytes)
    try:
        view = attached.view(slot, length)
        assert bytes(view) == b"feature-bytes"
        del view
    finally:
        attached.close()
    ring.release(slot)


def test_attached_ring_never_unlinks(ring):
    attached = ShmRing.attach(ring.name, ring.slots, ring.slot_bytes)
    attached.unlink()  # pid-guarded no-op: not the creator
    attached.close()
    # Segment must still exist for the creator.
    probe = shared_memory.SharedMemory(name=ring.name)
    probe.close()


_CRASHER = """
import sys
from repro.net.shm import ShmRing

ring = ShmRing.create(slots=2, slot_bytes=1024)
print(ring.name, flush=True)
if sys.argv[1] == "crash":
    raise RuntimeError("simulated fleet-manager crash")
"""


def test_abnormal_exit_unlinks_segment(tmp_path):
    """A creator dying on an unhandled exception must not leak shm."""
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}{os.pathsep}" + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _CRASHER, "crash"],
        capture_output=True, text=True, env=env, timeout=60,
    )
    assert completed.returncode != 0
    assert "simulated fleet-manager crash" in completed.stderr
    name = completed.stdout.split()[0]
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
