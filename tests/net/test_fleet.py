"""End-to-end fleet tests over real processes and real sockets.

The module fixture boots a genuine 2-worker fleet (fork + HTTP + shm)
from the session store; transport-failure tests boot their own small
fleets so they can kill workers and saturate queues without poisoning
the shared one. The ``PHOOK_FLEET_SCAN_DELAY`` env knob (inherited by
forked workers) slows worker scans so crashes and overload land
mid-flight deterministically.
"""

import threading
import time
from multiprocessing import shared_memory

import pytest

from repro.net import (
    FleetClient,
    FleetManager,
    FleetRpcError,
    OverloadedError,
    ShuttingDownError,
)
from repro.net.worker import SCAN_DELAY_ENV
from repro.stream import MemorySink


def _manager(store_root, **kwargs):
    options = dict(
        workers=2,
        store_url=str(store_root),
        model_ref="production",
        sinks=(MemorySink(),),
    )
    options.update(kwargs)
    return FleetManager(**options)


@pytest.fixture(scope="module")
def fleet(store_root):
    with _manager(store_root) as manager:
        yield manager


class TestScanPath:
    def test_results_match_single_process_reference(
            self, fleet, probe_batch, reference_results):
        addresses, codes = probe_batch
        results = fleet.scan(addresses, codes)
        assert [r["address"] for r in results] == addresses
        assert [r["probability"] for r in results] == [
            r.probability for r in reference_results
        ], "fleet probabilities diverged from the in-process service"
        assert [r["is_phishing"] for r in results] == [
            r.is_phishing for r in reference_results
        ]

    def test_features_travel_over_shm(self, fleet, probe_batch):
        addresses, codes = probe_batch
        before = fleet.status()["counters"]["shm_batches"]
        fleet.scan(addresses, codes)
        after = fleet.status()["counters"]["shm_batches"]
        assert after > before
        assert fleet.status()["ring"]["free_slots"] == fleet.slots

    def test_repeat_batch_served_from_worker_cache(
            self, fleet, probe_batch):
        addresses, codes = probe_batch
        fleet.scan(addresses, codes)
        again = fleet.scan(addresses, codes)
        assert all(r["from_cache"] for r in again)

    def test_flagged_results_reach_sinks(
            self, fleet, probe_batch, reference_results):
        addresses, codes = probe_batch
        sink = fleet.sinks[0]
        sink.alerts.clear()
        fleet.scan(addresses, codes)
        expected = {
            r.address for r in reference_results if r.is_phishing
        }
        assert {a.address for a in sink.alerts} == expected

    def test_mismatched_lists_rejected(self, fleet):
        with pytest.raises(ValueError):
            fleet.scan(["0x1"], [])


class TestHttpSurface:
    def test_client_scan_matches_in_process(
            self, fleet, probe_batch, reference_results):
        addresses, codes = probe_batch
        client = FleetClient(fleet.url)
        results = client.scan(addresses, codes)
        assert [r["probability"] for r in results] == [
            r.probability for r in reference_results
        ]

    def test_ping_status_healthz(self, fleet):
        client = FleetClient(fleet.url)
        assert client.ping()
        status = client.status()
        assert status["alive"] == 2
        assert len(status["workers"]) == 2
        assert status["counters"]["batches"] >= 1
        assert set(status["batch_latency_seconds"]) == {"p50", "p95",
                                                        "p99"}
        assert client.healthz()["ok"] is True

    def test_unknown_method_is_rpc_error(self, fleet):
        client = FleetClient(fleet.url)
        with pytest.raises(FleetRpcError) as excinfo:
            client.rpc("no_such_method")
        assert excinfo.value.status == 400

    def test_malformed_scan_is_rpc_error(self, fleet):
        client = FleetClient(fleet.url)
        with pytest.raises(FleetRpcError) as excinfo:
            client.rpc("scan", {"addresses": ["0x1"]})  # codes missing
        assert excinfo.value.status == 400


class TestTransportFailures:
    def test_worker_killed_mid_batch_loses_no_alerts(
            self, store_root, probe_batch, reference_results,
            monkeypatch):
        """The acceptance gate: a crash mid-stream drops zero events."""
        monkeypatch.setenv(SCAN_DELAY_ENV, "1.0")
        addresses, codes = probe_batch
        with _manager(store_root) as manager:
            outcome = {}

            def run():
                outcome["results"] = manager.scan(addresses, codes)

            scanner = threading.Thread(target=run)
            scanner.start()
            time.sleep(0.3)  # first shard group is now in flight
            manager.kill_worker(0)
            scanner.join(timeout=30)
            assert "results" in outcome, "scan never completed"

            results = outcome["results"]
            assert len(results) == len(addresses)
            assert all(r is not None for r in results)
            assert [r["probability"] for r in results] == [
                r.probability for r in reference_results
            ], "rerouted batch diverged from the reference"

            sink = manager.sinks[0]
            expected = {
                r.address for r in reference_results if r.is_phishing
            }
            assert {a.address for a in sink.alerts} == expected, (
                "alert set changed after a mid-batch worker crash"
            )
            status = manager.status()
            assert status["counters"]["rerouted"] >= 1
            assert status["alive"] == 1

    def test_scan_routes_around_already_dead_worker(
            self, store_root, probe_batch, reference_results):
        addresses, codes = probe_batch
        with _manager(store_root) as manager:
            manager.kill_worker(1)
            results = manager.scan(addresses, codes)
            assert [r["probability"] for r in results] == [
                r.probability for r in reference_results
            ]
            # Every sub-batch was scored by the surviving worker.
            assert {r["worker"] for r in results} == {0}

    def test_shed_under_sustained_overload(
            self, store_root, probe_batch, monkeypatch):
        monkeypatch.setenv(SCAN_DELAY_ENV, "0.5")
        addresses, codes = probe_batch
        with _manager(store_root, workers=1, queue_depth=1,
                      overflow="shed") as manager:
            client = FleetClient(manager.url)
            statuses = []

            def run():
                try:
                    client.scan(addresses, codes)
                    statuses.append(200)
                except FleetRpcError as error:
                    statuses.append(error.status)

            threads = [threading.Thread(target=run) for _ in range(5)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert 200 in statuses, "overloaded fleet served nothing"
            assert 429 in statuses, "no request was shed at queue_depth=1"
            assert manager.status()["counters"]["shed"] >= 1

    def test_block_overflow_serves_everything(
            self, store_root, probe_batch, monkeypatch):
        monkeypatch.setenv(SCAN_DELAY_ENV, "0.2")
        addresses, codes = probe_batch
        with _manager(store_root, workers=1, queue_depth=1,
                      overflow="block") as manager:
            client = FleetClient(manager.url)
            outcomes = []

            def run():
                outcomes.append(len(client.scan(addresses, codes)))

            threads = [threading.Thread(target=run) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert outcomes == [len(addresses)] * 4
            assert manager.status()["counters"]["shed"] == 0

    def test_drain_refuses_new_work(self, store_root, probe_batch):
        addresses, codes = probe_batch
        with _manager(store_root) as manager:
            manager.scan(addresses, codes)
            assert manager.coordinator.drain(timeout=10)
            with pytest.raises(ShuttingDownError):
                manager.scan(addresses, codes)
            assert FleetClient(manager.url).healthz()["ok"] is False


class TestLifecycle:
    def test_stop_unlinks_the_ring(self, store_root, probe_batch):
        addresses, codes = probe_batch
        manager = _manager(store_root).start()
        ring_name = manager.ring.name
        manager.scan(addresses, codes)
        manager.stop()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ring_name)

    def test_stop_survives_a_crashed_worker(self, store_root):
        """Teardown with a SIGKILLed worker must still clean everything."""
        manager = _manager(store_root).start()
        ring_name = manager.ring.name
        manager.kill_worker(0)
        manager.stop()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ring_name)
        assert all(not p.is_alive() for p in manager._processes)

    def test_exactly_one_model_source_enforced(self, store_root):
        with pytest.raises(ValueError):
            FleetManager(workers=1)
        with pytest.raises(ValueError):
            FleetManager(workers=1, model_path="m.npz",
                         store_url=str(store_root), model_ref="production")

    def test_http_shutdown_stops_the_manager(self, store_root):
        manager = _manager(store_root).start()
        try:
            assert FleetClient(manager.url).shutdown()
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline and not manager.stopped:
                time.sleep(0.1)
            assert manager.stopped
        finally:
            manager.stop()


def test_shed_error_maps_to_http_429():
    assert issubclass(OverloadedError, RuntimeError)


class TestSharedFeatureCache:
    """Host-wide shared cache + mmap cold starts, end to end.

    The ISSUE-9 acceptance: with the shared cache on, a second batch of
    the *same* bytecodes must extract zero times per worker — the ids
    land in the shared table on batch one and every later reference is
    a zero-copy read.
    """

    @pytest.fixture(scope="class")
    def cached_fleet(self, store_root):
        with _manager(store_root, shared_cache=True, mmap=True) as manager:
            yield manager

    @staticmethod
    def _worker_ids_misses(manager):
        """Per-worker (ids-namespace misses, shared_reads) from /status."""
        from repro.net.client import http_json

        out = {}
        for worker in manager.coordinator.workers:
            status = http_json(
                "GET", f"{worker.url}/status", timeout=5.0
            ).json()
            ids = status["service"]["by_namespace"].get("ids", {})
            out[worker.index] = (ids.get("misses", 0),
                                 status["shared_reads"])
        return out

    def test_results_match_reference_with_cache_and_mmap(
            self, cached_fleet, probe_batch, reference_results):
        addresses, codes = probe_batch
        results = cached_fleet.scan(addresses, codes)
        assert [r["probability"] for r in results] == [
            r.probability for r in reference_results
        ]

    def test_second_batch_extracts_nothing_per_worker(
            self, cached_fleet, probe_batch):
        addresses, codes = probe_batch
        cached_fleet.scan(addresses, codes)
        before = self._worker_ids_misses(cached_fleet)
        cached_fleet.scan(addresses, codes)
        after = self._worker_ids_misses(cached_fleet)
        for index, (misses, reads) in after.items():
            assert misses == before[index][0], (
                f"worker {index} re-extracted a duplicate bytecode"
            )
            assert reads > before[index][1], (
                f"worker {index} never read the shared table"
            )

    def test_coordinator_counts_hits_and_stores(
            self, cached_fleet, probe_batch):
        addresses, codes = probe_batch
        cached_fleet.scan(addresses, codes)
        status = cached_fleet.status()
        counters = status["counters"]
        shared = status["shared_cache"]
        assert shared["entries"] >= 1
        assert counters["shared_cache_stores"] == shared["stores"]
        assert counters["shared_cache_fallback"] == 0
        # A repeat batch resolves every code from the table: one pin per
        # unique digest per *shard request* (duplicates that land in
        # different shards pin once each), so the hit delta is bounded by
        # [global unique, batch size].
        from repro.serve.cache import bytecode_digest

        unique = len({bytecode_digest(code) for code in codes})
        before = counters["shared_cache_hits"]
        cached_fleet.scan(addresses, codes)
        after = cached_fleet.status()["counters"]["shared_cache_hits"]
        assert unique <= after - before <= len(codes)

    def test_no_lease_leaks_after_scans(self, cached_fleet, probe_batch):
        addresses, codes = probe_batch
        cached_fleet.scan(addresses, codes)
        shared = cached_fleet.status()["shared_cache"]
        assert shared["pinned_slots"] == 0, (
            "a request finished without releasing its shared-cache lease"
        )


class TestNamespaceInvalidation:
    """ISSUE-10 regression: promotion must evict the demoted model's
    prediction namespace on *every* worker's local cache, while the
    digest-keyed host-wide feature table — model-independent by
    construction — survives the sweep untouched.
    """

    @staticmethod
    def _per_worker_entries(manager, namespace):
        """Resident entry count of one namespace in each worker's local
        cache, straight from the per-worker /status accounting."""
        from repro.net.client import http_json

        out = {}
        for worker in manager.coordinator.workers:
            status = http_json(
                "GET", f"{worker.url}/status", timeout=5.0
            ).json()
            ns = status["service"]["by_namespace"].get(namespace, {})
            out[worker.index] = ns.get("entries", 0)
        return out

    def test_prediction_namespace_evicted_fleet_wide(
            self, store_root, probe_batch):
        from repro.artifacts import ModelStore

        digest = ModelStore.from_url(str(store_root)).resolve("production")
        namespace = f"pred:artifact:{digest}"
        addresses, codes = probe_batch
        with _manager(store_root, shared_cache=True) as manager:
            manager.scan(addresses, codes)
            before = self._per_worker_entries(manager, namespace)
            assert all(count > 0 for count in before.values()), (
                "every worker should hold prediction rows after a scan"
            )
            shared_before = manager.status()["shared_cache"]["entries"]
            assert shared_before >= 1

            report = manager.invalidate_namespace(namespace)
            assert set(report["workers"]) == set(before)
            for index, evicted in report["workers"].items():
                assert evicted == before[index], (
                    f"worker {index} reported {evicted} evictions but "
                    f"held {before[index]} prediction rows"
                )
            assert report["total_evicted"] >= sum(before.values())

            after = self._per_worker_entries(manager, namespace)
            assert all(count == 0 for count in after.values()), (
                "stale prediction rows survived the fleet-wide sweep"
            )
            # The shared table holds bytecodes + decoded ids keyed by
            # content digest — valid for any model — so the sweep must
            # not have touched it.
            assert (manager.status()["shared_cache"]["entries"]
                    == shared_before)

            # The fleet still serves: the rescan recomputes predictions
            # (no stale hit can exist) and repopulates the namespace.
            again = manager.scan(addresses, codes)
            assert not any(r["from_cache"] for r in again)
            repopulated = self._per_worker_entries(manager, namespace)
            assert all(count > 0 for count in repopulated.values())

    def test_invalidate_rpc_reaches_every_worker(
            self, store_root, probe_batch):
        addresses, codes = probe_batch
        with _manager(store_root) as manager:
            manager.scan(addresses, codes)
            client = FleetClient(manager.url)
            report = client.invalidate("ids")
            assert report["namespace"] == "ids"
            # JSON stringifies the worker indices; both must answer.
            assert set(report["workers"]) == {"0", "1"}
            assert all(count is not None and count > 0
                       for count in report["workers"].values())
            # The coordinator's own decode cache holds the ids blocks it
            # shipped; the sweep covers it too.
            assert report["coordinator_evicted"] > 0
