"""Virtual-time unit coverage for RetryPolicy and CircuitBreaker.

Every network edge in the repo shares these two primitives, so their
contracts are pinned here once: backoff shape, retry predicate
semantics, and the closed → open → half-open → closed cycle.
"""

import random

import pytest

from repro.net import CircuitBreaker, RetryPolicy
from repro.net.retry import CircuitOpenError


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.5,
                             multiplier=2.0, jitter=0.0)
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_only_adds_and_is_seedable(self):
        policy = RetryPolicy(attempts=4, base_delay=1.0, max_delay=8.0,
                             jitter=0.1, rng=random.Random(3))
        again = RetryPolicy(attempts=4, base_delay=1.0, max_delay=8.0,
                            jitter=0.1, rng=random.Random(3))
        first, second = list(policy.delays()), list(again.delays())
        assert first == second
        for base, jittered in zip([1.0, 2.0, 4.0], first):
            assert base <= jittered <= base * 1.1

    def test_call_retries_until_success(self):
        naps = []
        policy = RetryPolicy(attempts=4, base_delay=0.1, jitter=0.0,
                             sleep=naps.append)
        calls = iter([OSError("a"), OSError("b"), "ok"])

        def fn():
            outcome = next(calls)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        assert policy.call(fn) == "ok"
        assert naps == [0.1, 0.2]

    def test_call_reraises_after_exhaustion(self):
        policy = RetryPolicy(attempts=3, sleep=lambda _: None)
        tries = []

        def fn():
            tries.append(1)
            raise OSError("down")

        with pytest.raises(OSError, match="down"):
            policy.call(fn)
        assert len(tries) == 3

    def test_should_retry_short_circuits(self):
        policy = RetryPolicy(attempts=5, sleep=lambda _: None)
        tries = []

        def fn():
            tries.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(fn, should_retry=lambda e: isinstance(e, OSError))
        assert len(tries) == 1

    def test_on_retry_observes_each_failure(self):
        policy = RetryPolicy(attempts=3, sleep=lambda _: None)
        seen = []

        def fn():
            raise OSError("x")

        with pytest.raises(OSError):
            policy.call(fn, on_retry=lambda exc, i: seen.append(i))
        assert seen == [0, 1]

    def test_zero_retries_is_a_plain_call(self):
        policy = RetryPolicy(attempts=1)
        with pytest.raises(OSError):
            policy.call(lambda: (_ for _ in ()).throw(OSError()))
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failures=3, reset_seconds=10.0,
                                 clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failures=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_single_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failures=1, reset_seconds=10.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 10.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()      # the one probe
        assert not breaker.allow()  # everyone else still refused
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens_for_a_full_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failures=1, reset_seconds=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now += 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.now += 9.9
        assert not breaker.allow()
        clock.now += 0.1
        assert breaker.allow()

    def test_as_dict_and_open_error_type(self):
        breaker = CircuitBreaker(failures=2, reset_seconds=5.0)
        assert breaker.as_dict() == {
            "state": "closed", "failures": 2, "reset_seconds": 5.0,
        }
        # Callers that surface a refused call raise a ConnectionError
        # subtype so transport-level handlers catch it uniformly.
        assert issubclass(CircuitOpenError, ConnectionError)
        with pytest.raises(ValueError):
            CircuitBreaker(failures=0)
