"""HTTP store transport: serve_store server + HttpStoreBackend client.

The pair is exercised over real sockets: a ``FileStoreBackend`` is
published with :func:`serve_store` and every ``StoreBackend`` operation
goes through :class:`HttpStoreBackend` — including the integrity check
against a tampering server and the full ``ModelStore`` cold-start with
``cache_dir`` spooling.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.artifacts import HttpStoreBackend, ModelStore, backend_from_url
from repro.artifacts.errors import IntegrityError
from repro.net import serve_store


def _serve(backend, *, writable=False):
    server = serve_store(backend, "127.0.0.1", 0, writable=writable)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    return server, url


@pytest.fixture
def writable_pair(tmp_path):
    backend = backend_from_url(str(tmp_path / "store"))
    server, url = _serve(backend, writable=True)
    yield backend, HttpStoreBackend(url)
    server.shutdown()
    server.server_close()


@pytest.fixture
def readonly_pair(tmp_path):
    backend = backend_from_url(str(tmp_path / "store"))
    backend.put("objects/a.npz", b"artifact-bytes")
    server, url = _serve(backend, writable=False)
    yield backend, HttpStoreBackend(url)
    server.shutdown()
    server.server_close()


class TestBackendOperations:
    def test_put_get_roundtrip(self, writable_pair):
        local, remote = writable_pair
        etag = remote.put("objects/x.npz", b"payload")
        assert local.get("objects/x.npz") == b"payload"
        assert remote.get("objects/x.npz") == b"payload"
        assert remote.etag("objects/x.npz") == etag

    def test_missing_key_raises_keyerror(self, readonly_pair):
        _, remote = readonly_pair
        with pytest.raises(KeyError):
            remote.get("objects/nope.npz")
        with pytest.raises(KeyError):
            remote.size("objects/nope.npz")
        assert remote.etag("objects/nope.npz") is None

    def test_list_with_prefix(self, writable_pair):
        _, remote = writable_pair
        remote.put("objects/a.npz", b"a")
        remote.put("objects/b.npz", b"b")
        remote.put("tags.json", b"{}")
        assert sorted(remote.list("objects/")) == [
            "objects/a.npz", "objects/b.npz",
        ]

    def test_delete(self, writable_pair):
        local, remote = writable_pair
        remote.put("objects/gone.npz", b"x")
        remote.delete("objects/gone.npz")
        with pytest.raises(KeyError):
            local.get("objects/gone.npz")

    def test_size(self, readonly_pair):
        _, remote = readonly_pair
        assert remote.size("objects/a.npz") == len(b"artifact-bytes")

    def test_readonly_server_rejects_writes(self, readonly_pair):
        _, remote = readonly_pair
        with pytest.raises(PermissionError):
            remote.put("objects/new.npz", b"x")
        with pytest.raises(PermissionError):
            remote.delete("objects/a.npz")


class _TamperingHandler(BaseHTTPRequestHandler):
    """Replies with a body that does not match its ETag header."""

    def log_message(self, *args):
        pass

    def do_GET(self):
        body = b"tampered-bytes"
        self.send_response(200)
        self.send_header("ETag", '"' + "0" * 64 + '"')
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def test_etag_mismatch_raises_integrity_error():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _TamperingHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        remote = HttpStoreBackend(
            f"http://127.0.0.1:{server.server_address[1]}"
        )
        with pytest.raises(IntegrityError):
            remote.get("objects/a.npz")
    finally:
        server.shutdown()
        server.server_close()


def test_backend_from_url_dispatches_http():
    assert isinstance(
        backend_from_url("http://127.0.0.1:1/"), HttpStoreBackend
    )
    assert isinstance(
        backend_from_url("https://store.example/"), HttpStoreBackend
    )


def test_model_store_cold_start_over_http(store_root, reference_results,
                                          probe_batch, tmp_path):
    """The production path: workers pull artifacts via http://."""
    from repro.serve.service import ScanService

    backend = backend_from_url(str(store_root))
    server, url = _serve(backend, writable=False)
    try:
        store = ModelStore.from_url(url, cache_dir=tmp_path / "spool")
        service = ScanService.from_artifact("production", store=store)
        addresses, codes = probe_batch
        results = service.scan_bytecodes(codes, addresses=addresses)
        assert [r.probability for r in results] == [
            r.probability for r in reference_results
        ]
        # The artifact was spooled through cache_dir, not a throwaway.
        spooled = list((tmp_path / "spool").rglob("*.npz"))
        assert spooled, "cache_dir spool is empty after a remote load"
    finally:
        server.shutdown()
        server.server_close()


def test_served_store_lists_versions(store_root):
    backend = backend_from_url(str(store_root))
    server, url = _serve(backend)
    try:
        store = ModelStore.from_url(url)
        rows = store.list()
        assert len(rows) == 1
        assert "production" in rows[0]["tags"]
    finally:
        server.shutdown()
        server.server_close()


# ---------------------------------------------------------------------- #
# Failure paths: 5xx storms, truncated bodies, retry-then-succeed
# (driven through the store server's compiled-in fault points)
# ---------------------------------------------------------------------- #


@pytest.fixture(autouse=True)
def no_leaked_fault_plan():
    from repro.faults import clear_plan

    clear_plan()
    yield
    clear_plan()


def _fast_retry(attempts):
    from repro.net import RetryPolicy

    return RetryPolicy(attempts=attempts, base_delay=0.01,
                       max_delay=0.02, jitter=0.0,
                       sleep=lambda _delay: None)


class TestInjectedStoreFailures:
    def test_transient_5xx_is_retried_to_success(self, tmp_path):
        from repro.faults import FaultPlan, FaultSpec

        backend = backend_from_url(str(tmp_path / "store"))
        backend.put("objects/a.npz", b"artifact-bytes")
        server, url = _serve(backend)
        try:
            remote = HttpStoreBackend(url, retry=_fast_retry(3))
            plan = FaultPlan([
                FaultSpec("store.get", "error", match="objects/a",
                          count=2, status=503),
            ])
            with plan.installed():
                assert remote.get("objects/a.npz") == b"artifact-bytes"
            assert plan.specs[0].fired == 2
        finally:
            server.shutdown()
            server.server_close()

    def test_5xx_storm_exhausts_retries_and_raises(self, tmp_path):
        from repro.faults import FaultPlan, FaultSpec

        backend = backend_from_url(str(tmp_path / "store"))
        backend.put("objects/a.npz", b"artifact-bytes")
        server, url = _serve(backend)
        try:
            remote = HttpStoreBackend(url, retry=_fast_retry(3))
            plan = FaultPlan([FaultSpec("store.get", "error",
                                        status=500)])
            with plan.installed():
                with pytest.raises(OSError, match="HTTP 500"):
                    remote.get("objects/a.npz")
            # Every attempt hit the server: retried, not given up early.
            assert plan.specs[0].fired == 3
        finally:
            server.shutdown()
            server.server_close()

    def test_truncated_body_raises_integrity_error(self, tmp_path):
        """A short body under the full object's ETag is tampering, not
        a transport flake — it must never be retried into the cache."""
        from repro.faults import FaultPlan, FaultSpec

        backend = backend_from_url(str(tmp_path / "store"))
        backend.put("objects/a.npz", b"artifact-bytes-full-length")
        server, url = _serve(backend)
        try:
            remote = HttpStoreBackend(url, retry=_fast_retry(3))
            plan = FaultPlan([FaultSpec("store.get", "truncate")])
            with plan.installed():
                with pytest.raises(IntegrityError):
                    remote.get("objects/a.npz")
            # Integrity failures are terminal: exactly one attempt.
            assert plan.specs[0].fired == 1
        finally:
            server.shutdown()
            server.server_close()

    def test_truncated_pull_never_poisons_the_cache_dir(
            self, store_root, tmp_path):
        """The spool writes only ETag-verified bytes: a truncated pull
        leaves cache_dir empty, and the next clean pull fills it."""
        from repro.artifacts.errors import CorruptArtifactError
        from repro.faults import FaultPlan, FaultSpec

        backend = backend_from_url(str(store_root))
        server, url = _serve(backend)
        cache_dir = tmp_path / "spool"
        try:
            store = ModelStore.from_url(url, cache_dir=cache_dir)
            store.backend.retry = _fast_retry(2)
            plan = FaultPlan([
                FaultSpec("store.get", "truncate", match="objects/",
                          count=1),
            ])
            with plan.installed():
                with pytest.raises((IntegrityError,
                                    CorruptArtifactError)):
                    store.path_of("production")
                assert not list(cache_dir.rglob("*.npz")), (
                    "a truncated transfer reached the artifact cache"
                )
                # Fault spent (count=1): the retry-free second pull
                # succeeds and spools the verified bytes.
                path = store.path_of("production")
                assert path.is_file()
                assert path.parent == cache_dir
        finally:
            server.shutdown()
            server.server_close()
