"""Unit tests for the stdlib HTTP client wrapper."""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.net.client import TransportError, http_json, http_request


class _EchoHandler(BaseHTTPRequestHandler):
    def log_message(self, *args):
        pass

    def _reply(self, status, payload):
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):
        if self.path == "/teapot":
            self._reply(418, {"short": "stout"})
        else:
            self._reply(200, {"path": self.path})

    def do_POST(self):
        length = int(self.headers.get("Content-Length", "0"))
        body = json.loads(self.rfile.read(length))
        self._reply(200, {
            "echo": body,
            "content_type": self.headers.get("Content-Type", ""),
        })


@pytest.fixture(scope="module")
def server():
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _EchoHandler)
    httpd.daemon_threads = True
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.server_address[1]}"
    httpd.shutdown()
    httpd.server_close()


def test_get_roundtrip(server):
    response = http_request("GET", f"{server}/hello")
    assert response.ok
    assert response.status == 200
    assert response.json() == {"path": "/hello"}
    assert response.headers["content-type"] == "application/json"


def test_non_2xx_is_a_response_not_an_error(server):
    response = http_request("GET", f"{server}/teapot")
    assert not response.ok
    assert response.status == 418
    assert response.json() == {"short": "stout"}


def test_http_json_posts_with_content_type(server):
    response = http_json("POST", f"{server}/rpc", {"a": 1})
    payload = response.json()
    assert payload["echo"] == {"a": 1}
    assert payload["content_type"] == "application/json"


def test_connection_refused_is_transport_error():
    with pytest.raises(TransportError):
        # Port 9 (discard) is never listening in the test environment.
        http_request("GET", "http://127.0.0.1:9/", timeout=2.0)


def test_transport_error_is_a_connection_error():
    assert issubclass(TransportError, ConnectionError)


def test_non_http_scheme_rejected():
    with pytest.raises(ValueError):
        http_request("GET", "ftp://example.com/x")
