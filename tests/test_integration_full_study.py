"""End-to-end integration: a miniature of the paper's full study.

One test walks the complete experimental arc — corpus → BEM crawl →
dataset → MEM evaluation → PAM statistics → report; the temporal study
and SHAP explanation run on the same data. This is the closest in-tree
mirror of what the benchmark suite does at larger scale.
"""

import numpy as np
import pytest

from repro.analysis.report import render_report
from repro.analysis.shap_values import tree_shap_values
from repro.analysis.timeeval import time_decay_evaluation
from repro.core.pipeline import PhishingHook, PipelineConfig
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset
from repro.features.histogram import OpcodeHistogramExtractor
from repro.ml.forest import RandomForestClassifier
from repro.models.hsc import HSCDetector


def fast_factory(name, seed=0):
    detector = HSCDetector(variant=name, seed=seed)
    detector.set_params(clf__n_estimators=25)
    return detector


@pytest.mark.slow
def test_full_study_miniature():
    corpus = build_corpus(
        CorpusConfig(
            n_phishing=70, n_benign=70, seed=61,
            benign_temporal_match=True, phishing_profile="uniform",
            clone_factor=5.0,
        )
    )
    hook = PhishingHook(
        corpus,
        PipelineConfig(
            model_names=("Random Forest", "k-NN", "Logistic Regression"),
            n_folds=3, n_runs=1, seed=61, run_post_hoc=True,
        ),
    )

    # Main evaluation (Table II shape) + post hoc (Table III / Fig. 4).
    outcome = hook.run()
    assert outcome.evaluation.mean_metrics("Random Forest").accuracy > 0.7
    assert outcome.post_hoc is not None

    # The circulated artifact renders.
    report = render_report(
        outcome.evaluation, outcome.post_hoc,
        dataset_size=len(outcome.dataset),
    )
    assert "Random Forest" in report and "Kruskal" in report

    # Time-resistance (Fig. 8 shape) on the same temporal dataset.
    dataset = Dataset.from_corpus(corpus, seed=61)
    decay = time_decay_evaluation(
        dataset, fast_factory, ["Random Forest"], train_months=(0, 1, 2, 3)
    )[0]
    assert len(decay.months) >= 5
    assert decay.aut_f1 > 0.55

    # Interpretability (Fig. 9 shape): local accuracy on a test split.
    train, test = dataset.train_test_split(0.25, seed=61)
    extractor = OpcodeHistogramExtractor().fit(train.bytecodes)
    forest = RandomForestClassifier(
        n_estimators=25, max_depth=6, random_state=61
    ).fit(extractor.transform(train.bytecodes), train.labels)
    X_test = extractor.transform(test.bytecodes)[:20]
    values, base = tree_shap_values(forest, X_test)
    np.testing.assert_allclose(
        base + values.sum(axis=1),
        forest.predict_proba(X_test)[:, 1],
        atol=1e-9,
    )
