"""Equivalence suite for the flat-array vectorized inference engine.

Every assertion here is *bit-identical* (``np.array_equal``), not
approximate: the engine's contract is that vectorized level-synchronous
descent reproduces the per-row reference traversal float-for-float, and
that a parallel forest fit reproduces the serial fit exactly under the
same master seed.
"""

import numpy as np
import pytest

from repro.ml.flat import LEAF, FlatEnsemble, level_descent, precompile, reference_apply
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import (
    CatBoostClassifier,
    LightGBMClassifier,
    XGBoostClassifier,
    _Binner,
)
from repro.ml.knn import KNeighborsClassifier
from repro.ml.tree import DecisionTreeClassifier, apply_per_row


def _make_problem(seed, n=200, d=6):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] + 0.5 * X[:, 1] + 0.3 * rng.normal(size=n) > 0).astype(int)
    return X, y


def _seed_forest_proba(forest, X):
    """The seed path: per-row traversal per tree, sequential accumulation."""
    probabilities = np.zeros((len(X), 2))
    for tree in forest.trees_:
        probabilities += tree.value_[apply_per_row(tree, X)]
    return probabilities / len(forest.trees_)


class TestTreeEquivalence:
    @pytest.mark.parametrize("max_depth", [None, 1, 2, 4])
    def test_apply_matches_per_row_reference(self, max_depth):
        X, y = _make_problem(1)
        tree = DecisionTreeClassifier(max_depth=max_depth, random_state=0)
        tree.fit(X, y)
        assert np.array_equal(tree.apply(X), apply_per_row(tree, X))

    def test_apply_on_unseen_data(self):
        X, y = _make_problem(2)
        probe = np.random.default_rng(3).normal(size=(57, X.shape[1]))
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert np.array_equal(tree.apply(probe), apply_per_row(tree, probe))

    def test_single_node_tree_root_is_leaf(self):
        tree = DecisionTreeClassifier().fit(np.eye(4), [1, 1, 1, 1])
        assert tree.node_count == 1
        assert np.array_equal(tree.apply(np.eye(4)), np.zeros(4, dtype=np.int64))
        assert tree.max_depth_reached == 0
        assert np.array_equal(tree.feature_importances_, np.zeros(4))

    def test_predict_proba_matches_value_lookup(self):
        X, y = _make_problem(4)
        tree = DecisionTreeClassifier(max_depth=3, random_state=1).fit(X, y)
        assert np.array_equal(
            tree.predict_proba(X), tree.value_[apply_per_row(tree, X)]
        )

    def test_max_depth_reached_matches_per_node_reference(self):
        X, y = _make_problem(5)
        tree = DecisionTreeClassifier(random_state=2).fit(X, y)
        depths = np.zeros(tree.node_count, dtype=int)
        for node in range(tree.node_count):
            for child in (tree.children_left_[node], tree.children_right_[node]):
                if child != LEAF:
                    depths[child] = depths[node] + 1
        assert tree.max_depth_reached == depths.max()

    def test_feature_importances_match_per_node_reference(self):
        X, y = _make_problem(6)
        tree = DecisionTreeClassifier(max_depth=5, random_state=3).fit(X, y)
        reference = np.zeros(tree.n_features_)
        total = tree.n_node_samples_[0]

        def gini(index):
            p = tree.value_[index, 1]
            return 1.0 - p * p - (1.0 - p) ** 2

        for node in range(tree.node_count):
            if tree.children_left_[node] == LEAF:
                continue
            left, right = tree.children_left_[node], tree.children_right_[node]
            decrease = (
                tree.n_node_samples_[node] * gini(node)
                - tree.n_node_samples_[left] * gini(left)
                - tree.n_node_samples_[right] * gini(right)
            )
            reference[tree.feature_[node]] += decrease / total
        if reference.sum() > 0:
            reference /= reference.sum()
        assert np.array_equal(tree.feature_importances_, reference)


class TestForestEquivalence:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_predict_proba_bit_identical_to_seed_path(self, seed):
        X, y = _make_problem(seed)
        forest = RandomForestClassifier(n_estimators=15, random_state=seed)
        forest.fit(X, y)
        assert np.array_equal(forest.predict_proba(X), _seed_forest_proba(forest, X))

    def test_depth_bounded_forest(self):
        X, y = _make_problem(8)
        forest = RandomForestClassifier(
            n_estimators=9, max_depth=2, random_state=1
        ).fit(X, y)
        assert np.array_equal(forest.predict_proba(X), _seed_forest_proba(forest, X))

    def test_forest_with_single_node_trees(self):
        # Pure labels: every tree is a root-leaf stump.
        X = np.random.default_rng(0).normal(size=(30, 3))
        forest = RandomForestClassifier(n_estimators=5, random_state=0)
        forest.fit(X, np.ones(30, dtype=int))
        proba = forest.predict_proba(X)
        assert np.array_equal(proba, np.tile([0.0, 1.0], (30, 1)))
        assert forest.compile_flat().node_count == 5

    def test_not_fitted_raised_before_array_work(self):
        # A NaN matrix would raise ValueError inside check_array; the
        # not-fitted RuntimeError must win because it fires first.
        forest = RandomForestClassifier()
        with pytest.raises(RuntimeError, match="not fitted"):
            forest.predict_proba(np.full((3, 2), np.nan))

    def test_flat_ensemble_offsets_and_roots(self):
        X, y = _make_problem(9)
        forest = RandomForestClassifier(n_estimators=4, random_state=2).fit(X, y)
        flat = forest.compile_flat()
        assert flat.n_trees == 4
        counts = [tree.node_count for tree in forest.trees_]
        assert np.array_equal(np.diff(flat.offsets), counts)
        assert flat.node_count == sum(counts)
        # Root of tree i is the first node of its block.
        assert np.array_equal(flat.roots, flat.offsets[:-1])

    def test_tree_view_preserves_treeshap_contract(self):
        X, y = _make_problem(10)
        forest = RandomForestClassifier(n_estimators=3, random_state=5).fit(X, y)
        flat = forest.compile_flat()
        for index, tree in enumerate(forest.trees_):
            view = flat.tree_view(index)
            assert np.array_equal(view.children_left_, tree.children_left_)
            assert np.array_equal(view.children_right_, tree.children_right_)
            assert np.array_equal(view.feature_, tree.feature_)
            assert np.array_equal(view.threshold_, tree.threshold_)
            assert np.array_equal(view.value_, tree.value_)
            assert np.array_equal(view.n_node_samples_, tree.n_node_samples_)
            assert view.n_features_ == tree.n_features_

    def test_treeshap_local_accuracy_through_flat_views(self):
        from repro.analysis.shap_values import _tree_shap_single

        X, y = _make_problem(11, n=80, d=4)
        forest = RandomForestClassifier(n_estimators=3, random_state=1).fit(X, y)
        flat = forest.compile_flat()
        x = X[0]
        for index in range(flat.n_trees):
            view = flat.tree_view(index)
            phi = _tree_shap_single(view, x)
            prediction = view.value_[
                reference_apply(
                    x[None, :], view.children_left_, view.children_right_,
                    view.feature_, view.threshold_,
                )[0],
                1,
            ]
            assert phi.sum() + view.value_[0, 1] == pytest.approx(prediction)


class TestParallelFit:
    @pytest.mark.parametrize("seed", [0, 13])
    def test_parallel_fit_reproduces_serial_fit(self, seed):
        X, y = _make_problem(seed, n=120)
        serial = RandomForestClassifier(
            n_estimators=8, random_state=seed, n_jobs=None
        ).fit(X, y)
        parallel = RandomForestClassifier(
            n_estimators=8, random_state=seed, n_jobs=2
        ).fit(X, y)
        for a, b in zip(serial.trees_, parallel.trees_):
            assert np.array_equal(a.children_left_, b.children_left_)
            assert np.array_equal(a.children_right_, b.children_right_)
            assert np.array_equal(a.feature_, b.feature_)
            assert np.array_equal(a.threshold_, b.threshold_)
            assert np.array_equal(a.value_, b.value_)
            assert np.array_equal(a.n_node_samples_, b.n_node_samples_)
        assert np.array_equal(serial.predict_proba(X), parallel.predict_proba(X))

    def test_n_jobs_minus_one_and_clamping(self):
        X, y = _make_problem(14, n=60)
        forest = RandomForestClassifier(n_estimators=3, random_state=0, n_jobs=-1)
        assert forest._effective_jobs() <= 3
        forest.fit(X, y)
        reference = RandomForestClassifier(n_estimators=3, random_state=0).fit(X, y)
        assert np.array_equal(forest.predict_proba(X), reference.predict_proba(X))

    def test_negative_n_jobs_counts_down_from_cpus(self):
        # sklearn semantics: -1 = all CPUs, -2 = all but one, never < 1.
        import os

        cpus = os.cpu_count() or 1
        forest = RandomForestClassifier(n_estimators=64, n_jobs=-1)
        assert forest._effective_jobs() == min(cpus, 64)
        forest.n_jobs = -2
        assert forest._effective_jobs() == min(max(1, cpus - 1), 64)

    def test_zero_n_jobs_rejected(self):
        X, y = _make_problem(15, n=40)
        with pytest.raises(ValueError, match="n_jobs"):
            RandomForestClassifier(n_estimators=2, n_jobs=0).fit(X, y)

    def test_n_jobs_survives_clone(self):
        from repro.ml.base import clone

        forest = RandomForestClassifier(n_estimators=2, n_jobs=2)
        assert clone(forest).n_jobs == 2


class TestGBDTEquivalence:
    def _reference_decision(self, model, X):
        """Seed path: per-row tree traversal, sequential boosting sum."""
        X = model._prepare(np.asarray(X, dtype=np.float64))
        raw = np.full(len(X), model.base_score_)
        for tree in model.trees_:
            leaves = reference_apply(
                X, tree.lefts, tree.rights, tree.features,
                getattr(tree, "thresholds", getattr(tree, "bins", None)),
            )
            raw += model.learning_rate * tree.weights[leaves]
        return raw

    def test_xgboost_decision_bit_identical(self):
        X, y = _make_problem(20)
        model = XGBoostClassifier(n_estimators=12, max_depth=3).fit(X, y)
        assert model.compile_flat() is not None
        assert np.array_equal(
            model.decision_function(X), self._reference_decision(model, X)
        )

    def test_lightgbm_decision_bit_identical(self):
        X, y = _make_problem(21)
        model = LightGBMClassifier(n_estimators=12, num_leaves=7).fit(X, y)
        assert np.array_equal(
            model.decision_function(X), self._reference_decision(model, X)
        )

    def test_catboost_has_no_flat_compilation(self):
        X, y = _make_problem(22)
        model = CatBoostClassifier(n_estimators=4, depth=2).fit(X, y)
        assert model.compile_flat() is None  # oblivious trees: index math
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_binned_descent_with_duplicate_values_at_bin_edges(self):
        # Heavy duplication: values collide exactly on quantile edges, the
        # case where a <=-vs-< slip or an off-by-one bin id would diverge.
        rng = np.random.default_rng(23)
        X = rng.integers(0, 4, size=(160, 3)).astype(np.float64)
        y = (X[:, 0] >= 2).astype(int)
        model = LightGBMClassifier(n_estimators=8, num_leaves=5, max_bins=4)
        model.fit(X, y)
        assert np.array_equal(
            model.decision_function(X), self._reference_decision(model, X)
        )

    def test_binner_matches_per_row_searchsorted(self):
        rng = np.random.default_rng(24)
        X = np.repeat(rng.normal(size=(40, 2)), 3, axis=0)  # duplicates
        binner = _Binner(8).fit(X)
        binned = binner.transform(X)
        for row in range(len(X)):
            for feature in range(X.shape[1]):
                expected = int(
                    np.searchsorted(
                        binner.edges_[feature], X[row, feature], side="left"
                    )
                )
                assert binned[row, feature] == expected


class TestLevelDescentChunking:
    def test_chunked_descent_matches_unchunked(self):
        X, y = _make_problem(30, n=300)
        forest = RandomForestClassifier(n_estimators=6, random_state=0).fit(X, y)
        flat = forest.compile_flat()
        whole = level_descent(
            X, flat.children_left, flat.children_right, flat.feature,
            flat.threshold, flat.roots,
        )
        chunked = level_descent(
            X, flat.children_left, flat.children_right, flat.feature,
            flat.threshold, flat.roots, chunk_rows=64,
        )
        assert np.array_equal(whole, chunked)


class TestKNNVectorized:
    @pytest.mark.parametrize("weights", ["uniform", "distance"])
    def test_chunked_equals_single_block(self, weights):
        X, y = _make_problem(40, n=150)
        probe = np.random.default_rng(41).normal(size=(77, X.shape[1]))
        small = KNeighborsClassifier(
            n_neighbors=5, weights=weights, chunk_size=16
        ).fit(X, y)
        big = KNeighborsClassifier(
            n_neighbors=5, weights=weights, chunk_size=10_000
        ).fit(X, y)
        assert np.array_equal(small.predict_proba(probe), big.predict_proba(probe))

    def test_matches_per_row_reference(self):
        X, y = _make_problem(42, n=90)
        probe = np.random.default_rng(43).normal(size=(31, X.shape[1]))
        model = KNeighborsClassifier(n_neighbors=7, weights="distance").fit(X, y)
        proba = model.predict_proba(probe)
        # Reference: the seed per-row vote loop.
        k = 7
        squared = (
            np.sum(probe**2, axis=1, keepdims=True)
            - 2.0 * probe @ X.T
            + np.sum(X**2, axis=1)
        )
        squared = np.maximum(squared, 0.0)
        neighbors = np.argpartition(squared, k - 1, axis=1)[:, :k]
        for row in range(len(probe)):
            votes = y[neighbors[row]]
            distances = np.sqrt(squared[row, neighbors[row]])
            vote_weights = 1.0 / (distances + 1e-9)
            positive = vote_weights[votes == 1].sum()
            total = vote_weights.sum()
            assert proba[row, 1] == pytest.approx(positive / total, rel=1e-12)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(chunk_size=0)

    def test_not_fitted_raised_before_array_work(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            KNeighborsClassifier().predict_proba(np.full((2, 2), np.nan))


class TestPrecompile:
    def test_precompile_walks_hsc_detector(self):
        from repro.models.hsc import HSCDetector

        rng = np.random.default_rng(50)
        bytecodes = [bytes([96, 96, 82]) + rng.bytes(20) for _ in range(24)]
        labels = rng.integers(0, 2, size=24)
        labels[0], labels[1] = 0, 1  # both classes present
        detector = HSCDetector("Random Forest", seed=0)
        detector.classifier_.set_params(n_estimators=4)
        detector.fit(bytecodes, labels)
        assert precompile(detector) == 1
        assert detector.classifier_._flat is not None

    def test_precompile_is_safe_on_flatless_models(self):
        from repro.models.hsc import HSCDetector

        detector = HSCDetector("k-NN")
        assert precompile(detector) == 0
        assert precompile(object()) == 0

    def test_from_arrays_single_output_value_promoted(self):
        flat = FlatEnsemble.from_arrays(
            [(np.array([LEAF]), np.array([LEAF]), np.array([LEAF]),
              np.array([0.0]), np.array([0.25]))],
            n_features=2,
        )
        assert flat.value.shape == (1, 1)
        assert flat.apply(np.zeros((3, 2)))[0, 0] == 0
