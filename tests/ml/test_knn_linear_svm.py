"""Tests for kNN, logistic regression and the SVM."""

import numpy as np
import pytest

from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import accuracy_score
from repro.ml.svm import SVC

from tests.ml.conftest import split


class TestKNN:
    def test_one_neighbor_memorizes(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_fits_blobs(self, blobs):
        X, y = blobs
        Xtr, ytr, Xte, yte = split(X, y)
        model = KNeighborsClassifier(n_neighbors=5).fit(Xtr, ytr)
        assert accuracy_score(yte, model.predict(Xte)) > 0.95

    def test_k_clamped_to_train_size(self):
        X = np.array([[0.0], [1.0]])
        model = KNeighborsClassifier(n_neighbors=50).fit(X, [0, 1])
        proba = model.predict_proba([[0.0]])
        assert proba[0, 1] == pytest.approx(0.5)

    def test_distance_weighting_prefers_closest(self):
        X = np.array([[0.0], [0.1], [10.0], [10.1], [10.2]])
        y = np.array([1, 1, 0, 0, 0])
        uniform = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        weighted = KNeighborsClassifier(n_neighbors=5, weights="distance").fit(X, y)
        probe = [[0.05]]
        assert uniform.predict(probe)[0] == 0  # majority is class 0
        assert weighted.predict(probe)[0] == 1  # closeness wins

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="nope")

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KNeighborsClassifier().predict_proba([[0.0]])


class TestLogisticRegression:
    def test_fits_blobs(self, blobs):
        X, y = blobs
        Xtr, ytr, Xte, yte = split(X, y)
        model = LogisticRegression().fit(Xtr, ytr)
        assert accuracy_score(yte, model.predict(Xte)) > 0.95

    def test_cannot_solve_xor(self, xor_problem):
        X, y = xor_problem
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) < 0.7  # linear model ≈ chance on XOR

    def test_probabilities_monotone_along_decision_axis(self):
        X = np.linspace(-3, 3, 50).reshape(-1, 1)
        y = (X[:, 0] > 0).astype(int)
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)[:, 1]
        assert np.all(np.diff(proba) >= -1e-9)

    def test_regularization_shrinks_weights(self, blobs):
        X, y = blobs
        loose = LogisticRegression(C=1000.0).fit(X, y)
        tight = LogisticRegression(C=0.001).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_constant_feature_is_safe(self):
        X = np.column_stack([np.ones(20), np.linspace(-1, 1, 20)])
        y = (X[:, 1] > 0).astype(int)
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().decision_function([[0.0]])


class TestSVC:
    def test_fits_blobs(self, blobs):
        X, y = blobs
        Xtr, ytr, Xte, yte = split(X, y)
        model = SVC(random_state=0).fit(Xtr, ytr)
        assert accuracy_score(yte, model.predict(Xte)) > 0.95

    def test_rbf_solves_xor(self, xor_problem):
        X, y = xor_problem
        Xtr, ytr, Xte, yte = split(X, y)
        model = SVC(kernel="rbf", gamma=2.0, n_components=512, random_state=0)
        model.fit(Xtr, ytr)
        assert accuracy_score(yte, model.predict(Xte)) > 0.9

    def test_linear_kernel_fails_xor(self, xor_problem):
        X, y = xor_problem
        model = SVC(kernel="linear").fit(X, y)
        assert model.score(X, y) < 0.7

    def test_gamma_scale_heuristic(self, blobs):
        X, y = blobs
        model = SVC(gamma="scale", random_state=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_deterministic_given_seed(self, blobs):
        X, y = blobs
        a = SVC(random_state=7).fit(X, y).decision_function(X)
        b = SVC(random_state=7).fit(X, y).decision_function(X)
        assert np.allclose(a, b)

    def test_bad_kernel_rejected(self):
        with pytest.raises(ValueError):
            SVC(kernel="poly")

    def test_probabilities_valid(self, blobs):
        X, y = blobs
        proba = SVC(random_state=0).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SVC().decision_function([[0.0]])
