"""Tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    classification_metrics,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)

Y_TRUE = np.array([1, 1, 1, 0, 0, 0, 1, 0])
Y_PRED = np.array([1, 1, 0, 0, 0, 1, 1, 0])


class TestKnownValues:
    def test_confusion_matrix(self):
        matrix = confusion_matrix(Y_TRUE, Y_PRED)
        # TN=3 FP=1 / FN=1 TP=3
        assert matrix.tolist() == [[3, 1], [1, 3]]

    def test_accuracy(self):
        assert accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(6 / 8)

    def test_precision(self):
        assert precision_score(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)

    def test_recall(self):
        assert recall_score(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)

    def test_f1(self):
        assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)

    def test_bundle(self):
        metrics = classification_metrics(Y_TRUE, Y_PRED)
        assert metrics.accuracy == accuracy_score(Y_TRUE, Y_PRED)
        assert metrics.f1 == f1_score(Y_TRUE, Y_PRED)
        assert "acc=" in str(metrics)
        assert set(metrics.as_dict()) == {"accuracy", "f1", "precision", "recall"}


class TestEdgeCases:
    def test_no_positive_predictions(self):
        assert precision_score([1, 0], [0, 0]) == 0.0
        assert f1_score([1, 0], [0, 0]) == 0.0

    def test_no_positive_truth(self):
        assert recall_score([0, 0], [1, 0]) == 0.0

    def test_perfect(self):
        metrics = classification_metrics([0, 1, 1], [0, 1, 1])
        assert metrics.accuracy == metrics.f1 == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0])

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestProperties:
    @given(
        st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                 min_size=1, max_size=100)
    )
    def test_all_metrics_in_unit_interval(self, pairs):
        y_true = [a for a, __ in pairs]
        y_pred = [b for __, b in pairs]
        metrics = classification_metrics(y_true, y_pred)
        for value in metrics.as_dict().values():
            assert 0.0 <= value <= 1.0

    @given(
        st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                 min_size=1, max_size=100)
    )
    def test_f1_between_min_and_max_of_pr(self, pairs):
        y_true = [a for a, __ in pairs]
        y_pred = [b for __, b in pairs]
        precision = precision_score(y_true, y_pred)
        recall = recall_score(y_true, y_pred)
        f1 = f1_score(y_true, y_pred)
        assert min(precision, recall) - 1e-12 <= f1 <= max(precision, recall) + 1e-12

    @given(
        st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                 min_size=1, max_size=60)
    )
    def test_confusion_matrix_sums_to_n(self, pairs):
        y_true = [a for a, __ in pairs]
        y_pred = [b for __, b in pairs]
        assert confusion_matrix(y_true, y_pred).sum() == len(pairs)
