"""Tests for the estimator protocol."""

import numpy as np
import pytest

from repro.ml.base import check_array, check_X_y, clone
from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNeighborsClassifier


class TestParams:
    def test_get_params(self):
        model = KNeighborsClassifier(n_neighbors=3)
        assert model.get_params() == {
            "n_neighbors": 3, "weights": "uniform", "chunk_size": 2048,
        }

    def test_set_params(self):
        model = KNeighborsClassifier()
        model.set_params(n_neighbors=9)
        assert model.n_neighbors == 9

    def test_set_unknown_param_raises(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier().set_params(bogus=1)

    def test_clone_copies_params_not_state(self):
        model = RandomForestClassifier(n_estimators=3, random_state=1)
        model.fit(np.eye(4), [0, 0, 1, 1])
        copy = clone(model)
        assert copy.get_params() == model.get_params()
        assert not hasattr(copy, "trees_")


class TestValidation:
    def test_check_array_promotes_1d(self):
        assert check_array([1.0, 2.0]).shape == (1, 2)

    def test_check_array_rejects_nan(self):
        with pytest.raises(ValueError):
            check_array([[np.nan, 1.0]])

    def test_check_array_rejects_3d(self):
        with pytest.raises(ValueError):
            check_array(np.zeros((2, 2, 2)))

    def test_check_X_y_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            check_X_y(np.eye(3), [0, 1])

    def test_check_X_y_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            check_X_y(np.eye(3), [0, 1, 2])

    def test_score_is_accuracy(self):
        model = KNeighborsClassifier(n_neighbors=1)
        X = np.array([[0.0], [1.0]])
        model.fit(X, [0, 1])
        assert model.score(X, [0, 1]) == 1.0
