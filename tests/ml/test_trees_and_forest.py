"""Tests for the CART tree and Random Forest."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy_score
from repro.ml.tree import LEAF, DecisionTreeClassifier, best_gini_split
from repro.ml.forest import RandomForestClassifier

from tests.ml.conftest import split


class TestBestGiniSplit:
    def test_perfect_split_found(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        feature, threshold, gain = best_gini_split(X, y, np.array([0]), 1)
        assert feature == 0
        assert 1.0 < threshold < 2.0
        assert gain == pytest.approx(0.5)  # gini 0.5 → 0

    def test_constant_feature_yields_none(self):
        X = np.ones((6, 1))
        y = np.array([0, 1, 0, 1, 0, 1])
        assert best_gini_split(X, y, np.array([0]), 1) is None

    def test_min_samples_leaf_respected(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 1, 1, 1])
        # A leaf size of 2 forbids the 1-vs-3 perfect split.
        result = best_gini_split(X, y, np.array([0]), 2)
        if result is not None:
            __, threshold, __ = result
            left = (X[:, 0] <= threshold).sum()
            assert left >= 2 and len(y) - left >= 2

    def test_picks_most_informative_feature(self):
        rng = np.random.default_rng(0)
        noise = rng.normal(size=40)
        signal = np.array([0.0] * 20 + [1.0] * 20)
        X = np.column_stack([noise, signal])
        y = np.array([0] * 20 + [1] * 20)
        feature, __, __ = best_gini_split(X, y, np.array([0, 1]), 1)
        assert feature == 1


class TestDecisionTree:
    def test_fits_blobs(self, blobs):
        X, y = blobs
        Xtr, ytr, Xte, yte = split(X, y)
        tree = DecisionTreeClassifier().fit(Xtr, ytr)
        assert accuracy_score(yte, tree.predict(Xte)) > 0.95

    def test_solves_xor(self, xor_problem):
        X, y = xor_problem
        Xtr, ytr, Xte, yte = split(X, y)
        tree = DecisionTreeClassifier(max_depth=6).fit(Xtr, ytr)
        assert accuracy_score(yte, tree.predict(Xte)) > 0.9

    def test_pure_node_is_leaf(self):
        tree = DecisionTreeClassifier().fit(np.eye(3), [1, 1, 1])
        assert tree.node_count == 1
        assert tree.children_left_[0] == LEAF

    def test_max_depth_zero_is_stump_prior(self):
        X = np.array([[0.0], [1.0], [2.0]])
        tree = DecisionTreeClassifier(max_depth=0).fit(X, [0, 1, 1])
        assert tree.node_count == 1
        proba = tree.predict_proba([[5.0]])
        assert proba[0, 1] == pytest.approx(2 / 3)

    def test_max_depth_respected(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.max_depth_reached <= 2

    def test_training_set_memorized_when_unbounded(self, xor_problem):
        X, y = xor_problem
        tree = DecisionTreeClassifier().fit(X, y)
        assert accuracy_score(y, tree.predict(X)) == 1.0

    def test_probabilities_sum_to_one(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_feature_importances_concentrate_on_signal(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 4))
        y = (X[:, 2] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        importances = tree.feature_importances_
        assert importances.argmax() == 2
        assert importances.sum() == pytest.approx(1.0)

    def test_apply_returns_leaves(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        leaves = tree.apply(X)
        assert np.all(tree.children_left_[leaves] == LEAF)

    def test_flat_arrays_consistent(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        for node in range(tree.node_count):
            left = tree.children_left_[node]
            right = tree.children_right_[node]
            assert (left == LEAF) == (right == LEAF)
            if left != LEAF:
                assert tree.n_node_samples_[node] == (
                    tree.n_node_samples_[left] + tree.n_node_samples_[right]
                )


class TestRandomForest:
    def test_fits_blobs(self, blobs):
        X, y = blobs
        Xtr, ytr, Xte, yte = split(X, y)
        forest = RandomForestClassifier(n_estimators=20, random_state=0)
        forest.fit(Xtr, ytr)
        assert accuracy_score(yte, forest.predict(Xte)) > 0.95

    def test_solves_xor_better_than_stump(self, xor_problem):
        X, y = xor_problem
        Xtr, ytr, Xte, yte = split(X, y)
        forest = RandomForestClassifier(
            n_estimators=30, max_features=None, random_state=0
        ).fit(Xtr, ytr)
        assert accuracy_score(yte, forest.predict(Xte)) > 0.9

    def test_deterministic_given_seed(self, blobs):
        X, y = blobs
        a = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y)
        assert np.array_equal(a.predict_proba(X), b.predict_proba(X))

    def test_seed_changes_forest(self, blobs):
        X, y = blobs
        a = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=4).fit(X, y)
        assert not np.array_equal(a.predict_proba(X), b.predict_proba(X))

    def test_probability_averaging(self, blobs):
        X, y = blobs
        forest = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        manual = np.mean(
            [tree.predict_proba(X) for tree in forest.trees_], axis=0
        )
        assert np.allclose(manual, forest.predict_proba(X))

    def test_unfitted_raises(self, blobs):
        X, __ = blobs
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(X)
        with pytest.raises(RuntimeError):
            __ = RandomForestClassifier().feature_importances_

    def test_feature_importances(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(150, 3))
        y = (X[:, 0] > 0).astype(int)
        forest = RandomForestClassifier(
            n_estimators=10, max_features=None, random_state=0
        ).fit(X, y)
        assert forest.feature_importances_.argmax() == 0

    def test_no_bootstrap_mode(self, blobs):
        X, y = blobs
        forest = RandomForestClassifier(
            n_estimators=3, bootstrap=False, random_state=0
        ).fit(X, y)
        assert forest.score(X, y) > 0.95
