"""Shared fixtures: small synthetic classification problems."""

import numpy as np
import pytest


@pytest.fixture(scope="session")
def blobs():
    """Two well-separated Gaussian blobs (easy problem)."""
    rng = np.random.default_rng(0)
    n = 120
    X0 = rng.normal(loc=-2.0, scale=1.0, size=(n, 5))
    X1 = rng.normal(loc=2.0, scale=1.0, size=(n, 5))
    X = np.vstack([X0, X1])
    y = np.array([0] * n + [1] * n)
    order = rng.permutation(len(y))
    return X[order], y[order]


@pytest.fixture(scope="session")
def xor_problem():
    """2-D XOR — linearly inseparable, solvable by trees/kernels."""
    rng = np.random.default_rng(1)
    n = 400
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    X = X + rng.normal(scale=0.05, size=X.shape)
    return X, y


def split(X, y, fraction=0.75):
    cut = int(len(y) * fraction)
    return X[:cut], y[:cut], X[cut:], y[cut:]
