"""Tests for ROC / precision–recall curves and operating points."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.curves import (
    OperatingPoint,
    auc,
    average_precision_score,
    detection_error_tradeoff,
    operating_point_at_fpr,
    operating_point_at_precision,
    precision_recall_curve,
    roc_auc_score,
    roc_curve,
)

# Perfectly separable: every positive outscores every negative.
SEPARABLE_TRUE = np.array([0, 0, 0, 1, 1, 1])
SEPARABLE_SCORE = np.array([0.1, 0.2, 0.3, 0.7, 0.8, 0.9])


def labeled_scores(min_size=4):
    """Strategy producing (y_true, scores) with both classes present."""
    return st.integers(2, 24).flatmap(
        lambda half: st.tuples(
            st.just(np.array([0] * half + [1] * half)),
            st.lists(
                st.floats(-5, 5, allow_nan=False),
                min_size=2 * half,
                max_size=2 * half,
            ).map(np.array),
        )
    )


class TestRocCurve:
    def test_separable_is_perfect(self):
        fpr, tpr, thresholds = roc_curve(SEPARABLE_TRUE, SEPARABLE_SCORE)
        assert roc_auc_score(SEPARABLE_TRUE, SEPARABLE_SCORE) == 1.0
        assert auc(fpr, tpr) == pytest.approx(1.0)
        assert thresholds[0] == np.inf

    def test_anti_separable_is_zero(self):
        assert roc_auc_score(SEPARABLE_TRUE, -SEPARABLE_SCORE) == 0.0

    def test_starts_at_origin_ends_at_one_one(self):
        fpr, tpr, _ = roc_curve(SEPARABLE_TRUE, SEPARABLE_SCORE)
        assert (fpr[0], tpr[0]) == (0.0, 0.0)
        assert (fpr[-1], tpr[-1]) == (1.0, 1.0)

    def test_constant_scores_give_single_jump(self):
        fpr, tpr, _ = roc_curve([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5])
        # Only two points: flag nothing / flag everything.
        assert fpr.tolist() == [0.0, 1.0]
        assert tpr.tolist() == [0.0, 1.0]

    def test_ties_counted_half_in_auc(self):
        # One positive tied with one negative: AUC = 0.5.
        assert roc_auc_score([0, 1], [0.4, 0.4]) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_curve([1, 1], [0.1, 0.2])
        with pytest.raises(ValueError):
            roc_auc_score([0, 0], [0.1, 0.2])

    def test_known_hand_computed_value(self):
        y = [0, 0, 1, 1]
        s = [0.1, 0.4, 0.35, 0.8]
        # Pairs: (0.35 vs 0.1)=win, (0.35 vs 0.4)=loss,
        #        (0.8 vs 0.1)=win,  (0.8 vs 0.4)=win  -> 3/4.
        assert roc_auc_score(y, s) == pytest.approx(0.75)

    def test_nan_scores_rejected(self):
        with pytest.raises(ValueError):
            roc_curve([0, 1], [np.nan, 0.2])


class TestRocProperties:
    @given(labeled_scores())
    @settings(max_examples=60, deadline=None)
    def test_auc_in_unit_interval(self, data):
        y_true, scores = data
        assert 0.0 <= roc_auc_score(y_true, scores) <= 1.0

    @given(labeled_scores())
    @settings(max_examples=60, deadline=None)
    def test_auc_invariant_under_monotone_transform(self, data):
        y_true, scores = data
        base = roc_auc_score(y_true, scores)
        # Scale by a power of two: exact in floating point, so the tie
        # structure of the scores is preserved.
        transformed = roc_auc_score(y_true, 4.0 * scores)
        assert transformed == pytest.approx(base)

    @given(labeled_scores())
    @settings(max_examples=60, deadline=None)
    def test_auc_complement_under_score_negation(self, data):
        y_true, scores = data
        direct = roc_auc_score(y_true, scores)
        flipped = roc_auc_score(y_true, -scores)
        assert direct + flipped == pytest.approx(1.0)

    @given(labeled_scores())
    @settings(max_examples=60, deadline=None)
    def test_rank_auc_matches_trapezoid_auc(self, data):
        y_true, scores = data
        fpr, tpr, _ = roc_curve(y_true, scores)
        assert roc_auc_score(y_true, scores) == pytest.approx(auc(fpr, tpr))

    @given(labeled_scores())
    @settings(max_examples=60, deadline=None)
    def test_curves_are_monotone(self, data):
        y_true, scores = data
        fpr, tpr, thresholds = roc_curve(y_true, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)
        assert np.all(np.diff(thresholds) < 0)


class TestPrecisionRecallCurve:
    def test_separable(self):
        precision, recall, _ = precision_recall_curve(
            SEPARABLE_TRUE, SEPARABLE_SCORE
        )
        # Loosest threshold flags everything: precision = prevalence.
        assert precision[0] == pytest.approx(0.5)
        assert recall[0] == 1.0
        assert (precision[-1], recall[-1]) == (1.0, 0.0)
        assert average_precision_score(SEPARABLE_TRUE, SEPARABLE_SCORE) == 1.0

    def test_random_scores_ap_near_prevalence(self):
        rng = np.random.default_rng(0)
        y = np.array([0] * 500 + [1] * 500)
        s = rng.random(1000)
        ap = average_precision_score(y, s)
        assert 0.4 < ap < 0.6  # prevalence is 0.5

    def test_requires_positives(self):
        with pytest.raises(ValueError):
            precision_recall_curve([0, 0], [0.2, 0.4])

    @given(labeled_scores())
    @settings(max_examples=60, deadline=None)
    def test_ap_in_unit_interval_and_recall_monotone(self, data):
        y_true, scores = data
        precision, recall, _ = precision_recall_curve(y_true, scores)
        assert np.all(np.diff(recall) <= 0)
        assert np.all((precision >= 0) & (precision <= 1))
        assert 0.0 <= average_precision_score(y_true, scores) <= 1.0


class TestAucHelper:
    def test_rejects_non_monotone_x(self):
        with pytest.raises(ValueError):
            auc([0.0, 1.0, 0.5], [0.0, 0.5, 1.0])

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            auc([0.0], [1.0])

    def test_unit_square(self):
        assert auc([0.0, 1.0], [1.0, 1.0]) == pytest.approx(1.0)

    def test_decreasing_x_allowed(self):
        assert auc([1.0, 0.0], [1.0, 1.0]) == pytest.approx(1.0)


class TestOperatingPoints:
    def test_precision_floor_met(self):
        point = operating_point_at_precision(
            SEPARABLE_TRUE, SEPARABLE_SCORE, min_precision=1.0
        )
        assert isinstance(point, OperatingPoint)
        assert point.precision == 1.0
        assert point.recall == 1.0

    def test_precision_floor_infeasible(self):
        # Scores anti-correlated with labels: precision 1.0 unreachable
        # at any threshold that flags something.
        y = np.array([1, 1, 0, 0])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert operating_point_at_precision(y, s, min_precision=0.9) is None

    def test_fpr_ceiling(self):
        point = operating_point_at_fpr(
            SEPARABLE_TRUE, SEPARABLE_SCORE, max_fpr=0.0
        )
        assert point.fpr == 0.0
        assert point.recall == 1.0

    def test_fpr_ceiling_degenerate(self):
        # Every realisable threshold flags the top-scoring benign sample.
        y = np.array([1, 0])
        s = np.array([0.2, 0.9])
        point = operating_point_at_fpr(y, s, max_fpr=0.4)
        assert point.recall == 0.0
        assert point.fpr == 0.0

    def test_as_dict_keys(self):
        point = operating_point_at_fpr(SEPARABLE_TRUE, SEPARABLE_SCORE, 1.0)
        assert set(point.as_dict()) == {
            "threshold", "precision", "recall", "fpr",
        }

    @given(labeled_scores(), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_fpr_constraint_respected(self, data, ceiling):
        y_true, scores = data
        point = operating_point_at_fpr(y_true, scores, ceiling)
        assert point.fpr <= ceiling + 1e-12

    @given(labeled_scores(), st.floats(0.05, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_precision_constraint_respected(self, data, floor):
        y_true, scores = data
        point = operating_point_at_precision(y_true, scores, floor)
        if point is not None:
            assert point.precision >= floor - 1e-12


class TestDet:
    def test_fnr_complements_tpr(self):
        fpr, fnr, _ = detection_error_tradeoff(SEPARABLE_TRUE, SEPARABLE_SCORE)
        _, tpr, _ = roc_curve(SEPARABLE_TRUE, SEPARABLE_SCORE)
        assert np.allclose(fnr, 1.0 - tpr)
        assert np.all(np.diff(fnr) <= 0)
