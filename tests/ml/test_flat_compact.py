"""Compact descent kernels: install gate, fallback, and bit-identity.

``use_kernel`` installs a float32 or quantized descent only when its
measured ``predict_proba`` divergence and label-flip count on an eval
matrix stay within bounds; otherwise the ensemble keeps float64 and the
report says why. When a compact descent lands every sample on the same
leaves (the common case away from split boundaries), predictions are
bit-identical — the leaf-value accumulation never changes width.
"""

import numpy as np
import pytest

from repro.ml.flat import (
    KERNELS,
    KernelReport,
    compact_precompile,
    precompile,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import XGBoostClassifier


@pytest.fixture(scope="module")
def forest(blobs):
    X, y = blobs
    model = RandomForestClassifier(n_estimators=12, random_state=0)
    model.fit(X, y)
    return model, X


@pytest.fixture(scope="module")
def flat(forest):
    model, __ = forest
    return model.compile_flat()


class TestKernelInstall:
    def test_default_kernel_is_float64(self, flat):
        assert flat.kernel == "float64"
        assert flat.kernel_report is None

    def test_unknown_kernel_rejected(self, flat):
        with pytest.raises(ValueError, match="kernel"):
            flat.use_kernel("float16")

    def test_kernels_tuple_is_exhaustive(self):
        assert KERNELS == ("float64", "float32", "quantized")

    def test_float32_installs_and_reports(self, forest, flat):
        __, X = forest
        report = flat.use_kernel("float32", X)
        try:
            assert report.active == "float32"
            assert not report.fell_back
            assert report.label_flips == 0
            assert report.max_divergence <= 1e-6
            assert flat.kernel == "float32"
            assert flat.kernel_report is report
        finally:
            flat.use_kernel("float64")

    def test_ungated_install_records_nan_divergence(self, flat):
        report = flat.use_kernel("quantized")
        try:
            assert report.active == "quantized"
            assert np.isnan(report.max_divergence)
        finally:
            flat.use_kernel("float64")

    def test_reinstalling_float64_clears_compact_serving(self, forest, flat):
        __, X = forest
        flat.use_kernel("float32", X)
        report = flat.use_kernel("float64")
        assert flat.kernel == "float64"
        assert report.active == report.requested == "float64"


class TestAccuracyGate:
    def test_gate_falls_back_on_tight_bound(self, forest, flat):
        # An impossible bound (negative divergence) must always fall
        # back, whatever the measured delta.
        __, X = forest
        report = flat.use_kernel("float32", X, max_divergence=-1.0)
        assert report.fell_back
        assert report.active == "float64"
        assert "divergence" in report.fallback_reason
        assert flat.kernel == "float64"

    def test_gate_admits_loose_bound(self, forest, flat):
        __, X = forest
        report = flat.use_kernel(
            "quantized", X, max_divergence=0.5, max_label_flips=len(X)
        )
        try:
            assert report.active == "quantized"
            assert report.max_divergence <= 0.5
        finally:
            flat.use_kernel("float64")

    def test_fallback_keeps_serving_float64_results(self, forest, flat):
        __, X = forest
        reference = flat.predict_proba_mean(X)
        flat.use_kernel("float32", X, max_divergence=-1.0)
        assert np.array_equal(flat.predict_proba_mean(X), reference)

    def test_report_is_frozen(self):
        report = KernelReport("float32", "float32", 0.0, 0)
        with pytest.raises(AttributeError):
            report.active = "quantized"


class TestBitIdentity:
    def test_float32_leaves_match_float64(self, forest, flat):
        __, X = forest
        assert np.array_equal(
            flat.apply(X, kernel="float64"),
            flat.apply(X, kernel="float32"),
        )

    def test_float32_predictions_bit_identical(self, forest, flat):
        __, X = forest
        reference = flat.predict_proba_mean(X)
        flat.use_kernel("float32", X)
        try:
            assert np.array_equal(flat.predict_proba_mean(X), reference)
        finally:
            flat.use_kernel("float64")

    def test_chunked_descent_matches_single_chunk(self, forest, flat):
        __, X = forest
        rng = np.random.default_rng(3)
        big = rng.normal(size=(900, X.shape[1]))
        assert np.array_equal(
            flat.apply(big, kernel="float32", chunk_rows=128),
            flat.apply(big, kernel="float64"),
        )

    def test_quantized_parks_leaves(self, forest, flat):
        # Inputs far beyond every split clip to the top input code,
        # which is still below the reserved leaf code: descents
        # terminate and never bounce off a parked leaf.
        __, X = forest
        extreme = np.full((4, X.shape[1]), 1e9)
        assert np.array_equal(
            flat.apply(extreme, kernel="quantized"),
            flat.apply(extreme, kernel="float64"),
        )


class TestCompactPrecompile:
    def test_walks_like_precompile(self, blobs):
        X, y = blobs
        model = XGBoostClassifier(n_estimators=8)
        model.fit(X, y)
        assert precompile(model) >= 1
        reports = compact_precompile(model, "float32", X)
        assert len(reports) >= 1
        assert all(isinstance(r, KernelReport) for r in reports)
        assert all(r.requested == "float32" for r in reports)

    def test_gated_install_serves_identically(self, blobs):
        X, y = blobs
        model = RandomForestClassifier(n_estimators=8, random_state=1)
        model.fit(X, y)
        reference = model.predict_proba(X)
        compact_precompile(model, "float32", X)
        assert np.array_equal(model.predict_proba(X), reference)
