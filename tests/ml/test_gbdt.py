"""Tests for the three gradient-boosting variants."""

import numpy as np
import pytest

from repro.ml.gbdt import (
    CatBoostClassifier,
    LightGBMClassifier,
    XGBoostClassifier,
    _Binner,
)
from repro.ml.metrics import accuracy_score

from tests.ml.conftest import split

ALL_BOOSTERS = [
    lambda: XGBoostClassifier(n_estimators=30, max_depth=3),
    lambda: LightGBMClassifier(n_estimators=30, num_leaves=7),
    lambda: CatBoostClassifier(n_estimators=30, depth=3),
]
BOOSTER_IDS = ["xgboost", "lightgbm", "catboost"]


class TestBinner:
    def test_bins_are_monotone(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 2))
        binner = _Binner(16).fit(X)
        binned = binner.transform(X)
        order = np.argsort(X[:, 0])
        assert np.all(np.diff(binned[order, 0]) >= 0)

    def test_constant_feature_single_bin(self):
        X = np.ones((50, 1))
        binned = _Binner(16).fit(X).transform(X)
        assert len(np.unique(binned)) == 1

    def test_bin_range(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 1))
        binned = _Binner(8).fit(X).transform(X)
        assert binned.min() >= 0
        assert binned.max() < 8


@pytest.mark.parametrize("make", ALL_BOOSTERS, ids=BOOSTER_IDS)
class TestAllBoosters:
    def test_fits_blobs(self, make, blobs):
        X, y = blobs
        Xtr, ytr, Xte, yte = split(X, y)
        model = make().fit(Xtr, ytr)
        assert accuracy_score(yte, model.predict(Xte)) > 0.95

    def test_solves_xor(self, make, xor_problem):
        X, y = xor_problem
        Xtr, ytr, Xte, yte = split(X, y)
        model = make().fit(Xtr, ytr)
        assert accuracy_score(yte, model.predict(Xte)) > 0.85

    def test_probabilities_valid(self, make, blobs):
        X, y = blobs
        proba = make().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0) and np.all(proba <= 1)

    def test_more_rounds_reduce_training_error(self, make, xor_problem):
        X, y = xor_problem
        few = make().set_params(n_estimators=3).fit(X, y)
        many = make().set_params(n_estimators=40).fit(X, y)
        assert many.score(X, y) >= few.score(X, y)

    def test_base_score_matches_prior(self, make):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.array([0] * 8 + [1] * 2)
        model = make().set_params(n_estimators=1).fit(X, y)
        expected = np.log(0.2 / 0.8)
        assert model.base_score_ == pytest.approx(expected, abs=1e-6)

    def test_single_class_edges_handled(self, make):
        X = np.arange(8, dtype=float).reshape(-1, 1)
        model = make().set_params(n_estimators=2).fit(X, np.zeros(8, dtype=int))
        assert np.all(model.predict(X) == 0)


class TestVariantSpecifics:
    def test_xgboost_respects_max_depth(self, blobs):
        X, y = blobs
        model = XGBoostClassifier(n_estimators=2, max_depth=1).fit(X, y)
        # depth-1 tree has at most 3 nodes
        assert all(len(tree.features) <= 3 for tree in model.trees_)

    def test_lightgbm_respects_num_leaves(self, xor_problem):
        X, y = xor_problem
        model = LightGBMClassifier(n_estimators=2, num_leaves=4).fit(X, y)
        for tree in model.trees_:
            leaves = sum(1 for f in tree.features if f == -1)
            assert leaves <= 4

    def test_catboost_trees_are_oblivious(self, xor_problem):
        X, y = xor_problem
        model = CatBoostClassifier(n_estimators=2, depth=3).fit(X, y)
        for tree in model.trees_:
            assert len(tree.conditions) <= 3
            assert len(tree.leaf_weights) == 2 ** len(tree.conditions)

    def test_learning_rate_scales_updates(self, blobs):
        X, y = blobs
        slow = XGBoostClassifier(n_estimators=1, learning_rate=0.01).fit(X, y)
        fast = XGBoostClassifier(n_estimators=1, learning_rate=1.0).fit(X, y)
        spread_slow = np.ptp(slow.decision_function(X))
        spread_fast = np.ptp(fast.decision_function(X))
        assert spread_fast > spread_slow
